"""Energy-optimal frequency analysis for batch work.

For throughput work (MiBench-style batch), the energy to retire one
gigacycle depends on the frequency: run slow and leakage dominates (the job
takes longer while the chip keeps leaking), run fast and the V^2 dynamic
cost dominates.  The optimum sits in between — the classic result behind
race-to-idle debates.  With deep idle gating (cpuidle) the post-completion
cost is ~zero, so the energy of the *run* is the whole story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.soc.components import ClusterSpec
from repro.soc.power_model import dynamic_power_w, leakage_power_w


@dataclass(frozen=True)
class EnergyPoint:
    """Cost of retiring work at one OPP."""

    freq_hz: float
    voltage_v: float
    power_w: float
    seconds_per_gcycle: float
    joules_per_gcycle: float


def energy_per_gigacycle(
    cluster: ClusterSpec, temp_k: float, busy_cores: float = 1.0
) -> list[EnergyPoint]:
    """Energy per instruction-weighted gigacycle at every OPP.

    ``busy_cores`` is the parallelism of the job; the cluster's idle power
    is charged for the whole run (the other cores are in shallow idle while
    the cluster is active).
    """
    if busy_cores <= 0.0 or busy_cores > cluster.n_cores:
        raise AnalysisError(
            f"busy_cores must be in (0, {cluster.n_cores}], got {busy_cores}"
        )
    points = []
    for opp in cluster.opps:
        rate_gcycles = cluster.ipc * opp.freq_hz * busy_cores / 1e9
        power = (
            cluster.idle_power_w
            + dynamic_power_w(
                cluster.ceff_w_per_v2hz, opp.voltage_v, opp.freq_hz, busy_cores
            )
            + leakage_power_w(cluster.leakage, temp_k, opp.voltage_v)
        )
        seconds = 1.0 / rate_gcycles
        points.append(
            EnergyPoint(
                freq_hz=opp.freq_hz,
                voltage_v=opp.voltage_v,
                power_w=power,
                seconds_per_gcycle=seconds,
                joules_per_gcycle=power * seconds,
            )
        )
    return points


def energy_optimal_point(
    cluster: ClusterSpec, temp_k: float, busy_cores: float = 1.0
) -> EnergyPoint:
    """The OPP minimising joules per gigacycle."""
    points = energy_per_gigacycle(cluster, temp_k, busy_cores)
    return min(points, key=lambda p: p.joules_per_gcycle)


def race_to_idle_penalty(
    cluster: ClusterSpec, temp_k: float, busy_cores: float = 1.0
) -> float:
    """How much more energy the *maximum* frequency costs vs the optimum.

    Returns joules_max / joules_optimal - 1 (0.0 when max is optimal).
    Small values mean race-to-idle is nearly free; large values mean the
    energy-optimal policy is worth the latency.
    """
    points = energy_per_gigacycle(cluster, temp_k, busy_cores)
    best = min(p.joules_per_gcycle for p in points)
    at_max = points[-1].joules_per_gcycle
    return at_max / best - 1.0
