"""One-shot run reports: a markdown summary of a finished simulation.

``summarize_run`` distils a :class:`~repro.sim.engine.Simulation` into the
quantities this study cares about — temperatures, per-rail power, DVFS
residencies, app metrics — as a human-readable markdown document.  Examples
and downstream notebooks use it to avoid re-writing the same boilerplate.
"""

from __future__ import annotations

from repro.analysis.residency import residency_fractions
from repro.analysis.tables import render_table
from repro.errors import AnalysisError
from repro.sim.engine import Simulation
from repro.units import kelvin_to_celsius, khz_to_mhz


def _temperature_section(sim: Simulation) -> list[str]:
    lines = ["## Temperatures (degC)", ""]
    rows = []
    for node in sim.thermal.node_names:
        times, temps = sim.traces.series(f"temp.{node}")
        rows.append([node, temps[0], float(temps.max()), temps[-1]])
    lines.append(render_table(["node", "start", "max", "end"], rows))
    return lines


def _power_section(sim: Simulation) -> list[str]:
    lines = ["## Power (W, averages)", ""]
    rows = []
    for rail in sorted(sim.energy.breakdown()):
        rows.append(
            [rail, sim.energy.average_power_w(rail),
             f"{sim.energy.breakdown()[rail] * 100.0:.1f}%"]
        )
    rows.append(["total", sim.energy.total_energy_j() / sim.energy.elapsed_s, "100%"])
    lines.append(render_table(["rail", "avg W", "share"], rows))
    return lines


def _residency_section(sim: Simulation) -> list[str]:
    lines = ["## DVFS residencies", ""]
    for domain, policy in sorted(sim.kernel.policies.items()):
        try:
            residency = residency_fractions(policy.time_in_state)
        except AnalysisError:
            continue
        top = sorted(residency.items(), key=lambda kv: -kv[1])[:3]
        cells = ", ".join(
            f"{int(khz_to_mhz(khz))} MHz: {frac * 100.0:.0f}%"
            for khz, frac in top
        )
        lines.append(f"- **{domain}**: {cells}")
    return lines


def _apps_section(sim: Simulation) -> list[str]:
    lines = ["## Applications", ""]
    for name, app in sorted(sim.apps.items()):
        metrics = app.metrics()
        if metrics:
            cells = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(metrics.items()))
            lines.append(f"- **{name}**: {cells}")
        else:
            lines.append(f"- **{name}**: (no metrics)")
    return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def summarize_run(sim: Simulation, title: str = "Simulation report") -> str:
    """Render a full markdown report of a finished run."""
    if sim.energy.elapsed_s <= 0.0:
        raise AnalysisError("the simulation has not run yet")
    lines = [
        f"# {title}",
        "",
        f"Platform: **{sim.platform.name}**, duration: "
        f"**{sim.now_s:.1f} s**, ambient: "
        f"**{kelvin_to_celsius(sim.thermal.ambient_k):.1f} degC**",
        "",
    ]
    lines += _temperature_section(sim) + [""]
    lines += _power_section(sim) + [""]
    lines += _residency_section(sim) + [""]
    if sim.apps:
        lines += _apps_section(sim) + [""]
    if sim.battery is not None:
        lines.append(
            f"Battery: {sim.battery.soc * 100.0:.1f}% remaining "
            f"({sim.battery.remaining_wh:.2f} Wh)"
        )
    return "\n".join(lines).rstrip() + "\n"
