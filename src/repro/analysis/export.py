"""CSV export of traces and FPS series (for external plotting).

The benchmarks print text tables; for figures a downstream user usually
wants the raw series.  These helpers dump any subset of trace channels (or
an app's per-second FPS) as plain CSV, aligned on a common time grid by
zero-order hold.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Sequence

import numpy as np

from repro.apps.frames import FpsMeter
from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder, resample_zoh


def traces_to_csv(
    traces: TraceRecorder,
    path: str | pathlib.Path,
    channels: Sequence[str] | None = None,
    grid_dt_s: float = 0.1,
) -> int:
    """Write selected channels to ``path``; returns the number of rows.

    All channels are resampled onto a shared grid spanning the recording
    (zero-order hold), so the CSV is rectangular.
    """
    names = list(channels) if channels is not None else traces.names()
    if not names:
        raise AnalysisError("no channels to export")
    if grid_dt_s <= 0.0:
        raise AnalysisError("grid step must be positive")
    start = min(traces.channel(n).times[0] for n in names)
    end = max(traces.channel(n).times[-1] for n in names)
    grid = np.arange(start, end + grid_dt_s / 2, grid_dt_s)
    columns = {
        name: resample_zoh(
            traces.channel(name).times, traces.channel(name).values, grid
        )
        for name in names
    }
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s"] + names)
        for i, t in enumerate(grid):
            writer.writerow(
                [f"{t:.3f}"] + [f"{columns[n][i]:.6g}" for n in names]
            )
    return len(grid)


def fps_to_csv(
    meter: FpsMeter,
    path: str | pathlib.Path,
    start_s: float = 0.0,
    end_s: float | None = None,
) -> int:
    """Write an app's per-second FPS series to ``path``; returns row count."""
    times, fps = meter.fps_series(start_s, end_s)
    if times.size == 0:
        raise AnalysisError("no complete FPS buckets to export")
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bucket_start_s", "fps"])
        for t, f in zip(times, fps):
            writer.writerow([f"{t:.3f}", f"{f:.3f}"])
    return int(times.size)
