"""Trace analysis: residencies, FPS stats, power breakdowns, tables."""

from repro.analysis.breakdown import (
    PowerBreakdown,
    breakdown_delta,
    breakdown_from_traces,
)
from repro.analysis.compare import RunDelta, compare_runs
from repro.analysis.energy_opt import (
    EnergyPoint,
    energy_optimal_point,
    energy_per_gigacycle,
    race_to_idle_penalty,
)
from repro.analysis.export import fps_to_csv, traces_to_csv
from repro.analysis.figures import Series, summarize
from repro.analysis.interference import InterferenceResult, measure_interference
from repro.analysis.report import summarize_run
from repro.analysis.residency import (
    mean_frequency_khz,
    parse_time_in_state,
    residency_fractions,
    residency_of_policy,
    residency_shift,
    top_frequency_share,
)
from repro.analysis.tables import percent_reduction, render_table

__all__ = [
    "EnergyPoint",
    "RunDelta",
    "InterferenceResult",
    "PowerBreakdown",
    "Series",
    "breakdown_delta",
    "compare_runs",
    "energy_optimal_point",
    "energy_per_gigacycle",
    "fps_to_csv",
    "breakdown_from_traces",
    "mean_frequency_khz",
    "measure_interference",
    "parse_time_in_state",
    "percent_reduction",
    "race_to_idle_penalty",
    "render_table",
    "residency_fractions",
    "residency_of_policy",
    "residency_shift",
    "summarize",
    "summarize_run",
    "traces_to_csv",
    "top_frequency_share",
]
