"""A/B comparison of two simulation runs.

Policy work is comparative by nature: the same workload under two
configurations.  ``compare_runs`` lines up two finished simulations of the
same platform and reports the deltas this study cares about — per-app FPS,
peak/end temperatures, per-rail average power, and the big-domain DVFS
residency shift — as one structured object plus a rendered table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.residency import residency_fractions, residency_shift
from repro.analysis.tables import render_table
from repro.errors import AnalysisError
from repro.sim.engine import Simulation


@dataclass(frozen=True)
class RunDelta:
    """Deltas of run B relative to run A (B - A)."""

    fps: dict[str, float] = field(default_factory=dict)
    peak_temp_k: float = 0.0
    end_temp_k: float = 0.0
    rail_power_w: dict[str, float] = field(default_factory=dict)
    big_residency_shift: float = 0.0  # positive = B runs slower clocks

    def render(self, label_a: str = "A", label_b: str = "B") -> str:
        """Human-readable delta table."""
        rows = []
        for app, delta in sorted(self.fps.items()):
            rows.append([f"fps[{app}]", f"{delta:+.1f}"])
        rows.append(["peak temp (K)", f"{self.peak_temp_k:+.1f}"])
        rows.append(["end temp (K)", f"{self.end_temp_k:+.1f}"])
        for rail, delta in sorted(self.rail_power_w.items()):
            rows.append([f"power[{rail}] (W)", f"{delta:+.2f}"])
        rows.append(
            ["big residency shift", f"{self.big_residency_shift:+.1%}"]
        )
        return render_table(
            ["metric", f"{label_b} - {label_a}"], rows,
            title=f"Run comparison: {label_b} vs {label_a}",
        )


def compare_runs(run_a: Simulation, run_b: Simulation) -> RunDelta:
    """Compute B - A deltas for two finished runs of the same platform."""
    if run_a.platform.name != run_b.platform.name:
        raise AnalysisError(
            f"platform mismatch: {run_a.platform.name!r} vs "
            f"{run_b.platform.name!r}"
        )
    if run_a.energy.elapsed_s <= 0.0 or run_b.energy.elapsed_s <= 0.0:
        raise AnalysisError("both runs must have executed")

    fps: dict[str, float] = {}
    for name in set(run_a.apps) & set(run_b.apps):
        metrics_a = run_a.app(name).metrics()
        metrics_b = run_b.app(name).metrics()
        if "median_fps" in metrics_a and "median_fps" in metrics_b:
            fps[name] = metrics_b["median_fps"] - metrics_a["median_fps"]

    _, temps_a = run_a.traces.series("temp.max")
    _, temps_b = run_b.traces.series("temp.max")

    rails = set(run_a.energy.breakdown()) & set(run_b.energy.breakdown())
    rail_power = {
        rail: run_b.energy.average_power_w(rail)
        - run_a.energy.average_power_w(rail)
        for rail in rails
    }

    big = run_a.platform.big_cluster.name
    try:
        shift = residency_shift(
            residency_fractions(run_a.kernel.policies[big].time_in_state),
            residency_fractions(run_b.kernel.policies[big].time_in_state),
        )
    except AnalysisError:
        shift = 0.0

    return RunDelta(
        fps=fps,
        peak_temp_k=float(np.max(temps_b) - np.max(temps_a)),
        end_temp_k=float(temps_b[-1] - temps_a[-1]),
        rail_power_w=rail_power,
        big_residency_shift=shift,
    )
