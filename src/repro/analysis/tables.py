"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report; this
module does the (deliberately dependency-free) formatting.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise AnalysisError("a table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def percent_reduction(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after`` (paper's Table I)."""
    if before <= 0.0:
        raise AnalysisError("baseline must be positive")
    return (before - after) / before * 100.0
