"""Series helpers for regenerating the paper's figures as data.

Benchmarks print these summaries; plotting is intentionally out of scope
(no matplotlib offline), but every figure's underlying series is exposed so
a user can plot them with one line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Series:
    """A named (x, y) series belonging to a figure."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise AnalysisError(f"series {self.label!r}: x/y length mismatch")

    def at(self, x_value: float) -> float:
        """y at the first x >= x_value (nearest sample at the end)."""
        if len(self.x) == 0:
            raise AnalysisError(f"series {self.label!r} is empty")
        idx = int(np.searchsorted(self.x, x_value))
        idx = min(idx, len(self.x) - 1)
        return float(self.y[idx])

    def max(self) -> float:
        """Maximum y."""
        if len(self.y) == 0:
            raise AnalysisError(f"series {self.label!r} is empty")
        return float(self.y.max())

    def final(self) -> float:
        """Last y value."""
        if len(self.y) == 0:
            raise AnalysisError(f"series {self.label!r} is empty")
        return float(self.y[-1])


def summarize(series: Series, checkpoints: tuple[float, ...]) -> str:
    """One-line summary of a series at a few x checkpoints."""
    parts = [f"{series.label}:"]
    for x in checkpoints:
        parts.append(f"y({x:g})={series.at(x):.1f}")
    parts.append(f"max={series.max():.1f}")
    return " ".join(parts)
