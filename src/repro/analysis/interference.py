"""App-interference analysis.

The paper's premise: a background app degrades the foreground both by
stealing resources *and* by heating the shared package.  This module
quantifies it — run a foreground app solo and then against a background,
and decompose the FPS loss into the two runs' deltas along with the extra
heat the pair produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.sim.engine import Simulation


@dataclass(frozen=True)
class InterferenceResult:
    """Foreground degradation caused by one background app."""

    foreground: str
    background: str
    solo_fps: float
    contended_fps: float
    solo_peak_temp_c: float
    contended_peak_temp_c: float

    @property
    def slowdown_pct(self) -> float:
        """Foreground FPS loss in percent."""
        return (1.0 - self.contended_fps / self.solo_fps) * 100.0

    @property
    def extra_heat_c(self) -> float:
        """Peak-temperature increase caused by the background app.

        A difference of the two Celsius peaks, so it carries the ``_c``
        suffix of its operands.  (The magnitude of a temperature *delta*
        is the same in kelvin, but a ``_k``-named value invites callers
        to apply the +273.15 affine conversion and corrupt the delta.)
        """
        return self.contended_peak_temp_c - self.solo_peak_temp_c


def measure_interference(
    solo_sim: Simulation,
    contended_sim: Simulation,
    foreground: str,
    background: str,
    settle_s: float = 5.0,
    temp_channel: str = "temp.max",
) -> InterferenceResult:
    """Compare a solo run with a contended run of the same foreground app.

    Both simulations must already have run; the foreground app must exist
    in both, the background only in the contended one.
    """
    solo_app = solo_sim.app(foreground)
    contended_app = contended_sim.app(foreground)
    contended_sim.app(background)  # existence check
    if background in solo_sim.apps:
        raise AnalysisError(
            f"background {background!r} also present in the solo run"
        )
    _, solo_temps = solo_sim.traces.series(temp_channel)
    _, cont_temps = contended_sim.traces.series(temp_channel)
    return InterferenceResult(
        foreground=foreground,
        background=background,
        solo_fps=solo_app.fps.median_fps(start_s=settle_s),
        contended_fps=contended_app.fps.median_fps(start_s=settle_s),
        solo_peak_temp_c=float(np.max(solo_temps)),
        contended_peak_temp_c=float(np.max(cont_temps)),
    )
