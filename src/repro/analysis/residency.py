"""Frequency-residency analysis (the paper's Figures 2, 4 and 6).

Residency is the fraction of time a DVFS domain spends at each OPP.  The
kernel exposes it as ``time_in_state`` (kHz / USER_HZ-tick pairs); this
module normalises it, compares throttled vs unthrottled histograms, and
computes the residency-weighted mean frequency.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AnalysisError
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.wiring import USER_HZ


def residency_fractions(time_in_state: Mapping[int, float]) -> dict[int, float]:
    """Normalise per-OPP seconds into fractions summing to 1 (keyed by kHz)."""
    total = sum(time_in_state.values())
    if total <= 0.0:
        raise AnalysisError("no residency accumulated")
    return {khz: seconds / total for khz, seconds in sorted(time_in_state.items())}


def residency_of_policy(policy: DvfsPolicy) -> dict[int, float]:
    """Residency fractions of a live policy object."""
    return residency_fractions(policy.time_in_state)


def parse_time_in_state(text: str) -> dict[int, float]:
    """Parse the sysfs ``stats/time_in_state`` format into seconds per kHz."""
    out: dict[int, float] = {}
    for line in text.strip().splitlines():
        parts = line.split()
        if len(parts) != 2:
            raise AnalysisError(f"malformed time_in_state line: {line!r}")
        khz, ticks = int(parts[0]), int(parts[1])
        out[khz] = ticks / USER_HZ
    if not out:
        raise AnalysisError("empty time_in_state")
    return out


def mean_frequency_khz(residency: Mapping[int, float]) -> float:
    """Residency-weighted mean frequency."""
    total = sum(residency.values())
    if total <= 0.0:
        raise AnalysisError("empty residency histogram")
    return sum(khz * frac for khz, frac in residency.items()) / total


def top_frequency_share(residency: Mapping[int, float], n_top: int = 2) -> float:
    """Combined residency of the ``n_top`` highest frequencies.

    The paper's headline observation is that throttling drives this to ~0.
    """
    if not residency:
        raise AnalysisError("empty residency histogram")
    top = sorted(residency)[-n_top:]
    return sum(residency[khz] for khz in top)


def residency_shift(
    unthrottled: Mapping[int, float], throttled: Mapping[int, float]
) -> float:
    """Downward shift of the mean frequency caused by throttling, as a
    fraction of the unthrottled mean (positive = slower under throttling)."""
    base = mean_frequency_khz(unthrottled)
    after = mean_frequency_khz(throttled)
    return (base - after) / base
