"""Power-distribution breakdowns (the paper's Figure 9 pie charts)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class PowerBreakdown:
    """Average total power and per-rail shares over a window."""

    total_w: float
    shares: dict[str, float]

    def share_pct(self, rail: str) -> float:
        """Share of one rail in percent."""
        try:
            return self.shares[rail] * 100.0
        except KeyError:
            raise AnalysisError(
                f"no rail {rail!r}; have {sorted(self.shares)}"
            ) from None

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {"total_w": self.total_w, "shares": dict(self.shares)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PowerBreakdown":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total_w=float(data["total_w"]),
            shares={str(r): float(s) for r, s in data["shares"].items()},
        )


def breakdown_from_traces(
    traces: TraceRecorder,
    rails: Sequence[str],
    start_s: float = 0.0,
    end_s: float | None = None,
) -> PowerBreakdown:
    """Average-power shares of ``rails`` from ``power.<rail>`` channels."""
    means: dict[str, float] = {}
    for rail in rails:
        times, watts = traces.series(f"power.{rail}")
        if end_s is not None:
            mask = (times >= start_s) & (times < end_s)
        else:
            mask = times >= start_s
        if not mask.any():
            raise AnalysisError(f"no power samples for rail {rail!r} in window")
        means[rail] = float(watts[mask].mean())
    total = sum(means.values())
    if total <= 0.0:
        raise AnalysisError("zero total power in window")
    return PowerBreakdown(
        total_w=total, shares={r: w / total for r, w in means.items()}
    )


def breakdown_delta(
    before: PowerBreakdown, after: PowerBreakdown, rail: str
) -> float:
    """Change of one rail's share (percentage points, after - before)."""
    return (after.shares.get(rail, 0.0) - before.shares.get(rail, 0.0)) * 100.0
