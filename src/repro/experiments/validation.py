"""Model-validation experiment: the Section IV.A analysis vs the plant.

The governor trusts the lumped fixed-point analysis; this experiment
quantifies that trust.  The big cluster is pinned (userspace governor) at a
ladder of frequencies under a fixed two-thread load, each operating point is
run to thermal steady state, and the analysis' predicted fixed point is
compared against the plant's settled hotspot temperature.  The hottest
configurations cross the critical power, where the check becomes: does the
plant actually run away when the analysis says there is no fixed point?
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.apps.mibench import BatchApp
from repro.core.calibration import lump_platform
from repro.core.fixed_point import StabilityClass, analyze
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.units import kelvin_to_celsius, mhz

DEFAULT_SEED = 3
RUNAWAY_STOP_C = 150.0
SOC_RAILS = ("a15", "a7", "gpu", "mem")


@dataclass(frozen=True)
class ValidationPoint:
    """One pinned operating point: prediction vs plant."""

    freq_mhz: int
    p_dyn_w: float
    predicted_class: str
    predicted_ss_c: float | None
    plant_ss_c: float
    plant_ran_away: bool

    @property
    def error_k(self) -> float | None:
        """Prediction error in kelvin (None for runaway points)."""
        if self.predicted_ss_c is None:
            return None
        return self.predicted_ss_c - self.plant_ss_c

    @property
    def agreement(self) -> bool:
        """Whether the analysis and the plant agree qualitatively."""
        if self.predicted_class == StabilityClass.RUNAWAY.value:
            return self.plant_ran_away
        return not self.plant_ran_away


def _run_point(
    freq_mhz: int, seed: int, settle_s: float, n_threads: int = 2
) -> ValidationPoint:
    sim = Simulation(
        odroid_xu3(),
        [BatchApp("burn", n_threads=n_threads)],
        kernel_config=KernelConfig(
            cpu_governor="userspace", gpu_governor="powersave"
        ),
        seed=seed,
    )
    sim.kernel.userspace_set_speed("a15", mhz(freq_mhz))
    sim.kernel.userspace_set_speed("a7", 200e6)

    def too_hot(s: Simulation) -> bool:
        return kelvin_to_celsius(s.thermal.max_temperature_k()) > RUNAWAY_STOP_C

    sim.run(settle_s, until=too_hot)
    plant_temp_k = sim.thermal.temperature_k("big")
    ran_away = kelvin_to_celsius(plant_temp_k) > RUNAWAY_STOP_C

    shares = sim.energy.breakdown(SOC_RAILS)
    params = lump_platform(sim.platform, sim.thermal, rail_shares=shares)
    soc_watts = sum(
        sim.traces.series(f"power.{rail}")[1][-1] for rail in SOC_RAILS
    )
    p_dyn = max(soc_watts - params.leakage_w(plant_temp_k), 0.01)
    report = analyze(params, p_dyn)
    return ValidationPoint(
        freq_mhz=freq_mhz,
        p_dyn_w=p_dyn,
        predicted_class=report.classification.value,
        predicted_ss_c=(
            None if report.stable_temp_k is None
            else kelvin_to_celsius(report.stable_temp_k)
        ),
        plant_ss_c=kelvin_to_celsius(plant_temp_k),
        plant_ran_away=ran_away,
    )


@lru_cache(maxsize=4)
def steady_state_validation(
    seed: int = DEFAULT_SEED,
    freqs_mhz: tuple[int, ...] = (800, 1200, 1600, 1900),
    settle_s: float = 600.0,
    include_runaway_point: bool = True,
) -> tuple[ValidationPoint, ...]:
    """Prediction-vs-plant sweep over pinned big-cluster frequencies.

    With ``include_runaway_point`` an additional four-thread 2 GHz point is
    appended, which sits beyond the critical power: there the check is the
    qualitative one (analysis says "no fixed point", plant must run away).
    """
    points = [_run_point(f, seed, settle_s) for f in freqs_mhz]
    if include_runaway_point:
        points.append(_run_point(2000, seed, settle_s, n_threads=4))
    return tuple(points)
