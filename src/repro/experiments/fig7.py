"""Figure 7: fixed-point functions at three power levels.

Regenerates the paper's illustration on the Odroid-XU3 lumped parameters:
at 2 W the function has two roots (stable + unstable fixed points), at
5.5 W the roots merge (critically stable), and at 8 W there are none
(thermal runaway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixed_point import FixedPointReport, analyze
from repro.core.stability import (
    ODROID_XU3_LUMPED,
    FixedPointFunction,
    LumpedThermalParams,
)

PAPER_POWERS_W = (2.0, 5.5, 8.0)


@dataclass(frozen=True)
class FixedPointCurve:
    """One panel of Figure 7."""

    p_dyn_w: float
    x: np.ndarray
    f: np.ndarray
    report: FixedPointReport

    @property
    def n_roots(self) -> int:
        """Number of fixed points (2, 1 or 0)."""
        if self.report.stable_aux is None:
            return 0
        if abs(self.report.stable_aux - self.report.unstable_aux) < 1e-6:
            return 1
        return 2


def figure7(
    params: LumpedThermalParams = ODROID_XU3_LUMPED,
    powers_w: tuple[float, ...] = PAPER_POWERS_W,
    x_range: tuple[float, float] = (2.0, 6.0),
    n_points: int = 201,
) -> list[FixedPointCurve]:
    """Evaluate the fixed-point function over the paper's auxiliary range."""
    x = np.linspace(x_range[0], x_range[1], n_points)
    curves = []
    for p_dyn in powers_w:
        func = FixedPointFunction.from_lumped(params, p_dyn)
        f = np.array([func(xi) for xi in x])
        curves.append(
            FixedPointCurve(p_dyn_w=p_dyn, x=x, f=f, report=analyze(params, p_dyn))
        )
    return curves
