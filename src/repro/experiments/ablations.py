"""Ablation studies (extensions beyond the paper's figures).

Two families:

* governor-parameter ablations — how the horizon, window and control period
  of the application-aware governor affect when it migrates, the resulting
  peak temperature, and the foreground frame rate;
* model ablations — how the critical power moves with ambient temperature
  and thermal resistance, and the safe power budget across thermal limits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.apps.gfxbench import ThreeDMarkApp
from repro.apps.mibench import basicmath_large
from repro.core.budget import safe_power_budget_w
from repro.core.fixed_point import critical_power_w
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.core.stability import ODROID_XU3_LUMPED, LumpedThermalParams
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.units import celsius_to_kelvin

DEFAULT_SEED = 3


@dataclass(frozen=True)
class GovernorAblationPoint:
    """Outcome of one governor configuration on the 3DMark+BML scenario."""

    horizon_s: float
    window_s: float
    period_s: float
    first_migration_s: float | None
    peak_temp_c: float
    gt1_fps: float
    n_migrations: int
    time_above_limit_s: float = 0.0
    predictive: bool = True


@lru_cache(maxsize=64)
def governor_point(
    horizon_s: float,
    window_s: float = 1.0,
    period_s: float = 0.1,
    seed: int = DEFAULT_SEED,
    duration_s: float = 150.0,
    t_limit_c: float = 85.0,
    predictive: bool = True,
) -> GovernorAblationPoint:
    """Run 3DMark GT1 + BML under one governor configuration."""
    platform = odroid_xu3()
    mark = ThreeDMarkApp(gt1_duration_s=duration_s, gt2_duration_s=10.0)
    bml = basicmath_large()
    sim = Simulation(platform, [mark, bml], kernel_config=KernelConfig(), seed=seed)
    config = GovernorConfig(
        t_limit_c=t_limit_c, horizon_s=horizon_s, window_s=window_s,
        period_s=period_s, predictive=predictive,
    )
    governor = ApplicationAwareGovernor.for_simulation(sim, config)
    for pid in mark.pids():
        governor.registry.register(pid, mark.name)
    governor.install(sim.kernel)
    sim.run(duration_s)
    times, temps = sim.traces.series("temp.max")
    record_dt = float(times[1] - times[0]) if len(times) > 1 else 0.0
    above = float((temps > t_limit_c).sum()) * record_dt
    first = governor.events[0].time_s if governor.events else None
    return GovernorAblationPoint(
        horizon_s=horizon_s,
        window_s=window_s,
        period_s=period_s,
        first_migration_s=first,
        peak_temp_c=float(np.max(temps)),
        gt1_fps=mark.fps.median_fps(start_s=10.0, end_s=duration_s),
        n_migrations=len(governor.events),
        time_above_limit_s=above,
        predictive=predictive,
    )


def horizon_sweep(
    horizons_s: tuple[float, ...] = (10.0, 30.0, 60.0, 120.0),
    seed: int = DEFAULT_SEED,
) -> list[GovernorAblationPoint]:
    """Earlier horizons migrate later; peak temperature grows accordingly."""
    return [governor_point(h, seed=seed) for h in horizons_s]


def predictive_vs_reactive(
    t_limit_c: float = 78.0,
    seed: int = DEFAULT_SEED,
) -> tuple[GovernorAblationPoint, GovernorAblationPoint]:
    """Head-to-head: the paper's predictive policy vs a reactive baseline.

    The reactive governor performs the same migration but only *after* the
    temperature has crossed the limit; the predictive one acts when the
    fixed-point analysis says the violation is imminent.  Returns
    (predictive, reactive) points on the 3DMark+BML scenario.
    """
    predictive = governor_point(
        60.0, seed=seed, t_limit_c=t_limit_c, predictive=True
    )
    reactive = governor_point(
        60.0, seed=seed, t_limit_c=t_limit_c, predictive=False
    )
    return predictive, reactive


@dataclass(frozen=True)
class PolicyComparisonPoint:
    """Outcome of one thermal-management policy on the game+BML scenario."""

    policy: str
    fps_late: float
    peak_temp_c: float
    bml_progress_gcycles: float
    actions: int


def _game_plus_bml(seed: int):
    from repro.apps.frames import FrameApp, FrameWorkload
    from repro.apps.mibench import basicmath_large

    game = FrameApp(
        "game",
        FrameWorkload(
            cpu_cycles_per_frame=6e6, gpu_cycles_per_frame=8e6,
            target_fps=60.0, sigma=0.05, pipeline_depth=3,
        ),
    )
    bml = basicmath_large()
    sim = Simulation(
        odroid_xu3(), [game, bml], kernel_config=KernelConfig(), seed=seed
    )
    return sim, game, bml


@lru_cache(maxsize=8)
def qos_vs_proposed(
    t_limit_c: float = 62.0,
    seed: int = DEFAULT_SEED,
    duration_s: float = 120.0,
) -> tuple[PolicyComparisonPoint, PolicyComparisonPoint]:
    """The paper's governor vs the related-work QoS-DVFS baseline.

    Both manage the same scenario — a 60 FPS game plus a background BML —
    with the same thermal limit.  The QoS controller can only throttle the
    foreground pipeline; the proposed governor removes the offender instead.
    Returns (proposed, qos).
    """
    from repro.core.qos import QosConfig, QosController

    # --- proposed application-aware governor ------------------------------
    sim_p, game_p, bml_p = _game_plus_bml(seed)
    governor = ApplicationAwareGovernor.for_simulation(
        sim_p, GovernorConfig(t_limit_c=t_limit_c, horizon_s=60.0)
    )
    for pid in game_p.pids():
        governor.registry.register(pid, "game")
    governor.install(sim_p.kernel)
    sim_p.run(duration_s)
    _, temps_p = sim_p.traces.series("temp.max")
    proposed = PolicyComparisonPoint(
        policy="proposed",
        fps_late=game_p.fps.median_fps(start_s=duration_s * 0.75),
        peak_temp_c=float(np.max(temps_p)),
        bml_progress_gcycles=bml_p.progress_gigacycles(),
        actions=len(governor.events),
    )

    # --- QoS-DVFS baseline -------------------------------------------------
    sim_q, game_q, bml_q = _game_plus_bml(seed)
    controller = QosController.for_simulation(
        sim_q, game_q, QosConfig(target_fps=60.0, t_limit_c=t_limit_c)
    )
    controller.install(sim_q.kernel)
    sim_q.run(duration_s)
    _, temps_q = sim_q.traces.series("temp.max")
    qos = PolicyComparisonPoint(
        policy="qos-dvfs",
        fps_late=game_q.fps.median_fps(start_s=duration_s * 0.75),
        peak_temp_c=float(np.max(temps_q)),
        bml_progress_gcycles=bml_q.progress_gigacycles(),
        actions=len(controller.actions),
    )
    return proposed, qos


@lru_cache(maxsize=16)
def _ambient_point(ambient_c: float, seed: int) -> GovernorAblationPoint:
    platform = odroid_xu3()
    mark = ThreeDMarkApp(gt1_duration_s=150.0, gt2_duration_s=10.0)
    bml = basicmath_large()
    sim = Simulation(
        platform, [mark, bml], kernel_config=KernelConfig(), seed=seed,
        ambient_c=ambient_c, initial_temp_c=ambient_c + 20.0,
    )
    config = GovernorConfig(t_limit_c=85.0, horizon_s=60.0)
    governor = ApplicationAwareGovernor.for_simulation(sim, config)
    for pid in mark.pids():
        governor.registry.register(pid, mark.name)
    governor.install(sim.kernel)
    sim.run(150.0)
    _, temps = sim.traces.series("temp.max")
    first = governor.events[0].time_s if governor.events else None
    return GovernorAblationPoint(
        horizon_s=60.0, window_s=1.0, period_s=0.1,
        first_migration_s=first,
        peak_temp_c=float(np.max(temps)),
        gt1_fps=mark.fps.median_fps(start_s=10.0, end_s=150.0),
        n_migrations=len(governor.events),
    )


def ambient_sweep(
    ambients_c: tuple[float, ...] = (15.0, 27.0, 40.0),
    seed: int = DEFAULT_SEED,
) -> list[tuple[float, GovernorAblationPoint]]:
    """The governor across room temperatures: hotter rooms shrink the
    margin, so the predictive migration fires earlier."""
    return [(amb, _ambient_point(amb, seed)) for amb in ambients_c]


def critical_power_vs_ambient(
    ambients_c: tuple[float, ...] = (15.0, 25.0, 35.0, 45.0),
    params: LumpedThermalParams = ODROID_XU3_LUMPED,
) -> list[tuple[float, float]]:
    """(ambient degC, critical power W) — hotter rooms run away sooner."""
    out = []
    for amb_c in ambients_c:
        p = replace(params, t_ambient_k=celsius_to_kelvin(amb_c))
        out.append((amb_c, critical_power_w(p)))
    return out


def critical_power_vs_resistance(
    scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5),
    params: LumpedThermalParams = ODROID_XU3_LUMPED,
) -> list[tuple[float, float]]:
    """(R scale, critical power W) — e.g. a fan halves R and lifts P_crit."""
    out = []
    for scale in scales:
        p = replace(params, r_k_per_w=params.r_k_per_w * scale)
        out.append((scale, critical_power_w(p)))
    return out


def safe_budget_vs_limit(
    limits_c: tuple[float, ...] = (70.0, 80.0, 85.0, 90.0, 95.0),
    params: LumpedThermalParams = ODROID_XU3_LUMPED,
) -> list[tuple[float, float]]:
    """(thermal limit degC, safe dynamic power W)."""
    return [
        (lim, safe_power_budget_w(params, celsius_to_kelvin(lim)))
        for lim in limits_c
    ]
