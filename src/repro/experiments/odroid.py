"""Section IV.C experiments: 3DMark / Nenamark on the Odroid-XU3 model.

Three scenarios per benchmark, exactly as the paper:

* ``alone``         — benchmark only, default kernel policy (IPA);
* ``bml_default``   — benchmark + MiBench basicmath-large in the background,
  default kernel policy ("thermal trip points and ARM intelligent power
  allocation");
* ``bml_proposed``  — benchmark + BML with the stock thermal governor
  replaced by the paper's application-aware governor; the benchmark
  registers itself as real-time so only BML may be migrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.breakdown import PowerBreakdown, breakdown_from_traces
from repro.analysis.figures import Series
from repro.apps.gfxbench import NenamarkApp, ThreeDMarkApp
from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig, ThermalConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import ODROID_XU3, odroid_xu3
from repro.soc.registry import get as get_platform

DEFAULT_SEED = 3
RUN_DURATION_S = 250.0
SCENARIOS = ("alone", "bml_default", "bml_proposed")

#: Rails measurable by the board's INA231 monitors (the Fig. 9 pies).
INA_RAILS = ("a15", "a7", "gpu", "mem")


def odroid_default_thermal() -> ThermalConfig:
    """The board's stock policy (IPA on the big-core sensor), straight
    from its platform definition."""
    return get_platform(ODROID_XU3).stock_thermal_config()


def proposed_governor_config() -> GovernorConfig:
    """The paper's governor: 100 ms period, 1 s window, and the platform
    definition's temperature limit (85 degC on the board)."""
    return GovernorConfig(
        t_limit_c=get_platform(ODROID_XU3).default_t_limit_c,
        horizon_s=60.0, window_s=1.0, period_s=0.1,
    )


@dataclass(frozen=True)
class OdroidRun:
    """Extracted results of one Odroid scenario."""

    scenario: str
    benchmark: str
    gt1_fps: float | None
    gt2_fps: float | None
    nenamark_levels: float | None
    max_temperature: Series
    breakdown: PowerBreakdown
    migrations: tuple[tuple[float, str], ...]  # (time, direction)
    bml_progress_gcycles: float | None
    bml_final_cluster: str | None
    #: The finished simulation, kept for observability export
    #: (``repro table2 --export-dir``): traces, metrics, spans, manifest.
    sim: Simulation | None = None


def _check_scenario(scenario: str) -> None:
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; have {SCENARIOS}"
        )


def _build(scenario: str, benchmark_app, seed: int):
    platform = odroid_xu3()
    apps = [benchmark_app]
    if scenario != "alone":
        apps.append(basicmath_large())
    if scenario == "bml_proposed":
        config = KernelConfig()  # proposed governor replaces the kernel policy
    else:
        config = KernelConfig(thermal=odroid_default_thermal())
    sim = Simulation(platform, apps, kernel_config=config, seed=seed)
    governor = None
    if scenario == "bml_proposed":
        governor = ApplicationAwareGovernor.for_simulation(
            sim, proposed_governor_config()
        )
        for pid in benchmark_app.pids():
            governor.registry.register(pid, benchmark_app.name)
        governor.install(sim.kernel)
    return sim, governor


def _extract(scenario: str, sim: Simulation, governor, benchmark) -> OdroidRun:
    times, temps = sim.traces.series("temp.max")
    migrations = ()
    if governor is not None:
        migrations = tuple((e.time_s, e.direction) for e in governor.events)
    bml_progress = None
    bml_cluster = None
    if "bml" in sim.apps:
        bml = sim.app("bml")
        bml_progress = bml.progress_gigacycles()
        bml_cluster = bml.metrics()["cluster"]
    gt1 = gt2 = levels = None
    if isinstance(benchmark, ThreeDMarkApp):
        gt1, gt2 = benchmark.gt1_fps(), benchmark.gt2_fps()
    if isinstance(benchmark, NenamarkApp) and benchmark.finished:
        levels = benchmark.score_levels
    return OdroidRun(
        scenario=scenario,
        benchmark=benchmark.name,
        gt1_fps=gt1,
        gt2_fps=gt2,
        nenamark_levels=levels,
        max_temperature=Series(scenario, times, temps),
        breakdown=breakdown_from_traces(sim.traces, INA_RAILS, start_s=20.0),
        migrations=migrations,
        bml_progress_gcycles=bml_progress,
        bml_final_cluster=bml_cluster,
        sim=sim,
    )


@lru_cache(maxsize=16)
def run_3dmark(scenario: str, seed: int = DEFAULT_SEED) -> OdroidRun:
    """One 3DMark scenario (GT1 then GT2, 250 s total)."""
    _check_scenario(scenario)
    mark = ThreeDMarkApp(gt1_duration_s=125.0, gt2_duration_s=125.0)
    sim, governor = _build(scenario, mark, seed)
    sim.run(RUN_DURATION_S)
    return _extract(scenario, sim, governor, mark)


@lru_cache(maxsize=16)
def run_nenamark(scenario: str, seed: int = DEFAULT_SEED) -> OdroidRun:
    """One Nenamark scenario (runs until the benchmark terminates)."""
    _check_scenario(scenario)
    nena = NenamarkApp()
    sim, governor = _build(scenario, nena, seed)
    sim.run(400.0, until=lambda s: nena.finished)
    return _extract(scenario, sim, governor, nena)


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II."""

    test: str
    alone: float
    with_bml: float
    with_proposed: float
    paper_alone: float
    paper_with_bml: float
    paper_with_proposed: float
    unit: str


def table2(seed: int = DEFAULT_SEED) -> list[Table2Row]:
    """Application performance under the three scenarios."""
    marks = {s: run_3dmark(s, seed) for s in SCENARIOS}
    nenas = {s: run_nenamark(s, seed) for s in SCENARIOS}
    return [
        Table2Row(
            "3DMark GT1",
            marks["alone"].gt1_fps,
            marks["bml_default"].gt1_fps,
            marks["bml_proposed"].gt1_fps,
            97.0, 86.0, 93.0, "FPS",
        ),
        Table2Row(
            "3DMark GT2",
            marks["alone"].gt2_fps,
            marks["bml_default"].gt2_fps,
            marks["bml_proposed"].gt2_fps,
            51.0, 49.0, 51.0, "FPS",
        ),
        Table2Row(
            "Nenamark3",
            nenas["alone"].nenamark_levels,
            nenas["bml_default"].nenamark_levels,
            nenas["bml_proposed"].nenamark_levels,
            3.5, 3.4, 3.5, "levels",
        ),
    ]


def table2_runs(seed: int = DEFAULT_SEED) -> dict[str, Simulation]:
    """The six simulations behind :func:`table2`, labelled for export."""
    runs = {}
    for scenario in SCENARIOS:
        runs[f"3dmark_{scenario}"] = run_3dmark(scenario, seed).sim
        runs[f"nenamark_{scenario}"] = run_nenamark(scenario, seed).sim
    return runs


def figure89_runs(seed: int = DEFAULT_SEED) -> dict[str, Simulation]:
    """The three 3DMark simulations behind Figures 8/9, labelled for export."""
    return {f"3dmark_{s}": run_3dmark(s, seed).sim for s in SCENARIOS}


def figure8(seed: int = DEFAULT_SEED) -> dict[str, Series]:
    """Maximum SoC temperature over time for the three 3DMark scenarios."""
    return {s: run_3dmark(s, seed).max_temperature for s in SCENARIOS}


def figure9(seed: int = DEFAULT_SEED) -> dict[str, PowerBreakdown]:
    """Power-distribution pies for the three 3DMark scenarios."""
    return {s: run_3dmark(s, seed).breakdown for s in SCENARIOS}
