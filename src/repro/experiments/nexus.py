"""Section III experiments: popular apps on the Nexus 6P model.

Each app runs twice — thermal governor disabled vs enabled — for 140 s (the
x-range of the paper's temperature figures).  Results are cached per
(app, throttling, seed) so the table and the per-app figures share runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.figures import Series
from repro.analysis.residency import residency_fractions
from repro.analysis.tables import percent_reduction
from repro.apps.catalog import CATALOG, make_app, popular_app_names
from repro.kernel.kernel import GPU_DOMAIN, KernelConfig, ThermalConfig
from repro.sim.engine import Simulation
from repro.soc.registry import get as get_platform
from repro.soc.snapdragon810 import NEXUS6P, nexus6p

RUN_DURATION_S = 140.0
DEFAULT_SEED = 3


def nexus_thermal_config() -> ThermalConfig:
    """The phone's stock governor, straight from its platform definition."""
    return get_platform(NEXUS6P).stock_thermal_config()


#: The stock trip temperature (step-wise trips on the package sensor,
#: cooling both CPU clusters and the GPU — what MSM thermal does on the
#: real device), read from the registered platform definition.
NEXUS_TRIP_C = nexus_thermal_config().trips[0].temp_c


@dataclass(frozen=True)
class NexusRun:
    """Extracted results of one app run."""

    app: str
    throttled: bool
    median_fps: float
    temperature: Series            # package temperature over time (degC)
    residency: dict[int, float]    # fractions by kHz
    residency_domain: str          # "gpu" or "a57"
    peak_temp_c: float
    mean_power_w: float
    #: The finished simulation, kept for observability export
    #: (``repro table1 --export-dir``): traces, metrics, spans, manifest.
    sim: Simulation | None = None


@lru_cache(maxsize=32)
def run_app(name: str, throttled: bool, seed: int = DEFAULT_SEED) -> NexusRun:
    """Run one catalog app on the phone, with or without the governor."""
    entry = CATALOG[name]
    platform = nexus6p()
    app = make_app(name)
    config = KernelConfig(
        thermal=nexus_thermal_config() if throttled else None
    )
    sim = Simulation(platform, [app], kernel_config=config, seed=seed,
                     enable_daq=True)
    sim.run(RUN_DURATION_S)
    times, temps = sim.traces.series("temp.soc")
    domain = GPU_DOMAIN if entry.kind == "gpu" else "a57"
    residency = residency_fractions(sim.kernel.policies[domain].time_in_state)
    label = "with throttling" if throttled else "without throttling"
    return NexusRun(
        app=name,
        throttled=throttled,
        median_fps=app.fps.median_fps(start_s=5.0),
        temperature=Series(label, times, temps),
        residency=residency,
        residency_domain=domain,
        peak_temp_c=float(np.max(temps)),
        mean_power_w=sim.daq.mean_power_w(start_s=5.0),
        sim=sim,
    )


def table1_runs(seed: int = DEFAULT_SEED) -> dict[str, Simulation]:
    """The simulations behind :func:`table1`, labelled for export."""
    runs = {}
    for name in popular_app_names():
        runs[f"{name}_base"] = run_app(name, False, seed).sim
        runs[f"{name}_throttled"] = run_app(name, True, seed).sim
    return runs


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    app: str
    fps_without: float
    fps_with: float
    reduction_pct: float
    paper_fps_without: float
    paper_fps_with: float
    paper_reduction_pct: float


def table1(seed: int = DEFAULT_SEED) -> list[Table1Row]:
    """Median frame rates with/without throttling for all five apps."""
    rows = []
    for name in popular_app_names():
        entry = CATALOG[name]
        base = run_app(name, False, seed)
        throt = run_app(name, True, seed)
        rows.append(
            Table1Row(
                app=name,
                fps_without=base.median_fps,
                fps_with=throt.median_fps,
                reduction_pct=percent_reduction(base.median_fps, throt.median_fps),
                paper_fps_without=entry.paper_fps_without,
                paper_fps_with=entry.paper_fps_with,
                paper_reduction_pct=percent_reduction(
                    entry.paper_fps_without, entry.paper_fps_with
                ),
            )
        )
    return rows


def temperature_profiles(
    name: str, seed: int = DEFAULT_SEED
) -> tuple[Series, Series]:
    """Figure 1/3/5 data: (without throttling, with throttling) traces."""
    return (
        run_app(name, False, seed).temperature,
        run_app(name, True, seed).temperature,
    )


def residency_comparison(
    name: str, seed: int = DEFAULT_SEED
) -> tuple[dict[int, float], dict[int, float], str]:
    """Figure 2/4/6 data: (unthrottled, throttled, domain) residencies."""
    base = run_app(name, False, seed)
    throt = run_app(name, True, seed)
    return base.residency, throt.residency, base.residency_domain
