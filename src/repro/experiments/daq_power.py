"""Battery-power study of the five apps (Section III instrumentation).

The paper measures the Nexus 6P's battery power with an NI DAQ at 1 kHz.
While the paper's figures focus on temperature and FPS, the power capture
is the study's backbone; this experiment reports the measured mean battery
power (and the energy-per-frame efficiency) for every app, throttled and
unthrottled — the table a reader would produce from the same capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.experiments.nexus import DEFAULT_SEED, run_app
from repro.apps.catalog import popular_app_names
from repro.units import joules_to_millijoules


@dataclass(frozen=True)
class PowerRow:
    """Mean power and per-frame energy of one app under both governors."""

    app: str
    power_without_w: float
    power_with_w: float
    energy_per_frame_without_mj: float
    energy_per_frame_with_mj: float

    @property
    def power_saving_pct(self) -> float:
        """Battery-power reduction from throttling, in percent."""
        return (1.0 - self.power_with_w / self.power_without_w) * 100.0


@lru_cache(maxsize=4)
def power_study(seed: int = DEFAULT_SEED) -> tuple[PowerRow, ...]:
    """Run the DAQ power study across the whole catalog."""
    rows = []
    for name in popular_app_names():
        base = run_app(name, False, seed)
        throttled = run_app(name, True, seed)
        rows.append(
            PowerRow(
                app=name,
                power_without_w=base.mean_power_w,
                power_with_w=throttled.mean_power_w,
                energy_per_frame_without_mj=joules_to_millijoules(
                    base.mean_power_w / base.median_fps
                ),
                energy_per_frame_with_mj=joules_to_millijoules(
                    throttled.mean_power_w / throttled.median_fps
                ),
            )
        )
    return tuple(rows)
