"""Skin-temperature extension experiment.

The paper's introduction motivates thermal management through *skin*
temperature: it lags the package but is what the user feels, and vendors
limit it around 40-45 degC.  The Nexus 6P model carries a skin node; this
experiment quantifies how the stock governor's package-trip throttling also
bounds the skin temperature during gaming, and how much hotter the shell
gets when throttling is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.figures import Series
from repro.apps.catalog import make_app
from repro.experiments.nexus import RUN_DURATION_S, nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DEFAULT_SEED = 3
#: Typical vendor comfort limit for the shell of a phone.
SKIN_COMFORT_LIMIT_C = 43.0


@dataclass(frozen=True)
class SkinRun:
    """Skin and package temperatures of one app session."""

    app: str
    throttled: bool
    package: Series
    skin: Series
    skin_final_c: float
    skin_rise_c: float


@lru_cache(maxsize=16)
def run_skin(
    app_name: str, throttled: bool, seed: int = DEFAULT_SEED
) -> SkinRun:
    """Run one catalog app and record both package and skin nodes."""
    app = make_app(app_name)
    config = KernelConfig(thermal=nexus_thermal_config() if throttled else None)
    sim = Simulation(nexus6p(), [app], kernel_config=config, seed=seed)
    sim.run(RUN_DURATION_S)
    pkg_t, pkg_v = sim.traces.series("temp.soc")
    skin_t, skin_v = sim.traces.series("temp.skin")
    label = "throttled" if throttled else "unthrottled"
    return SkinRun(
        app=app_name,
        throttled=throttled,
        package=Series(f"pkg-{label}", pkg_t, pkg_v),
        skin=Series(f"skin-{label}", skin_t, skin_v),
        skin_final_c=float(skin_v[-1]),
        skin_rise_c=float(skin_v[-1] - skin_v[0]),
    )


def skin_comparison(
    app_name: str = "paperio", seed: int = DEFAULT_SEED
) -> tuple[SkinRun, SkinRun]:
    """(unthrottled, throttled) skin runs for one app."""
    return run_skin(app_name, False, seed), run_skin(app_name, True, seed)


def skin_lag_s(run: SkinRun, fraction: float = 0.5) -> float:
    """How much later the skin reaches ``fraction`` of its final rise than
    the package does — the thermal lag a skin-aware governor must predict
    across (cf. Egilmez et al., DATE 2015, the paper's ref [5])."""
    def crossing(series: Series) -> float:
        rise = series.final() - series.at(0.0)
        if rise <= 0.0:
            return 0.0
        target = series.at(0.0) + fraction * rise
        above = np.nonzero(series.y >= target)[0]
        return float(series.x[above[0]]) if above.size else float(series.x[-1])

    return crossing(run.skin) - crossing(run.package)
