"""One module per paper artefact: Table I/II, Figures 1-9, ablations."""

from repro.experiments import (
    ablations,
    daq_power,
    fig7,
    interference,
    nexus,
    nexus_governor,
    odroid,
    skin,
    validation,
)

__all__ = [
    "ablations", "daq_power", "fig7", "interference", "nexus",
    "nexus_governor", "odroid",
    "skin", "validation",
]
