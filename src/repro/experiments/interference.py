"""Interference matrix: which backgrounds hurt which foregrounds, and how.

The paper's Section I motivates application-aware management with exactly
this phenomenon: "if a background application increases the temperature,
the governors decrease the frequency of all processors in the system."
This experiment measures it on the phone model with the stock governor: a
grid of foreground apps against background MiBench kernels, reporting the
foreground's FPS loss and the added heat.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.interference import InterferenceResult, measure_interference
from repro.apps.catalog import make_app
from repro.apps.mibench import MIBENCH_SUITE
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DEFAULT_SEED = 3
RUN_DURATION_S = 90.0
FOREGROUNDS = ("stickman", "hangouts")
BACKGROUNDS = ("bml", "fft", "dijkstra")


@lru_cache(maxsize=32)
def _run(foreground: str, background: str | None, seed: int) -> Simulation:
    apps = [make_app(foreground)]
    if background is not None:
        apps.append(MIBENCH_SUITE[background](cluster="a57"))
    sim = Simulation(
        nexus6p(), apps,
        kernel_config=KernelConfig(thermal=nexus_thermal_config()),
        seed=seed,
    )
    sim.run(RUN_DURATION_S)
    return sim


@lru_cache(maxsize=4)
def interference_matrix(
    seed: int = DEFAULT_SEED,
) -> dict[tuple[str, str], InterferenceResult]:
    """(foreground, background) -> measured interference, stock governor."""
    out: dict[tuple[str, str], InterferenceResult] = {}
    for fg in FOREGROUNDS:
        solo = _run(fg, None, seed)
        for bg in BACKGROUNDS:
            contended = _run(fg, bg, seed)
            out[(fg, bg)] = measure_interference(solo, contended, fg, bg)
    return out
