"""Extension: the proposed governor on the *phone* model.

The paper demonstrates the application-aware governor on the Odroid-XU3
(where governors are easy to replace) and offers its Nexus measurements "as
a baseline when evaluating future thermal management algorithms".  This
experiment completes that loop on the simulated phone: a foreground
video-call (Hangouts) plus a background sync service on the big cluster,
under three policies:

* ``none``     — no thermal management (upper performance bound, hot);
* ``stock``    — the shipped step-wise trip governor (throttles everything);
* ``proposed`` — the paper's governor: the sync task is migrated to the
  LITTLE cores, the call is registered as real-time and left alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.apps.catalog import make_app
from repro.apps.mibench import BatchApp
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DEFAULT_SEED = 3
RUN_DURATION_S = 140.0
POLICIES = ("none", "stock", "proposed")
FOREGROUND = "hangouts"


@dataclass(frozen=True)
class PhonePolicyResult:
    """Outcome of one policy on the phone scenario."""

    policy: str
    foreground_fps: float
    peak_temp_c: float
    end_temp_c: float
    sync_progress_gcycles: float
    sync_final_cluster: str
    mean_power_w: float


@lru_cache(maxsize=8)
def run_phone_policy(
    policy: str, seed: int = DEFAULT_SEED
) -> PhonePolicyResult:
    """Run the Hangouts + background-sync scenario under one policy."""
    if policy not in POLICIES:
        raise ConfigurationError(f"unknown policy {policy!r}; have {POLICIES}")
    call = make_app(FOREGROUND)
    sync = BatchApp("sync", n_threads=1)
    config = KernelConfig(
        thermal=nexus_thermal_config() if policy == "stock" else None
    )
    sim = Simulation(
        nexus6p(), [call, sync], kernel_config=config, seed=seed,
        enable_daq=True,
    )
    if policy == "proposed":
        governor = ApplicationAwareGovernor.for_simulation(
            sim, GovernorConfig(t_limit_c=41.0, horizon_s=60.0), sensor="pkg"
        )
        for pid in call.pids():
            governor.registry.register(pid, FOREGROUND)
        governor.install(sim.kernel)
    sim.run(RUN_DURATION_S)
    _, temps = sim.traces.series("temp.soc")
    return PhonePolicyResult(
        policy=policy,
        foreground_fps=call.fps.median_fps(start_s=10.0),
        peak_temp_c=float(np.max(temps)),
        end_temp_c=float(temps[-1]),
        sync_progress_gcycles=sync.progress_gigacycles(),
        sync_final_cluster=sync.metrics()["cluster"],
        mean_power_w=sim.daq.mean_power_w(start_s=5.0),
    )


def phone_policy_comparison(
    seed: int = DEFAULT_SEED,
) -> dict[str, PhonePolicyResult]:
    """All three policies on the same scenario."""
    return {policy: run_phone_policy(policy, seed) for policy in POLICIES}
