"""Declarative scenario runner.

The experiment modules each assemble platform + apps + policy by hand; this
module packages that pattern into a single reusable entry point:

    result = Scenario(
        platform="odroid-xu3",
        apps=(AppSpec.catalog("stickman"), AppSpec.batch("bml")),
        policy="proposed",
        duration_s=120.0,
    ).run()

Policies: ``none`` (no thermal management), ``stock`` (the platform's
default kernel policy: step-wise trips on the phone, IPA on the Odroid),
``proposed`` (the paper's application-aware governor; every non-batch app
is registered as real-time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.breakdown import PowerBreakdown, breakdown_from_traces
from repro.apps.base import Application
from repro.apps.catalog import CATALOG, make_app
from repro.apps.mibench import MIBENCH_SUITE
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation

PLATFORMS = ("nexus6p", "odroid-xu3")
POLICIES = ("none", "stock", "proposed")


@dataclass(frozen=True)
class AppSpec:
    """One workload in a scenario."""

    kind: str  # "catalog" or "batch"
    name: str
    cluster: str | None = None

    @classmethod
    def catalog(cls, name: str, cluster: str | None = None) -> "AppSpec":
        """A Play-Store catalog app (foreground: registered under 'proposed')."""
        if name not in CATALOG:
            raise ConfigurationError(
                f"unknown catalog app {name!r}; have {sorted(CATALOG)}"
            )
        return cls("catalog", name, cluster)

    @classmethod
    def batch(cls, name: str, cluster: str | None = None) -> "AppSpec":
        """A MiBench batch kernel (background: migratable)."""
        if name not in MIBENCH_SUITE:
            raise ConfigurationError(
                f"unknown MiBench kernel {name!r}; have {sorted(MIBENCH_SUITE)}"
            )
        return cls("batch", name, cluster)

    def build(self) -> Application:
        """Instantiate the application."""
        if self.kind == "catalog":
            app = make_app(self.name)
            if self.cluster is not None:
                app._cluster = self.cluster
            return app
        return MIBENCH_SUITE[self.name](cluster=self.cluster)


@dataclass(frozen=True)
class ScenarioResult:
    """Standardised outcome of one scenario run."""

    policy: str
    fps: dict[str, float]
    peak_temp_c: float
    end_temp_c: float
    breakdown: PowerBreakdown
    mean_power_w: float
    governor_events: tuple[tuple[float, str, str], ...]


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment: platform + apps + policy."""

    platform: str
    apps: tuple[AppSpec, ...]
    policy: str = "stock"
    duration_s: float = 120.0
    seed: int = 3
    t_limit_c: float | None = None
    governor: GovernorConfig | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; have {PLATFORMS}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; have {POLICIES}"
            )
        if not self.apps:
            raise ConfigurationError("a scenario needs at least one app")
        if self.duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")

    def _platform(self):
        if self.platform == "nexus6p":
            from repro.soc.snapdragon810 import nexus6p

            return nexus6p()
        from repro.soc.exynos5422 import odroid_xu3

        return odroid_xu3()

    def _kernel_config(self) -> KernelConfig:
        if self.policy != "stock":
            return KernelConfig()
        if self.platform == "nexus6p":
            from repro.experiments.nexus import nexus_thermal_config

            return KernelConfig(thermal=nexus_thermal_config())
        from repro.experiments.odroid import odroid_default_thermal

        return KernelConfig(thermal=odroid_default_thermal())

    def _default_limit_c(self) -> float:
        return 41.0 if self.platform == "nexus6p" else 85.0

    def run(self) -> ScenarioResult:
        """Build, run and summarise the scenario."""
        platform = self._platform()
        apps = [spec.build() for spec in self.apps]
        sim = Simulation(
            platform, apps, kernel_config=self._kernel_config(), seed=self.seed,
            enable_daq=True,
        )
        governor = None
        if self.policy == "proposed":
            config = self.governor or GovernorConfig(
                t_limit_c=self.t_limit_c or self._default_limit_c(),
                horizon_s=60.0,
            )
            governor = ApplicationAwareGovernor.for_simulation(sim, config)
            for spec, app in zip(self.apps, apps):
                if spec.kind == "catalog":
                    for pid in app.pids():
                        governor.registry.register(pid, spec.name)
            governor.install(sim.kernel)
        sim.run(self.duration_s)

        fps = {}
        for spec, app in zip(self.apps, apps):
            metrics = app.metrics()
            if "median_fps" in metrics:
                fps[spec.name] = metrics["median_fps"]
        _, temps = sim.traces.series("temp.max")
        rails = [c.rail for c in platform.clusters]
        rails += [platform.gpu.rail, platform.memory.rail]
        events = ()
        if governor is not None:
            events = tuple(
                (e.time_s, e.name, e.direction) for e in governor.events
            )
        return ScenarioResult(
            policy=self.policy,
            fps=fps,
            peak_temp_c=float(np.max(temps)),
            end_temp_c=float(temps[-1]),
            breakdown=breakdown_from_traces(sim.traces, rails, start_s=5.0),
            mean_power_w=sim.daq.mean_power_w(start_s=5.0),
            governor_events=events,
        )


def compare_policies(
    platform: str,
    apps: tuple[AppSpec, ...],
    duration_s: float = 120.0,
    seed: int = 3,
    t_limit_c: float | None = None,
) -> dict[str, ScenarioResult]:
    """Run the same app mix under all three policies."""
    return {
        policy: Scenario(
            platform=platform, apps=apps, policy=policy,
            duration_s=duration_s, seed=seed, t_limit_c=t_limit_c,
        ).run()
        for policy in POLICIES
    }
