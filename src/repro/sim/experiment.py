"""Declarative scenario runner.

The experiment modules each assemble platform + apps + policy by hand; this
module packages that pattern into a single reusable entry point:

    result = Scenario(
        platform="pixel-xl",
        apps=(AppSpec.catalog("stickman"), AppSpec.batch("bml")),
        policy="proposed",
        duration_s=120.0,
    ).run()

Platforms resolve through :mod:`repro.soc.registry` — any registered
:class:`~repro.soc.defs.PlatformDef` runs here with no code changes.
Policies: ``none`` (no thermal management), ``stock`` (the platform's
registered default kernel policy: step-wise trips on the phones, IPA on
the Odroid), ``proposed`` (the paper's application-aware governor; every
non-batch app is registered as real-time, and the temperature limit
defaults to the platform definition's ``software.t_limit_c``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.breakdown import PowerBreakdown, breakdown_from_traces
from repro.apps.base import Application
from repro.apps.catalog import CATALOG, make_app
from repro.apps.mibench import MIBENCH_SUITE
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.faults.injectors import FaultController
from repro.faults.plan import FaultPlan, resolve_plan
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc import registry as platform_registry

POLICIES = ("none", "stock", "proposed")


@dataclass(frozen=True)
class AppSpec:
    """One workload in a scenario."""

    kind: str  # "catalog" or "batch"
    name: str
    cluster: str | None = None

    @classmethod
    def catalog(cls, name: str, cluster: str | None = None) -> "AppSpec":
        """A Play-Store catalog app (foreground: registered under 'proposed')."""
        if name not in CATALOG:
            raise ConfigurationError(
                f"unknown catalog app {name!r}; have {sorted(CATALOG)}"
            )
        return cls("catalog", name, cluster)

    @classmethod
    def batch(cls, name: str, cluster: str | None = None) -> "AppSpec":
        """A MiBench batch kernel (background: migratable)."""
        if name not in MIBENCH_SUITE:
            raise ConfigurationError(
                f"unknown MiBench kernel {name!r}; have {sorted(MIBENCH_SUITE)}"
            )
        return cls("batch", name, cluster)

    def build(self) -> Application:
        """Instantiate the application."""
        if self.kind == "catalog":
            return make_app(self.name, cluster=self.cluster)
        return MIBENCH_SUITE[self.name](cluster=self.cluster)

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {"kind": self.kind, "name": self.name, "cluster": self.cluster}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AppSpec":
        """Inverse of :meth:`to_dict`, re-running catalog validation."""
        kind = data.get("kind")
        cluster = data.get("cluster")
        if kind == "catalog":
            return cls.catalog(data["name"], cluster)
        if kind == "batch":
            return cls.batch(data["name"], cluster)
        raise ConfigurationError(
            f"unknown AppSpec kind {kind!r}; have ('catalog', 'batch')"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Standardised outcome of one scenario run."""

    policy: str
    fps: dict[str, float]
    peak_temp_c: float
    end_temp_c: float
    breakdown: PowerBreakdown
    mean_power_w: float
    governor_events: tuple[tuple[float, str, str], ...]
    #: Name of the fault plan replayed during the run (None = fault-free).
    fault_plan: str | None = None
    #: (sim time, kind) of every fault-plan event that actually armed —
    #: distinguishes "the plan executed as designed" from a scenario crash.
    faults_injected: tuple[tuple[float, str], ...] = ()
    #: Simulated seconds the proposed governor spent in failsafe mode.
    failsafe_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form — the campaign store's wire format."""
        return {
            "policy": self.policy,
            "fps": dict(self.fps),
            "peak_temp_c": self.peak_temp_c,
            "end_temp_c": self.end_temp_c,
            "breakdown": self.breakdown.to_dict(),
            "mean_power_w": self.mean_power_w,
            "governor_events": [list(e) for e in self.governor_events],
            "fault_plan": self.fault_plan,
            "faults_injected": [list(e) for e in self.faults_injected],
            "failsafe_s": self.failsafe_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioResult":
        """Inverse of :meth:`to_dict` (fault fields optional, pre-1.1)."""
        fault_plan = data.get("fault_plan")
        return cls(
            policy=str(data["policy"]),
            fps={str(k): float(v) for k, v in data["fps"].items()},
            peak_temp_c=float(data["peak_temp_c"]),
            end_temp_c=float(data["end_temp_c"]),
            breakdown=PowerBreakdown.from_dict(data["breakdown"]),
            mean_power_w=float(data["mean_power_w"]),
            governor_events=tuple(
                (float(t), str(name), str(direction))
                for t, name, direction in data["governor_events"]
            ),
            fault_plan=None if fault_plan is None else str(fault_plan),
            faults_injected=tuple(
                (float(t), str(kind))
                for t, kind in data.get("faults_injected", ())
            ),
            failsafe_s=float(data.get("failsafe_s", 0.0)),
        )


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment: platform + apps + policy."""

    platform: str
    apps: tuple[AppSpec, ...]
    policy: str = "stock"
    duration_s: float = 120.0
    seed: int = 3
    t_limit_c: float | None = None
    governor: GovernorConfig | None = None
    ambient_c: float | None = None
    #: Fault plan to replay (a plan, a built-in plan name, or a plan dict).
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not platform_registry.is_registered(self.platform):
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; "
                f"have {platform_registry.platform_names()}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; have {POLICIES}"
            )
        if not self.apps:
            raise ConfigurationError("a scenario needs at least one app")
        if self.duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            object.__setattr__(self, "faults", resolve_plan(self.faults))

    def to_dict(self) -> dict:
        """Complete JSON-serialisable description — the cache-key input."""
        return {
            "platform": self.platform,
            "apps": [spec.to_dict() for spec in self.apps],
            "policy": self.policy,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "t_limit_c": self.t_limit_c,
            "governor": None if self.governor is None else self.governor.to_dict(),
            "ambient_c": self.ambient_c,
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Inverse of :meth:`to_dict`; optional keys fall back to defaults."""
        known = {
            "platform", "apps", "policy", "duration_s", "seed",
            "t_limit_c", "governor", "ambient_c", "faults",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Scenario field(s) {sorted(unknown)}; have {sorted(known)}"
            )
        governor = data.get("governor")
        if isinstance(governor, Mapping):
            governor = GovernorConfig.from_dict(governor)
        return cls(
            platform=data["platform"],
            apps=tuple(
                spec if isinstance(spec, AppSpec) else AppSpec.from_dict(spec)
                for spec in data["apps"]
            ),
            policy=data.get("policy", "stock"),
            duration_s=data.get("duration_s", 120.0),
            seed=data.get("seed", 3),
            t_limit_c=data.get("t_limit_c"),
            governor=governor,
            ambient_c=data.get("ambient_c"),
            faults=data.get("faults"),
        )

    def _platform(self):
        return platform_registry.build(self.platform)

    def _kernel_config(self) -> KernelConfig:
        if self.policy != "stock":
            return KernelConfig()
        thermal = platform_registry.get(self.platform).stock_thermal_config()
        return KernelConfig(thermal=thermal)

    def _default_limit_c(self) -> float:
        return platform_registry.get(self.platform).default_t_limit_c

    def run(self) -> ScenarioResult:
        """Build, run and summarise the scenario."""
        _, result = self._execute()
        return result

    def run_instrumented(self) -> tuple[ScenarioResult, dict]:
        """Run and also return the simulation's telemetry snapshot.

        The snapshot (see :meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
        is stamped with the final simulation time and excludes wall-clock
        families, so it is byte-deterministic: campaign workers ship it to
        the parent for cross-process merging.
        """
        sim, result = self._execute()
        snapshot = sim.metrics.snapshot(
            as_of_s=sim.clock.now, include_wall_clock=False
        )
        return result, snapshot

    def _build(self) -> "_BuiltScenario":
        """Construct the simulation without running it.

        The pre-run half of :meth:`_execute`, split out so
        :func:`run_scenarios_batched` can assemble many scenarios and advance
        them together through one :class:`repro.sim.batch.BatchSimulation`.
        """
        platform = self._platform()
        apps = [spec.build() for spec in self.apps]
        sim = Simulation(
            platform, apps, kernel_config=self._kernel_config(), seed=self.seed,
            ambient_c=self.ambient_c, enable_daq=True,
        )
        governor = None
        if self.policy == "proposed":
            config = self.governor or GovernorConfig(
                t_limit_c=self.t_limit_c or self._default_limit_c(),
                horizon_s=60.0,
            )
            governor = ApplicationAwareGovernor.for_simulation(sim, config)
            for spec, app in zip(self.apps, apps):
                if spec.kind == "catalog":
                    for pid in app.pids():
                        governor.registry.register(pid, spec.name)
            governor.install(sim.kernel)
        controller = None
        if self.faults is not None:
            controller = FaultController(self.faults, sim, governor=governor)
            controller.attach()
        return _BuiltScenario(self, platform, apps, sim, governor, controller)

    def _execute(self) -> tuple[Simulation, ScenarioResult]:
        built = self._build()
        built.sim.run(self.duration_s)
        return built.sim, built.finalize()

    def _summarize(self, platform, apps, sim, governor, controller) -> ScenarioResult:
        """Reduce a finished simulation to a :class:`ScenarioResult`."""
        fps = {}
        for spec, app in zip(self.apps, apps):
            metrics = app.metrics()
            if "median_fps" in metrics:
                fps[spec.name] = metrics["median_fps"]
        _, temps = sim.traces.series("temp.max")
        rails = [c.rail for c in platform.clusters]
        rails += [platform.gpu.rail, platform.memory.rail]
        events: tuple[tuple[float, str, str], ...] = ()
        failsafe_s = 0.0
        if governor is not None:
            merged = [(e.time_s, e.name, e.direction) for e in governor.events]
            merged += [
                (e.time_s, "failsafe", e.action) for e in governor.failsafe_events
            ]
            events = tuple(sorted(merged))
            failsafe_s = governor.failsafe_s
        fault_plan = None
        faults_injected: tuple[tuple[float, str], ...] = ()
        if controller is not None:
            fault_plan = controller.plan.name
            faults_injected = tuple(controller.injected)
        return ScenarioResult(
            policy=self.policy,
            fps=fps,
            peak_temp_c=float(np.max(temps)),
            end_temp_c=float(temps[-1]),
            breakdown=breakdown_from_traces(sim.traces, rails, start_s=5.0),
            mean_power_w=sim.daq.mean_power_w(start_s=5.0),
            governor_events=events,
            fault_plan=fault_plan,
            faults_injected=faults_injected,
            failsafe_s=failsafe_s,
        )


@dataclass
class _BuiltScenario:
    """A scenario assembled but not yet run (see :meth:`Scenario._build`)."""

    scenario: Scenario
    platform: object
    apps: list
    sim: Simulation
    governor: object | None
    controller: object | None

    def finalize(self) -> ScenarioResult:
        """Close out a finished run and reduce it to a result."""
        if self.controller is not None:
            self.controller.finalize(self.sim.clock.now)
        return self.scenario._summarize(
            self.platform, self.apps, self.sim, self.governor, self.controller
        )

    def snapshot(self) -> dict:
        """The deterministic telemetry snapshot (as in ``run_instrumented``)."""
        return self.sim.metrics.snapshot(
            as_of_s=self.sim.clock.now, include_wall_clock=False
        )


def run_scenarios_batched(
    scenarios: "Sequence[Scenario]", fast: bool = True
) -> list[tuple[ScenarioResult, dict]]:
    """Run many scenarios through one stacked stepper.

    Builds every scenario's simulation up front and advances them together
    with :class:`repro.sim.batch.BatchSimulation`, which vectorizes the
    thermal integration (and, for steady stretches, the whole tick) across
    members while guaranteeing byte-identical traces, deterministic metrics
    and DAQ samples versus running each scenario alone.  Scenarios whose
    kernels carry daemons — the ``proposed`` governor, fault controllers —
    are stepped scalar inside the batch and remain exactly reproducible.

    Returns one ``(result, snapshot)`` pair per scenario, in input order,
    identical to calling :meth:`Scenario.run_instrumented` on each.
    """
    from repro.sim.batch import BatchSimulation

    if not scenarios:
        return []
    built = [scenario._build() for scenario in scenarios]
    batch = BatchSimulation([b.sim for b in built], fast=fast)
    batch.run_each([scenario.duration_s for scenario in scenarios])
    return [(b.finalize(), b.snapshot()) for b in built]


def compare_policies(
    platform: str,
    apps: tuple[AppSpec, ...],
    duration_s: float = 120.0,
    seed: int = 3,
    t_limit_c: float | None = None,
) -> dict[str, ScenarioResult]:
    """Run the same app mix under all three policies."""
    return {
        policy: Scenario(
            platform=platform, apps=apps, policy=policy,
            duration_s=duration_s, seed=seed, t_limit_c=t_limit_c,
        ).run()
        for policy in POLICIES
    }
