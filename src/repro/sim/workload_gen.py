"""Random workload generation for stress/robustness testing.

Draws plausible frame-pipeline workloads and batch kernels from documented
parameter ranges.  Used by the robustness tests: whatever mix the generator
produces, the simulated device must stay numerically sane and, under the
stock policy, thermally bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import BatchApp
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadRanges:
    """Plausible mobile-app parameter ranges (inclusive bounds)."""

    cpu_mcycles: tuple[float, float] = (2.0, 90.0)
    gpu_mcycles: tuple[float, float] = (1.0, 20.0)
    target_fps: tuple[float, float] = (30.0, 60.0)
    sigma: tuple[float, float] = (0.0, 0.8)
    phase_amp: tuple[float, float] = (0.0, 0.7)
    phase_period_s: tuple[float, float] = (5.0, 40.0)
    touch_rate_hz: tuple[float, float] = (0.0, 4.0)

    def __post_init__(self) -> None:
        for name, (lo, hi) in self.__dict__.items():
            if lo > hi:
                raise ConfigurationError(f"range {name} is inverted")


class WorkloadGenerator:
    """Draws random apps from a :class:`WorkloadRanges` envelope."""

    def __init__(
        self,
        rng: np.random.Generator,
        ranges: WorkloadRanges | None = None,
    ) -> None:
        self._rng = rng
        self.ranges = ranges or WorkloadRanges()
        self._counter = 0

    def _draw(self, bounds: tuple[float, float]) -> float:
        lo, hi = bounds
        return float(self._rng.uniform(lo, hi))

    def frame_app(self, name: str | None = None) -> FrameApp:
        """One random frame-pipeline app."""
        self._counter += 1
        r = self.ranges
        workload = FrameWorkload(
            cpu_cycles_per_frame=self._draw(r.cpu_mcycles) * 1e6,
            gpu_cycles_per_frame=self._draw(r.gpu_mcycles) * 1e6,
            target_fps=self._draw(r.target_fps),
            sigma=self._draw(r.sigma),
            phase_amp=self._draw(r.phase_amp),
            phase_period_s=self._draw(r.phase_period_s),
            pipeline_depth=int(self._rng.integers(1, 4)),
            touch_rate_hz=self._draw(r.touch_rate_hz),
        )
        return FrameApp(name or f"rand_app_{self._counter}", workload)

    def batch_app(self, name: str | None = None) -> BatchApp:
        """One random batch kernel (compute- or memory-bound)."""
        self._counter += 1
        if self._rng.random() < 0.5:
            rate = None
        else:
            rate = float(self._rng.uniform(0.3, 2.5))
        return BatchApp(
            name or f"rand_batch_{self._counter}",
            n_threads=int(self._rng.integers(1, 3)),
            rate_gcycles_per_s=rate,
        )

    def mix(self, n_frame: int, n_batch: int) -> list:
        """A random app mix with unique names."""
        apps = [self.frame_app() for _ in range(n_frame)]
        apps += [self.batch_app() for _ in range(n_batch)]
        return apps
