"""Time-series trace recording for simulations.

A :class:`TraceRecorder` collects named scalar channels sampled at arbitrary
times.  Channels are created lazily on first ``record``.  Analyses consume
traces through :meth:`TraceRecorder.series`, which returns ``(times, values)``
as numpy arrays, or :meth:`TraceRecorder.channel` for the raw channel object.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import AnalysisError


class TraceChannel:
    """One named scalar time series.

    The numpy views returned by :attr:`times`/:attr:`values` are cached and
    invalidated on :meth:`append` — analyses poll channels far more often
    than the engine appends, and rebuilding the arrays was an O(n) copy per
    access on hot channels.  The cached arrays are marked read-only so a
    consumer cannot corrupt the shared copy.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        self._times_arr: np.ndarray | None = None
        self._values_arr: np.ndarray | None = None

    def append(self, time_s: float, value: float) -> None:
        """Record ``value`` at ``time_s``; times must be non-decreasing."""
        if self._times and time_s < self._times[-1]:
            raise AnalysisError(
                f"channel {self.name!r}: time went backwards "
                f"({time_s} < {self._times[-1]})"
            )
        self._times.append(float(time_s))
        self._values.append(float(value))
        self._times_arr = None
        self._values_arr = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample times in seconds (cached, read-only)."""
        if self._times_arr is None:
            self._times_arr = np.asarray(self._times, dtype=float)
            self._times_arr.setflags(write=False)
        return self._times_arr

    @property
    def values(self) -> np.ndarray:
        """Sample values (cached, read-only)."""
        if self._values_arr is None:
            self._values_arr = np.asarray(self._values, dtype=float)
            self._values_arr.setflags(write=False)
        return self._values_arr

    def last(self) -> float:
        """Most recent value; raises if the channel is empty."""
        if not self._values:
            raise AnalysisError(f"channel {self.name!r} is empty")
        return self._values[-1]


class TraceRecorder:
    """Lazily-created collection of :class:`TraceChannel` objects."""

    def __init__(self) -> None:
        self._channels: dict[str, TraceChannel] = {}

    def record(self, name: str, time_s: float, value: float) -> None:
        """Append one sample to channel ``name`` (created if absent)."""
        channel = self._channels.get(name)
        if channel is None:
            channel = TraceChannel(name)
            self._channels[name] = channel
        channel.append(time_s, value)

    def record_many(self, time_s: float, samples: dict[str, float]) -> None:
        """Append one sample per (name, value) pair at a shared timestamp."""
        for name, value in samples.items():
            self.record(name, time_s, value)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def names(self) -> list[str]:
        """Sorted names of all channels recorded so far."""
        return sorted(self._channels)

    def channel(self, name: str) -> TraceChannel:
        """Return the channel object for ``name``; raises if unknown."""
        try:
            return self._channels[name]
        except KeyError:
            raise AnalysisError(
                f"no trace channel {name!r}; available: {self.names()}"
            ) from None

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for channel ``name``."""
        channel = self.channel(name)
        return channel.times, channel.values

    def window(
        self, name: str, start_s: float, end_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the samples of ``name`` with start_s <= t < end_s."""
        times, values = self.series(name)
        mask = (times >= start_s) & (times < end_s)
        return times[mask], values[mask]

    def merge_prefixed(self, other: "TraceRecorder", prefix: str) -> None:
        """Copy every channel of ``other`` into this recorder as ``prefix.name``."""
        for name in other.names():
            src = other.channel(name)
            dst_name = f"{prefix}.{name}"
            for t, v in zip(src.times, src.values):
                self.record(dst_name, float(t), float(v))


def resample_zoh(
    times: Iterable[float], values: Iterable[float], grid: np.ndarray
) -> np.ndarray:
    """Zero-order-hold resample a series onto ``grid``.

    Grid points before the first sample take the first value.  Used by the
    analysis layer to align channels recorded at different rates.
    """
    times = np.asarray(list(times), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if times.size == 0:
        raise AnalysisError("cannot resample an empty series")
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, times.size - 1)
    return values[idx]
