"""Stacked-scenario batch stepping with a byte-identical vectorized fast path.

A :class:`BatchSimulation` advances N independent :class:`Simulation`
instances in lock-step.  Scenarios whose device has reached a *steady*
operating point — constant frequencies, constant scheduler activity,
settled cpuidle states, no pending application events — are *promoted* to a
vectorized fast path: their thermal states are stacked into one
``(N, nodes)`` matrix (row views adopted by each model, so zone sensors
stay live), per-rail power is elementwise vector arithmetic across
scenarios, and every strictly linear accounting quantity (utilisation
windows, ``time_in_state``, cpuidle residency and dwell, task CPU time,
energy) accumulates in a single ``acc += rate`` matrix add per tick.

Byte identity with N separate ``sim.run()`` calls is the contract, not an
aspiration.  Everything event-like still runs the *real* scalar code at
exactly the ticks it would have run: thermal zones poll through
:meth:`ThermalZone.poll` (consuming the same sensor RNG draws), records go
through :meth:`Simulation._record`, and the real periodic timers are polled
on their true fire ticks so their deadlines advance naturally.  DVFS
governor evaluations are *absorbed* only when a side-effect-free probe — a
throwaway policy primed with the live utilisation window and run through
the real governor object — proves the evaluation would leave the frequency
unchanged.  Any probe failure, or a post-poll invariant violation (a zone
poll moved a frequency or a cooling-device state), *demotes* the scenario:
its accumulators are written back and the tick is completed through the
kernel's real phase methods, after which the scenario steps scalar until
the next segment boundary re-checks promotion.

The fast path's only observable divergences are wall-clock-domain:
absorbed governor fires emit no ``governor.update`` span and no decision-
latency observation (a wall-clock histogram excluded from deterministic
snapshots anyway).  See ``docs/ENGINE.md`` for the full contract.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.cpuidle import IDLE_BUSY_THRESHOLD
from repro.kernel.gpu import GpuTickResult
from repro.kernel.kernel import GPU_DOMAIN, KernelTickResult
from repro.kernel.scheduler import ClusterUsage, _weighted_water_fill, nice_to_weight
from repro.obs.profiler import NULL_PROFILER, StepProfiler
from repro.sim.clock import ticks_for_duration
from repro.sim.engine import Simulation
from repro.soc.platform import BOARD_RAIL
from repro.soc.power_model import dynamic_power_w, memory_activity_proxy
from repro.units import hz_to_khz

#: Ticks per fast segment; promotion is re-checked at segment boundaries.
SEGMENT_TICKS = 512

#: Segment length while nothing is promoted yet.  Devices typically settle
#: (cpuidle dwell satisfied, sensors primed) within a few dozen ticks of a
#: cold start; short segments keep the time-to-promotion low without paying
#: per-segment setup costs once the batch is cruising.
RAMP_TICKS = 32

#: Governors whose ``update`` is known to touch only the policy object, so a
#: probe evaluation has no side effects (no RNG, no sensor reads).  Anything
#: else — e.g. a registered proposed governor — keeps its scenario scalar.
_STOCK_GOVERNOR_MODULE = "repro.kernel.cpufreq.governors"


class _FireSchedule:
    """Precomputed firing pattern of one PeriodicTimer over a segment.

    Replicates :meth:`repro.sim.clock.PeriodicTimer.poll` exactly — the
    tolerance and the catch-up loop — against ``now = (k0 + j) * dt``.
    ``fires`` holds the firing local ticks; :meth:`deadline_before` gives the
    timer's deadline as of any local tick, so real timers can be synced by a
    single write instead of a poll per member per fire tick.
    """

    __slots__ = ("fires", "_initial", "_fire_list", "_after")

    def __init__(self, deadline: float, period: float, k0: int, n: int,
                 dt: float) -> None:
        self._initial = deadline
        self.fires = set()
        self._fire_list = []
        self._after = []
        for j in range(n):
            now = (k0 + j) * dt
            if now + 1e-12 < deadline:
                continue
            while deadline <= now + 1e-12:
                deadline += period
            self.fires.add(j)
            self._fire_list.append(j)
            self._after.append(deadline)

    def deadline_before(self, j: int) -> float:
        """The timer's deadline once every tick ``< j`` has been processed."""
        i = bisect_right(self._fire_list, j - 1)
        return self._after[i - 1] if i else self._initial

    def deadline_after(self, j: int) -> float:
        """The deadline once tick ``j``'s fire (if any) has been consumed."""
        return self.deadline_before(j + 1)

    def count_before(self, j: int) -> int:
        """How many fires land on ticks ``< j``."""
        return bisect_right(self._fire_list, j - 1)


def _daq_schedule(next_sample_s: float, rate_hz: float, k0: int, n: int, dt: float):
    """Per-tick DAQ sample layout for local ticks ``[0, n)``.

    Replicates :meth:`repro.power.daq.PowerDaq.capture` arithmetic —
    including the persisted clamp of ``_next_sample_s`` on empty windows and
    the ``times < end - 1e-12`` filter.  The time grid is seed-independent,
    so one schedule serves every scenario of a segment.  Returns
    ``(offsets, times, next_after)``: ``offsets[j]`` is the cumulative
    sample count before local tick ``j`` (length ``n + 1``), ``times`` the
    concatenated sample times, and ``next_after[j]`` the value of
    ``_next_sample_s`` after tick ``j``.
    """
    period = 1.0 / rate_hz
    counts = np.zeros(n, dtype=np.int64)
    chunks = []
    next_after = np.zeros(n)
    cur = next_sample_s
    for j in range(n):
        start_s = (k0 + j) * dt
        end_s = start_s + dt
        if cur < start_s:
            cur = start_s
        count = int((end_s - cur) / period) + 1
        if cur >= end_s:
            count = 0
        if count > 0:
            times = cur + period * np.arange(count)
            times = times[times < end_s - 1e-12]
            count = times.size
            if count > 0:
                chunks.append(times)
                cur = float(times[-1]) + period
        counts[j] = count
        next_after[j] = cur
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    times_all = np.concatenate(chunks) if chunks else np.empty(0)
    return offsets, times_all, next_after


class _FastSim:
    """Everything constant about one scenario while it is on the fast path."""

    __slots__ = (
        "sim", "row", "kres", "freqs", "rail_consts", "lin_cols", "lin_init",
        "lin_rate", "bi_col", "el_col", "probe_static", "group_key",
        "pending_steps",
    )

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.row = -1
        self.pending_steps = 0


class BatchSimulation:
    """Steps N independent simulations together, vectorizing steady spans.

    All member simulations must share the clock step and sit at the same
    tick.  ``fast=False`` forces pure lock-step scalar stepping (tier 0),
    which isolates fast-path regressions; the output is identical either
    way.  ``profile=True`` attaches a batch-level :class:`StepProfiler`
    whose phases (``kernel``, ``power_assemble``, ``thermal_exact``,
    ``batch_sync``, ``record``) bracket the fast path.
    """

    def __init__(
        self,
        sims: Sequence[Simulation],
        fast: bool = True,
        profile: bool = False,
    ) -> None:
        if not sims:
            raise ConfigurationError("a batch needs at least one simulation")
        self.sims = list(sims)
        dt = self.sims[0].clock.dt
        tick = self.sims[0].clock.tick
        for sim in self.sims:
            if sim.clock.dt != dt:
                raise ConfigurationError(
                    f"batched simulations must share the clock step "
                    f"({sim.clock.dt} != {dt})"
                )
            if sim.clock.tick != tick:
                raise ConfigurationError(
                    "batched simulations must sit at the same tick"
                )
        self._dt = dt
        self._fast_enabled = fast
        self.profiler = StepProfiler() if profile else None
        prof = self.profiler if profile else NULL_PROFILER
        self._ph_step = prof.step()
        self._ph_kernel = prof.phase("kernel")
        self._ph_assemble = prof.phase("power_assemble")
        self._ph_thermal = prof.phase("thermal_exact")
        self._ph_sync = prof.phase("batch_sync")
        self._ph_record = prof.phase("record")
        self._probe_cache: dict = {}
        self._probe_intern: dict = {}
        self._cruising = False
        self.stats = {
            "fast_ticks": 0,
            "scalar_ticks": 0,
            "promotions": 0,
            "demotions": 0,
        }

    # ----------------------------------------------------------------- run

    def run(self, duration_s: float) -> None:
        """Run every member for ``duration_s`` simulated seconds."""
        self.run_each([duration_s] * len(self.sims))

    def run_each(self, durations_s: Sequence[float]) -> None:
        """Run member ``i`` for ``durations_s[i]`` seconds, in lock-step.

        Members retire as they reach their own end tick; the rest continue.
        Segment boundaries never cross a retirement, so every active member
        always sits at the same tick.
        """
        if len(durations_s) != len(self.sims):
            raise ConfigurationError(
                f"need one duration per simulation "
                f"({len(durations_s)} != {len(self.sims)})"
            )
        for duration in durations_s:
            if duration <= 0.0:
                raise ConfigurationError("duration must be positive")
        remaining = [ticks_for_duration(d, self._dt) for d in durations_s]
        while True:
            active = [i for i, left in enumerate(remaining) if left > 0]
            if not active:
                return
            segment = SEGMENT_TICKS if self._cruising else RAMP_TICKS
            block = min(segment, min(remaining[i] for i in active))
            self._run_segment([self.sims[i] for i in active], block)
            for i in active:
                remaining[i] -= block

    # ------------------------------------------------------------ segments

    def _run_segment(self, active: list, n: int) -> None:
        k0 = active[0].clock.tick
        fast: list[_FastSim] = []
        if self._fast_enabled:
            with self._ph_sync:
                for sim in active:
                    rec = self._try_promote(sim)
                    if rec is None:
                        continue
                    if fast and rec.group_key != fast[0].group_key:
                        # Different platform or timer/DAQ phasing: the
                        # shared fire schedules would not apply.  Run this
                        # member scalar for the segment.
                        continue
                    fast.append(rec)
                self.stats["promotions"] += len(fast)
        self._cruising = bool(fast)
        fast_ids = {id(rec.sim) for rec in fast}
        scalar = [sim for sim in active if id(sim) not in fast_ids]
        if fast:
            self._run_fast(fast, scalar, k0, n)
        else:
            for _ in range(n):
                with self._ph_step:
                    for sim in scalar:
                        sim.step()
            self.stats["scalar_ticks"] += n * len(scalar)

    # ----------------------------------------------------------- promotion

    def _try_promote(self, sim: Simulation) -> _FastSim | None:
        """Build a promotion record, or return None if the sim isn't steady."""
        kernel = sim.kernel
        now = sim.clock.now
        dt = self._dt
        if sim.battery is not None or sim.profiler is not None:
            return None
        if kernel._daemons:
            return None
        for app in sim._apps.values():
            if not app.steady():
                return None
        if kernel.gpu.queue_depth != 0:
            return None
        scheduler = kernel.scheduler
        for task in scheduler._tasks.values():
            if task.runnable and (not task.unbounded or task._queue):
                return None
        for governor in kernel.governors.values():
            if type(governor).__module__ != _STOCK_GOVERNOR_MODULE:
                return None
        for policy in kernel.policies.values():
            if policy.boosted(now):
                return None
        for device in kernel.cooling_devices:
            if kernel._cooling_states.get(device.name) != device.cur_state:
                return None
        for sensor in kernel.power_sensors.values():
            if sensor._ema_w is None:
                return None

        # --- replicate one scheduler tick without mutating anything ------
        # (Scheduler.run_tick would call Task.consume, which accumulates
        # CPU-time accounting; here the grants become per-tick rates.)
        freqs = {name: p.cur_freq_hz for name, p in kernel.policies.items()}
        usage: dict[str, ClusterUsage] = {}
        task_rates = []
        for cname, spec in scheduler._clusters.items():
            freq = freqs[cname] if kernel._cluster_online[cname] else 0.0
            capacity = spec.capacity_cycles(freq, dt)
            per_core = capacity / spec.n_cores
            runnable = [
                t for t in scheduler._tasks.values()
                if t.runnable and t.cluster == cname
            ]
            ceilings = [t.demand_cycles(per_core) for t in runnable]
            weights = [nice_to_weight(t.nice) for t in runnable]
            grants = _weighted_water_fill(capacity, ceilings, weights)
            used = 0.0
            per_task: dict[int, float] = {}
            max_core_load = 0.0
            for task, grant in zip(runnable, grants):
                if grant <= 0.0:
                    continue
                rate = spec.ipc * freq
                task_rates.append((task, cname, grant / rate, grant))
                per_task[task.pid] = grant
                used += grant
                threads = min(task.n_threads, spec.n_cores)
                max_core_load = max(max_core_load, grant / (per_core * threads))
            busy_cores = used / (spec.ipc * freq * dt) if freq > 0 else 0.0
            cluster_load = busy_cores / spec.n_cores
            usage[cname] = ClusterUsage(
                capacity_cycles=capacity,
                used_cycles=used,
                busy_cores=busy_cores,
                per_task_cycles=per_task,
                max_core_load=min(max(max_core_load, cluster_load), 1.0),
            )

        # IPA reads policy.last_util / last_mean_util *live* mid-segment, so
        # the frozen values must already be what every tick re-asserts.
        busy = {}
        mean_util = {}
        for cluster in sim.platform.clusters:
            u = usage[cluster.name]
            busy[cluster.name] = u.max_core_load
            mean_util[cluster.name] = u.busy_cores / cluster.n_cores
        busy[GPU_DOMAIN] = 0.0
        mean_util[GPU_DOMAIN] = 0.0
        for domain, policy in kernel.policies.items():
            if policy._last_util != busy[domain]:
                return None
            if policy._last_mean_util != mean_util[domain]:
                return None

        # --- cpuidle must be settled (constant state, constant scale) ----
        idle_busy = {
            c.name: usage[c.name].busy_cores for c in sim.platform.clusters
        }
        idle_busy[GPU_DOMAIN] = 0.0
        idle_cores = {c.name: c.n_cores for c in sim.platform.clusters}
        idle_cores[GPU_DOMAIN] = 1
        idle_scales = {}
        idle_is_idle = {}
        for domain, gov in kernel.idle_governors.items():
            level = idle_busy[domain] / max(idle_cores[domain], 1)
            if level > IDLE_BUSY_THRESHOLD:
                if (gov._idle_dwell_s != 0.0  # repro-lint: disable=R401
                        or gov._current is not gov._states[0]):
                    return None
                idle_is_idle[domain] = False
            else:
                deepest = gov._states[-1]
                if (gov._current is not deepest
                        or gov._idle_dwell_s < deepest.entry_dwell_s):
                    return None
                idle_is_idle[domain] = True
            idle_scales[domain] = gov._current.power_scale

        rec = _FastSim(sim)
        rec.freqs = freqs
        rec.kres = KernelTickResult(
            usage=usage,
            gpu=GpuTickResult(busy_fraction=0.0, completed_tags=[], owner_cycles={}),
            freqs_hz=freqs,
            completed_cpu_tags=[],
        )

        # --- per-rail power constants ------------------------------------
        # One entry per rail_powers() assignment, in assignment order, so a
        # platform routing two components onto one rail overwrites exactly
        # like the scalar dict does:
        # (rail, dyn_w, kappa, -beta, V/Vref, leak_scale, powered, node).
        model = sim.thermal
        node_index = {name: i for i, name in enumerate(model.node_names)}
        total_busy = 0.0
        for cluster in sim.platform.clusters:
            total_busy += usage[cluster.name].busy_cores
        consts = []
        for cluster in sim.platform.clusters:
            spec = kernel.power_model._clusters[cluster.name]
            busy_units = min(usage[cluster.name].busy_cores, float(cluster.n_cores))
            freq = freqs[cluster.name]
            scale = idle_scales[cluster.name]
            voltage = spec.opps.voltage_for(freq)
            dyn = spec.idle_power_w * scale + dynamic_power_w(
                spec.ceff_w_per_v2hz, voltage, freq, busy_units
            )
            leak = spec.leakage
            consts.append((
                spec.rail, dyn, leak.kappa_w_per_k2, -leak.beta_k,
                voltage / leak.v_ref,
                scale if busy_units < 1e-6 else 1.0,
                kernel._cluster_online[cluster.name],
                node_index[cluster.thermal_node],
            ))
        gpu_spec = sim.platform.gpu
        gpu_scale = idle_scales[GPU_DOMAIN]
        gpu_voltage = gpu_spec.opps.voltage_for(freqs[GPU_DOMAIN])
        gpu_dyn = gpu_spec.idle_power_w * gpu_scale + dynamic_power_w(
            gpu_spec.ceff_w_per_v2hz, gpu_voltage, freqs[GPU_DOMAIN], 0.0
        )
        leak = gpu_spec.leakage
        consts.append((
            gpu_spec.rail, gpu_dyn, leak.kappa_w_per_k2, -leak.beta_k,
            gpu_voltage / leak.v_ref, gpu_scale, True,
            node_index[gpu_spec.thermal_node],
        ))
        mem_spec = sim.platform.memory
        mem_activity = memory_activity_proxy(
            total_busy, sum(c.n_cores for c in sim.platform.clusters), 0.0
        )
        mem_dyn = mem_spec.base_power_w + mem_spec.activity_power_w * min(
            mem_activity, 1.0
        )
        leak = mem_spec.leakage
        consts.append((
            mem_spec.rail, mem_dyn, leak.kappa_w_per_k2, -leak.beta_k,
            leak.v_ref / leak.v_ref, 1.0, True,
            node_index[mem_spec.thermal_node],
        ))
        rec.rail_consts = consts

        # --- linear accumulator columns: (kind, handle, initial, rate) ---
        cols = []
        rec.bi_col = {}
        rec.el_col = {}
        for domain, policy in kernel.policies.items():
            rec.bi_col[domain] = len(cols)
            cols.append(("bi", policy, policy._busy_integral_s, busy[domain] * dt))
            rec.el_col[domain] = len(cols)
            cols.append(("el", policy, policy._elapsed_s, dt))
            khz = hz_to_khz(policy.cur_freq_hz)
            cols.append(
                ("tis", (policy, khz), policy._time_in_state.get(khz, 0.0), dt)
            )
        for domain, gov in kernel.idle_governors.items():
            cols.append((
                "dwell", gov, gov._idle_dwell_s,
                dt if idle_is_idle[domain] else 0.0,
            ))
            cols.append((
                "resid", (gov, gov._current.name),
                gov._residency_s[gov._current.name], dt,
            ))
        for task, cname, cs_rate, cycle_rate in task_rates:
            cols.append((
                "task_cs", (task, cname),
                task.core_seconds.get(cname, 0.0), cs_rate,
            ))
            cols.append((
                "task_cyc", (task, cname),
                task.cycles_by_cluster.get(cname, 0.0), cycle_rate,
            ))
        cols.append(("energy_t", sim.energy, sim.energy._elapsed_s, dt))
        rec.lin_cols = cols
        rec.lin_init = np.array([c[2] for c in cols])
        rec.lin_rate = np.array([c[3] for c in cols])

        # Everything a governor probe depends on except the utilisation
        # window is frozen for the whole segment; intern those key parts to
        # one small integer so each absorbed fire costs a tiny tuple hash
        # and a dict lookup instead of rehashing the full fingerprint.
        rec.probe_static = {}
        for domain, governor in kernel.governors.items():
            policy = kernel.policies[domain]
            static = (
                type(governor).__name__,
                tuple(sorted(governor.__dict__.items())),
                tuple(policy.opps.frequencies_khz()),
                policy._cur_freq_hz,
                policy._user_min_hz, policy._user_max_hz,
                policy._thermal_max_hz,
                policy._last_util, policy._last_mean_util,
            )
            rec.probe_static[domain] = self._probe_intern.setdefault(
                static, len(self._probe_intern)
            )

        # Shared-schedule key: every fast member of a segment must agree on
        # platform layout, timer phasing, and DAQ position, so one set of
        # precomputed fire schedules serves the whole group.
        timers = []
        for domain in kernel.policies:
            timer = kernel._governor_timers[domain]
            timers.append((domain, timer.next_deadline, timer.period))
        for name in kernel.zones:
            timer = kernel._zone_timers[name]
            timers.append((name, timer.next_deadline, timer.period))
        timers.append((
            "record", sim._record_timer.next_deadline, sim._record_timer.period
        ))
        daq = sim.daq
        daq_part = (
            None if daq is None else (daq._rate, daq._noise, daq._next_sample_s)
        )
        rec.group_key = (sim.platform.name, tuple(timers), daq_part, len(cols))
        return rec

    # --------------------------------------------------------------- probe

    def _probe_quiescent(self, governor, policy, static: int, bi: float,
                         el: float, now: float) -> bool:
        """Would this governor evaluation leave the frequency unchanged?

        Runs the *real* governor object against a throwaway policy primed
        with the live utilisation window.  The probe's ``_last_raise_s``
        stays at its -1 construction default, so interactive-style
        down-dwell guards cannot mask a pending decrease: a guarded hold
        shows up as a (conservative) probe failure, never as a false
        quiescence.  Stock governors read nothing beyond what the key
        captures (``now`` only feeds guards the probe defuses), so results
        are cached across the whole batch; ``static`` is the interned id of
        the promotion-time fingerprint of every frozen input.
        """
        key = (static, bi, el)
        hit = self._probe_cache.get(key)
        if hit is not None:
            return hit
        probe = DvfsPolicy(policy.name, policy.opps)
        probe._cur_freq_hz = policy._cur_freq_hz
        probe._user_min_hz = policy._user_min_hz
        probe._user_max_hz = policy._user_max_hz
        probe._thermal_max_hz = policy._thermal_max_hz
        probe._busy_integral_s = bi
        probe._elapsed_s = el
        probe._last_util = policy._last_util
        probe._last_mean_util = policy._last_mean_util
        governor.update(probe, now)
        # Bitwise on purpose: any movement at all disqualifies the fire.
        quiescent = probe._cur_freq_hz == policy._cur_freq_hz  # repro-lint: disable=R401
        self._probe_cache[key] = quiescent
        return quiescent

    # ------------------------------------------------------- the fast loop

    def _run_fast(self, fast: list, scalar: list, k0: int, n: int) -> None:
        dt = self._dt
        sim0 = fast[0].sim
        kernel0 = sim0.kernel
        model0 = sim0.thermal
        model_rail_index = {r: i for i, r in enumerate(model0.rail_names)}

        with self._ph_sync:
            state = np.empty((len(fast), len(model0.node_names)))
            for s, rec in enumerate(fast):
                rec.row = s
                rec.sim.thermal.adopt_state(state[s])
            lin = np.stack([rec.lin_init for rec in fast])
            lin_rate = np.stack([rec.lin_rate for rec in fast])
            ema_rails = list(kernel0.power_sensors)
            ema = np.array([
                [rec.sim.kernel.power_sensors[r]._ema_w for r in ema_rails]
                for rec in fast
            ])
            ema_alpha = [
                1.0 - math.exp(-dt / kernel0.power_sensors[r]._tau)
                for r in ema_rails
            ]
            entries = fast[0].rail_consts
            n_entries = len(entries)
            ent_rail = [e[0] for e in entries]
            ent_node = [e[7] for e in entries]
            ent_dyn = [
                np.array([rec.rail_consts[e][1] for rec in fast])
                for e in range(n_entries)
            ]
            ent_kappa = [
                np.array([rec.rail_consts[e][2] for rec in fast])
                for e in range(n_entries)
            ]
            ent_negbeta = [
                np.array([rec.rail_consts[e][3] for rec in fast])
                for e in range(n_entries)
            ]
            ent_vvr = [
                np.array([rec.rail_consts[e][4] for rec in fast])
                for e in range(n_entries)
            ]
            ent_lscale = [
                np.array([rec.rail_consts[e][5] for rec in fast])
                for e in range(n_entries)
            ]
            ent_powered = [
                np.array([rec.rail_consts[e][6] for rec in fast], dtype=bool)
                for e in range(n_entries)
            ]
            ent_all_powered = [bool(p.all()) for p in ent_powered]
            rail_order = list(dict.fromkeys(ent_rail))
            board_w = sim0.platform.board_power_w
            energy_rails = list(rail_order)
            if board_w > 0.0:
                energy_rails.append(BOARD_RAIL)
            energy = np.array([
                [rec.sim.energy._energy_j.get(r, 0.0) for r in energy_rails]
                for rec in fast
            ])
            gov_fires = {
                domain: _FireSchedule(
                    kernel0._governor_timers[domain].next_deadline,
                    kernel0._governor_timers[domain].period, k0, n, dt,
                )
                for domain in kernel0.policies
            }
            zone_fires = {
                name: _FireSchedule(
                    kernel0._zone_timers[name].next_deadline,
                    kernel0._zone_timers[name].period, k0, n, dt,
                )
                for name in kernel0.zones
            }
            record_sched = _FireSchedule(
                sim0._record_timer.next_deadline,
                sim0._record_timer.period, k0, n, dt,
            )
            record_fires = record_sched.fires
            event_ticks = set().union(
                record_fires,
                *(s.fires for s in gov_fires.values()),
                *(s.fires for s in zone_fires.values()),
            )
            daq0 = sim0.daq
            daq_offsets = daq_times = daq_next = batt_buf = None
            if daq0 is not None:
                daq_offsets, daq_times, daq_next = _daq_schedule(
                    daq0._next_sample_s, daq0._rate, k0, n, dt
                )
                batt_buf = np.empty((n, len(fast)))
            # Per-scenario discrete thermal systems, unpacked for a buffered
            # in-place update.  The arithmetic is exactly
            # ThermalModel.step_in_place's (two dgemv calls and two
            # elementwise adds; ``wd * ambient`` is constant all segment),
            # but preallocated buffers avoid three temporaries per step.
            therm = []
            for rec in fast:
                model = rec.sim.thermal
                therm.append((
                    model._ad, model._bd, model._wd * model._ambient_k,
                    state[rec.row],
                ))
            t_buf1 = np.empty(len(model0.node_names))
            t_buf2 = np.empty(len(model0.node_names))

        def sync_rec(rec: _FastSim, j_done: int) -> None:
            """Write accumulators through local tick ``j_done`` (exclusive)
            back into the scenario's live objects."""
            sim = rec.sim
            i = rec.row
            for c, (kind, handle, _init, _rate) in enumerate(rec.lin_cols):
                value = float(lin[i, c])
                if kind == "bi":
                    handle._busy_integral_s = value
                elif kind == "el":
                    handle._elapsed_s = value
                elif kind == "tis":
                    handle[0]._time_in_state[handle[1]] = value
                elif kind == "dwell":
                    handle._idle_dwell_s = value
                elif kind == "resid":
                    handle[0]._residency_s[handle[1]] = value
                elif kind == "task_cs":
                    handle[0].core_seconds[handle[1]] = value
                elif kind == "task_cyc":
                    handle[0].cycles_by_cluster[handle[1]] = value
                else:  # energy_t
                    handle._elapsed_s = value
            for r, rail in enumerate(ema_rails):
                sim.kernel.power_sensors[rail]._ema_w = float(ema[i, r])
            for r, rail in enumerate(energy_rails):
                sim.energy._energy_j[rail] = float(energy[i, r])
            if rec.pending_steps:
                sim._m_steps.inc(float(rec.pending_steps))
                rec.pending_steps = 0
            # Every governor fire on a tick this record stayed fast for was
            # absorbed (a failed probe demotes at that very tick), so the
            # update counters follow straight from the schedules.  Absorbed
            # fires never polled the real timers either; replay the
            # deadlines they would have reached.  (Demotion paths adjust the
            # current tick's absorbed fires on top of this.)
            for domain, sched in gov_fires.items():
                count = sched.count_before(j_done)
                if count:
                    sim.kernel._m_gov_updates[domain].inc(float(count))
                timer = sim.kernel._governor_timers[domain]
                timer._next_deadline = sched.deadline_before(j_done)
            for name, sched in zone_fires.items():
                timer = sim.kernel._zone_timers[name]
                timer._next_deadline = sched.deadline_before(j_done)
            sim._record_timer._next_deadline = record_sched.deadline_before(
                j_done
            )
            if daq0 is not None and sim.daq is not None and j_done > 0:
                daq = sim.daq
                total = int(daq_offsets[j_done])
                if total > 0:
                    counts = np.diff(daq_offsets[: j_done + 1])
                    values = np.repeat(batt_buf[:j_done, i], counts)
                    if daq._noise > 0.0:
                        values = values + daq._rng.normal(
                            0.0, daq._noise, size=total
                        )
                    daq._chunks.append(values)
                    daq._time_chunks.append(daq_times[:total].copy())
                daq._next_sample_s = float(daq_next[j_done - 1])

        live = list(fast)
        live_rows = np.array([rec.row for rec in live])
        # One probe can stand in for the whole batch on a governor fire when
        # every member shares the same frozen fingerprint AND the same live
        # utilisation window — the common case for a same-workload sweep.
        bi_col0 = fast[0].bi_col
        el_col0 = fast[0].el_col
        gov_uniform = all(
            len({rec.probe_static[d] for rec in fast}) == 1
            for d in kernel0.policies
        )

        def handle_events(j: int, k: int, now: float) -> list:
            """Absorb due governor fires, run due zone polls, verify the
            frozen operating point.  Demoted scenarios finish tick ``k``
            through the real scalar code; returns their Simulations."""
            nonlocal live, live_rows
            due_domains = [d for d, s in gov_fires.items() if j in s.fires]
            due_zones = [z for z, s in zone_fires.items() if j in s.fires]
            gov_done = not due_domains
            if due_domains and gov_uniform:
                # Vectorized pre-pass: if one probe per domain proves the
                # shared window quiescent, zero every member's window with
                # two fancy-indexed stores and skip the per-member loop.
                kernel = live[0].sim.kernel
                quiescent = True
                for domain in due_domains:
                    bi_vec = lin[live_rows, bi_col0[domain]]
                    el_vec = lin[live_rows, el_col0[domain]]
                    if (bi_vec != bi_vec[0]).any() or (el_vec != el_vec[0]).any():
                        quiescent = False
                        break
                    if not self._probe_quiescent(
                        kernel.governors[domain], kernel.policies[domain],
                        live[0].probe_static[domain],
                        float(bi_vec[0]), float(el_vec[0]), now,
                    ):
                        quiescent = False
                        break
                if quiescent:
                    for domain in due_domains:
                        lin[live_rows, bi_col0[domain]] = 0.0
                        lin[live_rows, el_col0[domain]] = 0.0
                    gov_done = True
                    if not due_zones:
                        return []
            survivors = []
            demoted = []
            for rec in live:
                sim = rec.sim
                sim.clock._tick = k
                kernel = sim.kernel
                # 0 = stay fast, 1 = run the whole tick scalar, 2 = the
                # governor/zone phases already ran — complete with the rest.
                demote = 0
                absorbed = due_domains
                if not gov_done:
                    absorbed = []
                    for domain in due_domains:
                        policy = kernel.policies[domain]
                        bi = float(lin[rec.row, rec.bi_col[domain]])
                        el = float(lin[rec.row, rec.el_col[domain]])
                        if not self._probe_quiescent(
                            kernel.governors[domain], policy,
                            rec.probe_static[domain], bi, el, now,
                        ):
                            demote = 1
                            break
                        # Absorbed: the evaluation consumed the utilisation
                        # window and left the frequency alone.
                        lin[rec.row, rec.bi_col[domain]] = 0.0
                        lin[rec.row, rec.el_col[domain]] = 0.0
                        absorbed.append(domain)
                if demote == 0 and due_zones:
                    for name in due_zones:
                        zone = kernel.zones[name]
                        if zone.governor is not None:
                            with kernel.spans.span(
                                "thermal.zone_poll", zone=name
                            ):
                                zone.poll(now)
                        else:
                            zone.poll(now)
                    for domain, policy in kernel.policies.items():
                        if policy.cur_freq_hz != rec.freqs[domain]:  # repro-lint: disable=R401
                            demote = 2
                            break
                    if demote == 0:
                        for device in kernel.cooling_devices:
                            if device.cur_state != kernel._cooling_states.get(
                                device.name
                            ):
                                demote = 2
                                break
                if demote == 0:
                    survivors.append(rec)
                    continue
                sync_rec(rec, j)
                sim.thermal.detach_state()
                # sync_rec counted and re-armed fires on ticks < j only; the
                # fires absorbed at this very tick are accounted here.
                for domain in absorbed:
                    kernel._m_gov_updates[domain].inc()
                    timer = kernel._governor_timers[domain]
                    timer._next_deadline = gov_fires[domain].deadline_after(j)
                if demote == 1:
                    # The failing domain (and any after it) is still due, so
                    # the scalar step fires it for real.
                    sim.step()
                else:
                    # Governor and zone phases ran above; the zone timers
                    # must sit past this tick before the remaining phases.
                    for name in due_zones:
                        timer = kernel._zone_timers[name]
                        timer._next_deadline = zone_fires[name].deadline_after(j)
                    kernel._phase_daemons(now)
                    kres = kernel._phase_work(now, dt)
                    sim._dispatch(kres.completed_cpu_tags, gpu=False, now_s=now)
                    sim._dispatch(kres.gpu.completed_tags, gpu=True, now_s=now)
                    sim._finish_tick(now, dt, kres)
                demoted.append(sim)
            if demoted:
                self.stats["demotions"] += len(demoted)
                self.stats["scalar_ticks"] += len(demoted)
                live = survivors
                live_rows = np.array([rec.row for rec in live])
            return demoted

        p_mat = np.zeros((len(fast), len(model_rail_index)))
        if board_w > 0.0:
            p_mat[:, model_rail_index[BOARD_RAIL]] = board_w
        for j in range(n):
            with self._ph_step:
                k = k0 + j
                now = k * dt
                newly_scalar: list = []
                if live and j in event_ticks:
                    with self._ph_kernel:
                        newly_scalar = handle_events(j, k, now)
                if live:
                    with self._ph_assemble:
                        rail_vecs = {}
                        for e in range(n_entries):
                            temp = state[:, ent_node[e]]
                            arg = ent_negbeta[e] / temp
                            exp = np.array([math.exp(v) for v in arg.tolist()])
                            leak = ent_kappa[e] * temp * temp * exp * ent_vvr[e]
                            leak = leak * ent_lscale[e]
                            total = ent_dyn[e] + leak
                            if not ent_all_powered[e]:
                                total = np.where(ent_powered[e], total, 0.0)
                            rail_vecs[ent_rail[e]] = total
                            p_mat[:, model_rail_index[ent_rail[e]]] = total
                        battery = None
                        for rail in rail_order:
                            battery = (
                                rail_vecs[rail] if battery is None
                                else battery + rail_vecs[rail]
                            )
                        if board_w > 0.0:
                            battery = battery + board_w
                    with self._ph_thermal:
                        for rec in live:
                            ad, bd, wd_amb, row = therm[rec.row]
                            np.dot(ad, row, out=t_buf1)
                            np.dot(bd, p_mat[rec.row], out=t_buf2)
                            np.add(t_buf1, t_buf2, out=t_buf1)
                            np.add(t_buf1, wd_amb, out=row)
                    with self._ph_assemble:
                        for r, rail in enumerate(ema_rails):
                            col = ema[:, r]
                            ema[:, r] = col + ema_alpha[r] * (
                                rail_vecs[rail] - col
                            )
                        for r, rail in enumerate(energy_rails):
                            if rail in rail_vecs:
                                energy[:, r] = energy[:, r] + rail_vecs[rail] * dt
                            else:
                                energy[:, r] = energy[:, r] + board_w * dt
                        lin += lin_rate
                        if daq0 is not None:
                            batt_buf[j] = battery
                        for rec in live:
                            rec.pending_steps += 1
                    if j in record_fires:
                        with self._ph_record:
                            for rec in live:
                                sim = rec.sim
                                sim.clock._tick = k
                                watts = {
                                    rail: float(rail_vecs[rail][rec.row])
                                    for rail in rail_order
                                }
                                if board_w > 0.0:
                                    watts[BOARD_RAIL] = board_w
                                sim._record(
                                    now, rec.kres, watts,
                                    float(battery[rec.row]),
                                )
                self.stats["fast_ticks"] += len(live)
                self.stats["scalar_ticks"] += len(scalar)
                for sim in scalar:
                    sim.step()
                scalar.extend(newly_scalar)

        with self._ph_sync:
            for rec in live:
                sync_rec(rec, n)
                rec.sim.thermal.detach_state()
                rec.sim.clock._tick = k0 + n
