"""Simulation engine: clock, RNG policy, trace recording, system wiring."""

from repro.sim.clock import Clock, PeriodicTimer
from repro.sim.engine import Simulation
from repro.sim.experiment import AppSpec, Scenario, ScenarioResult, compare_policies
from repro.sim.workload_gen import WorkloadGenerator, WorkloadRanges
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceChannel, TraceRecorder, resample_zoh

__all__ = [
    "AppSpec",
    "Clock",
    "PeriodicTimer",
    "RngRegistry",
    "Scenario",
    "ScenarioResult",
    "Simulation",
    "TraceChannel",
    "TraceRecorder",
    "WorkloadGenerator",
    "WorkloadRanges",
    "compare_policies",
    "resample_zoh",
]
