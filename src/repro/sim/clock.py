"""Fixed-step simulation clock.

Every component in the simulator advances in lock-step under a single
:class:`Clock`.  The step size is fixed at construction; periodic activities
(governor invocations, sensor sampling) are expressed with
:class:`PeriodicTimer`, which tolerates periods that are not exact multiples
of the step by firing on the first tick at or after each deadline.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, SimulationError


def ticks_for_duration(duration_s: float, dt_s: float) -> int:
    """Whole ticks covering ``duration_s`` at step ``dt_s``.

    This is the integer form of the engine's historical float loop
    (``while now < end - 1e-9``) evaluated from a tick boundary: the count
    depends only on the duration, never on how much float dust the current
    time has accumulated, so arbitrarily long runs can be sliced into
    back-to-back ``run()`` calls without gaining or losing ticks.
    """
    if dt_s <= 0.0:
        raise ConfigurationError(f"clock step must be positive, got {dt_s}")
    return max(0, math.ceil((duration_s - 1e-9) / dt_s))


class Clock:
    """Monotonic fixed-step simulation time source.

    Parameters
    ----------
    dt:
        Step size in seconds.  Must be positive.
    """

    def __init__(self, dt: float = 0.01) -> None:
        if dt <= 0.0:
            raise ConfigurationError(f"clock step must be positive, got {dt}")
        self._dt = float(dt)
        self._tick = 0

    @property
    def dt(self) -> float:
        """Step size in seconds."""
        return self._dt

    @property
    def tick(self) -> int:
        """Number of completed steps since construction."""
        return self._tick

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._tick * self._dt

    def advance(self) -> float:
        """Advance one step and return the new time."""
        self._tick += 1
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(dt={self._dt}, now={self.now:.3f})"


class PeriodicTimer:
    """Fires at a fixed period against a :class:`Clock`.

    The timer fires on the first ``poll`` whose clock time has reached the
    next deadline.  Deadlines never drift: they are multiples of ``period``
    offset by ``phase``.
    """

    def __init__(self, clock: Clock, period: float, phase: float = 0.0) -> None:
        if period <= 0.0:
            raise ConfigurationError(f"timer period must be positive, got {period}")
        if phase < 0.0:
            raise ConfigurationError(f"timer phase must be non-negative, got {phase}")
        self._clock = clock
        self._period = float(period)
        self._next_deadline = float(phase)

    @property
    def period(self) -> float:
        """Firing period in seconds."""
        return self._period

    @property
    def next_deadline(self) -> float:
        """Simulation time of the next pending fire."""
        return self._next_deadline

    def poll(self) -> bool:
        """Return True exactly once per elapsed period.

        Must be called at least once per clock step; skipping steps would
        make the timer fire late (but never more than once per poll).
        """
        now = self._clock.now
        if now + 1e-12 < self._next_deadline:
            return False
        # Catch up without firing multiple times for one poll.
        while self._next_deadline <= now + 1e-12:
            self._next_deadline += self._period
        return True

    def reset(self, phase: float | None = None) -> None:
        """Re-arm the timer; by default the next fire is one period away."""
        if phase is None:
            self._next_deadline = self._clock.now + self._period
        else:
            if phase < self._clock.now:
                raise SimulationError(
                    f"cannot reset timer into the past (now={self._clock.now}, phase={phase})"
                )
            self._next_deadline = float(phase)
