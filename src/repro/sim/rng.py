"""Deterministic random-number streams.

Reproducibility policy: a single root seed per experiment, with one
independent child stream per named consumer (each app, each sensor, the DAQ).
Adding a new consumer never perturbs the draws seen by existing consumers,
because streams are derived by name via ``numpy``'s ``SeedSequence.spawn``
keyed on a stable hash of the name.
"""

from __future__ import annotations

import zlib

import numpy as np

#: The sanctioned stream-name namespaces (the text before the first
#: ``.`` of a stream name, or the whole name).  Every consumer class
#: derives its streams under one of these; ``repro lint`` rule R602
#: checks call sites against this set, so adding a new consumer class
#: means declaring its namespace here first.
#: ``calib.degrade`` is listed alongside its parent ``calib`` namespace so
#: the degradation layer's per-channel streams (``calib.degrade.<channel>``)
#: are declared explicitly even though R602 only keys on the first segment.
STREAM_NAMESPACES = frozenset(
    {"app", "calib", "calib.degrade", "daq", "faults", "ina", "sensor"}
)


class RngRegistry:
    """Hands out named, independent ``numpy`` generators from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical stream,
        independent of creation order.
        """
        if name not in self._streams:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted for determinism)."""
        return sorted(self._streams)
