"""Per-tick power assembly: kernel activity + temperatures → rail watts.

Extracted from the body of :meth:`Simulation.step` so the same contract has
one scalar implementation here and one vectorized implementation in
:mod:`repro.sim.batch`.  The stage owns preallocated
:class:`~repro.soc.power_model.ComponentActivity` instances and reuses its
output dicts, so a tick is attribute stores plus one ``rail_powers`` call
instead of dataclass-and-dict churn.

The arithmetic is intentionally byte-identical to the historical inline
block: activity values, the memory-activity proxy, the rail summation
order, and the battery total all reproduce the same floats.
"""

from __future__ import annotations

from repro.kernel.kernel import GPU_DOMAIN, Kernel
from repro.soc.platform import BOARD_RAIL, PlatformSpec
from repro.soc.power_model import ComponentActivity, memory_activity_proxy
from repro.thermal.model import ThermalModel


class PowerStage:
    """Assembles per-rail power from one kernel tick result."""

    def __init__(
        self, platform: PlatformSpec, kernel: Kernel, thermal: ThermalModel
    ) -> None:
        self._platform = platform
        self._kernel = kernel
        self._thermal = thermal
        self._clusters = tuple(platform.clusters)
        self._total_cores = sum(c.n_cores for c in self._clusters)
        self._cluster_activity = {
            c.name: ComponentActivity(freq_hz=0.0, busy_units=0.0, temp_k=0.0)
            for c in self._clusters
        }
        self._gpu_activity = ComponentActivity(
            freq_hz=0.0, busy_units=0.0, temp_k=0.0
        )

    def assemble(self, kres) -> tuple[dict[str, float], dict[str, float], float]:
        """One tick of power assembly.

        Returns ``(rail_watts, soc_watts, battery_w)`` where ``rail_watts``
        includes the board rail (when the platform draws board power) and
        ``soc_watts`` is the SoC-only subset fed to the rail power sensors.
        The returned dicts are owned by the stage and rewritten every tick.
        """
        thermal = self._thermal
        kernel = self._kernel
        temps = thermal.temperatures_k()
        total_busy = 0.0
        for cluster in self._clusters:
            usage = kres.usage[cluster.name]
            activity = self._cluster_activity[cluster.name]
            activity.freq_hz = kres.freqs_hz[cluster.name]
            activity.busy_units = min(usage.busy_cores, float(cluster.n_cores))
            activity.temp_k = temps[cluster.thermal_node]
            activity.powered = kernel.cluster_online(cluster.name)
            activity.idle_scale = kernel.idle_scale(cluster.name)
            total_busy += usage.busy_cores
        gpu_activity = self._gpu_activity
        gpu_activity.freq_hz = kres.freqs_hz[GPU_DOMAIN]
        gpu_activity.busy_units = min(kres.gpu.busy_fraction, 1.0)
        gpu_activity.temp_k = temps[self._platform.gpu.thermal_node]
        gpu_activity.idle_scale = kernel.idle_scale(GPU_DOMAIN)
        mem_activity = memory_activity_proxy(
            total_busy, self._total_cores, kres.gpu.busy_fraction
        )
        rails = kernel.power_model.rail_powers(
            self._cluster_activity,
            gpu_activity,
            mem_activity,
            temps[self._platform.memory.thermal_node],
        )
        rail_watts = {rail: sample.total_w for rail, sample in rails.items()}
        soc_watts = dict(rail_watts)
        if self._platform.board_power_w > 0.0:
            rail_watts[BOARD_RAIL] = self._platform.board_power_w
        battery_w = sum(rail_watts.values())
        return rail_watts, soc_watts, battery_w
