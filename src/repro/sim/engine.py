"""The simulation engine: device + OS + workloads advancing in lock-step.

Per tick:

1. every application steps (starts frames, emits touches, queues work);
2. the kernel runs governors/zones/daemons, then dispatches CPU + GPU work;
3. completion tags are routed back to their applications;
4. the power model converts activity + temperatures into per-rail watts;
5. the thermal model integrates one step; sensors and meters are fed;
6. traces are recorded at the recording period.

The power→temperature→leakage loop closes across ticks (explicit coupling),
which is accurate at a 10 ms step against thermal time constants of seconds
and allows genuine thermal runaway to occur when the operating point is
beyond the critical power of Section IV.A.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.apps.base import AppContext, Application
from repro.errors import ConfigurationError, SimulationError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import NULL_PROFILER, StepProfiler
from repro.obs.spans import SpanTracer
from repro.power.daq import PowerDaq
from repro.power.energy import EnergyMeter
from repro.sim.clock import Clock, PeriodicTimer, ticks_for_duration
from repro.sim.power_stage import PowerStage
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.soc.platform import PlatformSpec
from repro.thermal.model import ThermalModel
from repro.units import celsius_to_kelvin, kelvin_to_celsius


class Simulation:
    """One simulated device running a set of applications."""

    def __init__(
        self,
        platform: PlatformSpec,
        apps: Sequence[Application] = (),
        kernel_config: KernelConfig | None = None,
        seed: int = 0,
        dt_s: float = 0.01,
        ambient_c: float | None = None,
        initial_temp_c: float | None = None,
        record_period_s: float = 0.1,
        enable_daq: bool = False,
        daq_rate_hz: float = 1000.0,
        battery=None,
        profile: bool = False,
        thermal_integrator: str = "zoh",
    ) -> None:
        self.platform = platform
        self.seed = seed
        self.clock = Clock(dt_s)
        self.rng = RngRegistry(seed)
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(sim_time_fn=lambda: self.clock.now)
        self.profiler = StepProfiler() if profile else None
        prof = self.profiler if profile else NULL_PROFILER
        # Cached accumulators: no per-step lookups on the hot path.
        self._ph_step = prof.step()
        self._ph_apps = prof.phase("apps")
        self._ph_kernel = prof.phase("kernel")
        self._ph_assemble = prof.phase("power_assemble")
        self._ph_power = prof.phase("power_model")
        self._ph_thermal = prof.phase("thermal")
        self._ph_record = prof.phase("record")
        ambient_k = (
            platform.default_ambient_k
            if ambient_c is None
            else celsius_to_kelvin(ambient_c)
        )
        initial_k = (
            platform.initial_temp_k
            if initial_temp_c is None
            else celsius_to_kelvin(initial_temp_c)
        )
        self.thermal = ThermalModel(
            platform.thermal, dt_s, ambient_k=ambient_k, initial_k=initial_k,
            integrator=thermal_integrator,
        )
        self.kernel = Kernel(
            platform, self.thermal, self.clock, self.rng, kernel_config,
            metrics=self.metrics, spans=self.spans,
        )
        self.power_stage = PowerStage(platform, self.kernel, self.thermal)
        self.traces = TraceRecorder()
        self._m_steps = self.metrics.counter(
            "repro_sim_steps_total", "Simulation ticks executed"
        )
        self._m_sim_time = self.metrics.gauge(
            "repro_sim_time_seconds", "Current simulated time"
        )
        self._m_power = self.metrics.gauge(
            "repro_power_total_watts", "Battery-side total power, last record"
        )
        self._m_temp_max = self.metrics.gauge(
            "repro_temp_max_celsius", "Hottest thermal node, last record"
        )
        self.energy = EnergyMeter()
        self.daq = (
            PowerDaq(self.rng.stream("daq"), sample_rate_hz=daq_rate_hz)
            if enable_daq
            else None
        )
        self.battery = battery
        self._record_timer = PeriodicTimer(self.clock, record_period_s)
        self._apps: dict[str, Application] = {}
        for app in apps:
            self.add_app(app)

    # -------------------------------------------------------------- set-up

    def add_app(self, app: Application) -> None:
        """Attach an application to this simulation."""
        if app.name in self._apps:
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        app.attach(AppContext(kernel=self.kernel, rng=self.rng.stream(f"app.{app.name}")))
        self._apps[app.name] = app

    @property
    def apps(self) -> dict[str, Application]:
        """Attached applications by name."""
        return dict(self._apps)

    def app(self, name: str) -> Application:
        """Look up an attached application."""
        try:
            return self._apps[name]
        except KeyError:
            raise SimulationError(
                f"no app {name!r}; have {sorted(self._apps)}"
            ) from None

    # ---------------------------------------------------------------- step

    def _dispatch(self, tags, gpu: bool, now_s: float) -> None:
        for tag in tags:
            if not isinstance(tag, tuple) or not tag:
                continue
            app = self._apps.get(tag[0])
            if app is None:
                continue
            if gpu:
                app.on_gpu_complete(tag, now_s)
            else:
                app.on_cpu_complete(tag, now_s)

    def step(self) -> None:
        """Advance the whole system by one tick.

        The body is bracketed into the profiler phases of
        :data:`repro.obs.profiler.STEP_PHASES`; with ``profile=False`` the
        null profiler makes the brackets no-ops.
        """
        with self._ph_step:
            now = self.clock.now
            dt = self.clock.dt

            with self._ph_apps:
                for app in self._apps.values():
                    app.step(now, dt)

            with self._ph_kernel:
                kres = self.kernel.tick(now, dt)
                self._dispatch(kres.completed_cpu_tags, gpu=False, now_s=now)
                self._dispatch(kres.gpu.completed_tags, gpu=True, now_s=now)

            self._finish_tick(now, dt, kres)

    def _finish_tick(self, now: float, dt: float, kres) -> None:
        """Power assembly through clock advance: the post-kernel half-tick.

        Split out of :meth:`step` so the batch stepper can complete a tick
        exactly after demoting a scenario from its vectorized fast path
        mid-tick (apps + kernel already ran for that tick).
        """
        with self._ph_assemble:
            rail_watts, soc_watts, battery_w = self.power_stage.assemble(kres)

        with self._ph_thermal:
            self.thermal.step(rail_watts)

        with self._ph_power:
            self.kernel.update_power_readings(soc_watts, dt)
            self.energy.accumulate(rail_watts, dt)
            if self.daq is not None:
                self.daq.capture(now, dt, battery_w)
            if self.battery is not None:
                self.battery.drain(battery_w, dt)

        with self._ph_record:
            self._m_steps.inc()
            if self._record_timer.poll():
                self._record(now, kres, rail_watts, battery_w)
            self.clock.advance()

    def _record(self, now, kres, rail_watts, battery_w) -> None:
        max_temp_c = kelvin_to_celsius(self.thermal.max_temperature_k())
        self._m_sim_time.set(now)
        self._m_power.set(battery_w)
        self._m_temp_max.set(max_temp_c)
        for node, temp_k in self.thermal.temperatures_k().items():
            self.traces.record(f"temp.{node}", now, kelvin_to_celsius(temp_k))
        self.traces.record("temp.max", now, max_temp_c)
        for domain, freq in kres.freqs_hz.items():
            self.traces.record(f"freq.{domain}", now, freq / 1e6)
        for rail, watts in rail_watts.items():
            self.traces.record(f"power.{rail}", now, watts)
        self.traces.record("power.total", now, battery_w)
        for cluster in self.platform.clusters:
            self.traces.record(
                f"busy.{cluster.name}", now, kres.usage[cluster.name].busy_cores
            )
        self.traces.record("busy.gpu", now, kres.gpu.busy_fraction)
        if self.battery is not None:
            self.traces.record("battery.soc", now, self.battery.soc)

    # ----------------------------------------------------------------- run

    def run(
        self,
        duration_s: float,
        until: Callable[["Simulation"], bool] | None = None,
    ) -> None:
        """Run for ``duration_s`` seconds (or until the predicate is true).

        The loop is counted in whole clock ticks (not float end-time
        comparisons), so repeated or very long runs never gain or lose a
        step to accumulated float dust.
        """
        if duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        for _ in range(ticks_for_duration(duration_s, self.clock.dt)):
            self.step()
            if until is not None and until(self):
                break

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self.clock.now
