"""Grandfathered-finding baseline.

The baseline lets the linter land with the tree it audits: findings that
are deliberate (with a recorded justification) are checked in here and
reported as ``[baselined]`` instead of failing the run.  Matching is by
``(rule, path, source-line text, occurrence)`` — *not* line number — so
unrelated edits above a grandfathered line do not invalidate it, while
any edit to the line itself (or fixing it) expires the entry and forces
the baseline to be re-examined.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.lint.finding import Finding

#: Default checked-in baseline, shipped next to the engine.
DEFAULT_BASELINE = pathlib.Path(__file__).with_name("baseline.json")

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    context: str  # stripped source line the finding sits on
    occurrence: int = 0  # among identical (rule, path, context) findings
    justification: str = ""

    @property
    def key(self) -> tuple:
        return (self.rule, self.path, self.context, self.occurrence)

    def to_json(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "justification": self.justification,
        }
        if self.occurrence:
            out["occurrence"] = self.occurrence
        return out


def _finding_keys(findings: Sequence[Finding]) -> list[tuple]:
    """Baseline keys for ``findings``, occurrence-disambiguated."""
    seen: dict[tuple, int] = {}
    keys = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        base = (f.rule, f.path, f.snippet)
        n = seen.get(base, 0)
        seen[base] = n + 1
        keys.append((f, base + (n,)))
    return keys


@dataclass
class BaselineMatch:
    """Outcome of reconciling findings against a baseline."""

    new: list
    baselined: list
    stale: list  # entries whose finding no longer exists


def load(path: pathlib.Path | str) -> list[BaselineEntry]:
    """Read a baseline file (missing file => empty baseline)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"unreadable baseline {path}: {exc}") from None
    if data.get("version") != _VERSION:
        raise ConfigurationError(
            f"baseline {path}: unsupported version {data.get('version')!r}"
        )
    entries = []
    for raw in data.get("entries", []):
        justification = raw.get("justification", "")
        if not justification.strip():
            # A baseline entry is a recorded decision; an entry without
            # its "why" is indistinguishable from a swept-under bug.
            raise ConfigurationError(
                f"baseline {path}: entry {raw.get('rule')} at "
                f"{raw.get('path')} has an empty justification — every "
                "grandfathered finding must record why it is deliberate"
            )
        entries.append(BaselineEntry(
            rule=raw["rule"],
            path=raw["path"],
            context=raw["context"],
            occurrence=int(raw.get("occurrence", 0)),
            justification=justification,
        ))
    return entries


def save(
    path: pathlib.Path | str, entries: Iterable[BaselineEntry]
) -> None:
    """Write a baseline file (sorted, stable formatting)."""
    ordered = sorted(entries, key=lambda e: e.key)
    payload = {
        "version": _VERSION,
        "entries": [e.to_json() for e in ordered],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def reconcile(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> BaselineMatch:
    """Split findings into new vs baselined; report stale entries."""
    remaining = {e.key: e for e in entries}
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding, key in _finding_keys(findings):
        if key in remaining:
            del remaining[key]
            baselined.append(finding.as_baselined())
        else:
            new.append(finding)
    stale = [remaining[k] for k in sorted(remaining)]
    return BaselineMatch(new=new, baselined=baselined, stale=stale)


def entries_for(
    findings: Sequence[Finding], justification: str = "grandfathered"
) -> list[BaselineEntry]:
    """Baseline entries that would accept ``findings`` as-is."""
    return [
        BaselineEntry(
            rule=key[0], path=key[1], context=key[2], occurrence=key[3],
            justification=justification,
        )
        for _f, key in _finding_keys(findings)
    ]
