"""Finding datatype shared by the lint engine and its rules."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is the file's path relative to the scanned root (posix
    separators), which is what suppression scoping, the baseline, and all
    reports key on — never the absolute path, so baselines are portable.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    baselined: bool = field(default=False, compare=False)

    def as_baselined(self) -> "Finding":
        """Copy of this finding marked as grandfathered."""
        return replace(self, baselined=True)

    def render(self) -> str:
        """One-line human-readable report entry."""
        tag = " [baselined]" if self.baselined else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_json(self) -> dict:
        """JSON-serialisable representation (for ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "baselined": self.baselined,
        }
