"""Unit-suffix vocabulary and shared AST helpers.

This module is the single source of the name-suffix unit conventions
(``_c``, ``_mc``, ``_khz``, …) used by both the per-file R1 rules and
the whole-program dataflow pass.  It lives outside the ``rules``
package on purpose: importing it must not trigger rule registration,
or the engine/dataflow/rules import graph becomes circular.
``repro.lint.rules.common`` re-exports everything for the rule modules.
"""

from __future__ import annotations

import ast
from typing import NamedTuple


class UnitTag(NamedTuple):
    """Unit information a name's suffix carries."""

    suffix: str
    dimension: str
    unit: str  # equivalence class: `_c` and `_celsius` are both "celsius"


#: Suffix -> (dimension, unit).  Ordered longest-first so that ``_mc``
#: wins over ``_c`` and ``_khz`` over ``_hz``.
UNIT_SUFFIXES: tuple[tuple[str, str, str], ...] = (
    ("_millicelsius", "temperature", "millicelsius"),
    ("_celsius", "temperature", "celsius"),
    ("_kelvin", "temperature", "kelvin"),
    ("_microseconds", "time", "microseconds"),
    ("_milliseconds", "time", "milliseconds"),
    ("_seconds", "time", "seconds"),
    ("_khz", "frequency", "kilohertz"),
    ("_mhz", "frequency", "megahertz"),
    ("_ghz", "frequency", "gigahertz"),
    ("_hz", "frequency", "hertz"),
    ("_mc", "temperature", "millicelsius"),
    ("_mj", "energy", "millijoules"),
    ("_wh", "energy", "watthours"),
    ("_ms", "time", "milliseconds"),
    ("_us", "time", "microseconds"),
    ("_mw", "power", "milliwatts"),
    ("_uw", "power", "microwatts"),
    ("_c", "temperature", "celsius"),
    ("_k", "temperature", "kelvin"),
    ("_s", "time", "seconds"),
    ("_w", "power", "watts"),
    ("_j", "energy", "joules"),
)

#: Bare names that are unambiguous unit spellings on their own.
BARE_UNIT_NAMES: dict[str, tuple[str, str]] = {
    "khz": ("frequency", "kilohertz"),
    "mhz": ("frequency", "megahertz"),
    "ghz": ("frequency", "gigahertz"),
    "hz": ("frequency", "hertz"),
    "mc": ("temperature", "millicelsius"),
    "ms": ("time", "milliseconds"),
    "us": ("time", "microseconds"),
    "mj": ("energy", "millijoules"),
    "mw": ("power", "milliwatts"),
    "uw": ("power", "microwatts"),
    "seconds": ("time", "seconds"),
}

#: Units whose carriers are the *integer* sysfs representation, where
#: exact equality is well-defined.
INTEGER_UNITS = frozenset({"kilohertz", "millicelsius"})


def identifier_of(node: ast.AST) -> str | None:
    """The rightmost identifier of a name-ish expression, if any.

    ``temp_c`` -> ``temp_c``; ``self.config.t_limit_c`` -> ``t_limit_c``;
    ``obj.read_c()`` -> ``read_c``.  Returns None for anything else.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return identifier_of(node.func)
    return None


def unit_suffix(name: str | None) -> UnitTag | None:
    """The :class:`UnitTag` a name carries, or None."""
    if not name or len(name) < 2:
        return None
    lowered = name.lower()
    if lowered in BARE_UNIT_NAMES:
        dimension, unit = BARE_UNIT_NAMES[lowered]
        return UnitTag(lowered, dimension, unit)
    for suffix, dimension, unit in UNIT_SUFFIXES:
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return UnitTag(suffix, dimension, unit)
    return None


def unit_of(node: ast.AST) -> UnitTag | None:
    """Unit tag carried by an expression node, if detectable."""
    return unit_suffix(identifier_of(node))


def is_float_constant(node: ast.AST) -> bool:
    """Whether ``node`` is a literal float (not bool/int/str)."""
    return isinstance(node, ast.Constant) and type(node.value) is float


def walk_numbers(node: ast.AST):
    """Yield every numeric ``ast.Constant`` under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and type(sub.value) in (int, float):
            yield sub
