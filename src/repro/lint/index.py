"""Whole-program index: modules, symbols, imports, calls.

The per-file rule families (R1–R4) see one file at a time; the
cross-module families (R5–R8) need to know what the rest of the program
looks like.  :class:`ProjectIndex` parses every file of the scan exactly
once and answers the three questions those rules ask:

* *what does this name refer to?* — import-alias resolution plus
  per-module symbol tables (top-level functions, classes with their
  methods and dataclass fields);
* *which function does this call land in?* — :meth:`resolve_call`
  follows names, dotted module attributes, ``self.`` method calls and
  class constructors (synthesising parameter lists for dataclasses from
  their annotated fields);
* *has anything changed?* — per-file sha256 digests and a project-wide
  :meth:`fingerprint`, the cache key for the incremental engine.

The index is purely syntactic: nothing is imported or executed, so it
works identically on fixture packages in tests and on ``src/repro``.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class FunctionInfo:
    """One function or method, with what call-checking needs."""

    module: str  # dotted module name, e.g. "repro.core.governor"
    qualname: str  # "lump_platform" or "ApplicationAwareGovernor.run"
    relpath: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: tuple[str, ...]  # positional-or-keyword names, self/cls dropped
    kwonly: tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    class_name: str | None = None

    @property
    def name(self) -> str:
        """Bare function name (last qualname segment)."""
        return self.qualname.rpartition(".")[2]


@dataclass
class ClassInfo:
    """One class: its methods and (for dataclasses) its field order."""

    module: str
    name: str
    relpath: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Annotated class-level names in declaration order — the implicit
    #: ``__init__`` signature of a dataclass.
    fields: tuple[str, ...] = ()
    is_dataclass: bool = False

    def constructor(self) -> FunctionInfo | None:
        """The callable signature of ``Cls(...)``, if statically known."""
        init = self.methods.get("__init__")
        if init is not None:
            return init
        if self.is_dataclass and self.fields:
            return FunctionInfo(
                module=self.module,
                qualname=f"{self.name}.__init__",
                relpath=self.relpath,
                node=self.node,
                params=self.fields,
                kwonly=(),
                has_vararg=False,
                has_kwarg=False,
                class_name=self.name,
            )
        return None


@dataclass
class ModuleInfo:
    """Symbol table and source of one indexed module."""

    name: str  # dotted module name
    relpath: str  # posix path relative to the scan root
    path: pathlib.Path
    sha256: str
    tree: ast.Module
    lines: list[str]
    #: local alias -> dotted target: ``{"units": "repro.units",
    #: "celsius_to_kelvin": "repro.units.celsius_to_kelvin", "np": "numpy"}``
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level ``NAME = <literal>`` assignments (simple constants).
    constants: dict[str, ast.expr] = field(default_factory=dict)


def _dotted(node: ast.AST) -> list[str] | None:
    """Attribute chain as parts (["np", "random", "default_rng"])."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _decorator_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted:
            names.add(dotted[-1])
    return names


def _function_info(
    node: ast.AST, module: str, relpath: str, class_name: str | None
) -> FunctionInfo:
    args = node.args
    params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if class_name is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    qualname = node.name if class_name is None else f"{class_name}.{node.name}"
    return FunctionInfo(
        module=module,
        qualname=qualname,
        relpath=relpath,
        node=node,
        params=tuple(params),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        class_name=class_name,
    )


def module_name_for(relpath: str, package: str | None) -> str:
    """Dotted module name of ``relpath`` under ``package``.

    ``core/governor.py`` under package ``repro`` -> ``repro.core.governor``;
    package ``__init__.py`` files name the package itself.
    """
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if package:
        parts = [package] + parts
    return ".".join(parts) if parts else (package or "")


def index_module(
    path: pathlib.Path, relpath: str, package: str | None
) -> ModuleInfo:
    """Parse and symbol-table one file (raises SyntaxError on bad source)."""
    source = path.read_text()
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    tree = ast.parse(source, filename=str(path))
    name = module_name_for(relpath, package)
    info = ModuleInfo(
        name=name,
        relpath=relpath,
        path=path,
        sha256=sha,
        tree=tree,
        lines=source.splitlines(),
    )
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports: resolve against this module's package.
                base = name.split(".")
                up = node.level or 1
                base = base[: len(base) - up] if up <= len(base) else []
                head = ".".join(base + ([node.module] if node.module else []))
            else:
                head = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{head}.{alias.name}" if head else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = _function_info(node, name, relpath, None)
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                module=name,
                name=node.name,
                relpath=relpath,
                node=node,
                is_dataclass="dataclass" in _decorator_names(node),
            )
            fields: list[str] = []
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[stmt.name] = _function_info(
                        stmt, name, relpath, node.name
                    )
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append(stmt.target.id)
            cls.fields = tuple(fields)
            info.classes[node.name] = cls
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                info.constants[target.id] = node.value
    return info


class ProjectIndex:
    """All indexed modules of one lint run, with cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.by_relpath: dict[str, ModuleInfo] = {m.relpath: m for m in modules}

    @classmethod
    def build(
        cls, files: Sequence[tuple[pathlib.Path, str]], package: str | None
    ) -> "ProjectIndex":
        """Index ``(path, relpath)`` pairs under the root package name."""
        return cls([index_module(p, rel, package) for p, rel in files])

    # ------------------------------------------------------------- identity

    def fingerprint(self) -> str:
        """sha256 over every (relpath, file sha) — the project cache key."""
        digest = hashlib.sha256()
        for relpath in sorted(self.by_relpath):
            digest.update(relpath.encode("utf-8"))
            digest.update(self.by_relpath[relpath].sha256.encode("ascii"))
        return digest.hexdigest()

    # ----------------------------------------------------------- resolution

    def resolve_name(self, module: ModuleInfo, dotted: str):
        """Resolve a dotted name to a FunctionInfo/ClassInfo, or None.

        The first segment is looked up in the module's own symbols and
        import aliases; the remainder walks indexed modules ("units" ->
        "repro.units", plus ".celsius_to_kelvin" -> that function).
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if not rest:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        target = module.imports.get(head)
        if target is None:
            return None
        full = ".".join([target] + rest)
        return self._resolve_dotted(full)

    def _resolve_dotted(self, full: str):
        parts = full.split(".")
        # Longest module prefix wins: "repro.units.celsius_to_kelvin"
        # -> module "repro.units", symbol "celsius_to_kelvin".
        for cut in range(len(parts) - 1, 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                return mod.functions.get(rest[0]) or mod.classes.get(rest[0])
            if len(rest) == 2:
                cls = mod.classes.get(rest[0])
                if cls is not None:
                    return cls.methods.get(rest[1])
            return None
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        enclosing_class: str | None = None,
    ) -> FunctionInfo | None:
        """The FunctionInfo a call lands in, when statically resolvable.

        Handles plain names, imported names, dotted module attributes,
        ``self.method(...)`` within a known class, and constructors
        (returning the ``__init__`` signature, synthesised for
        dataclasses).  Unresolvable receivers return None — the rules
        treat that as "not checkable", never as a finding.
        """
        parts = _dotted(call.func)
        if parts is None:
            return None
        if parts[0] in ("self", "cls") and enclosing_class is not None:
            if len(parts) == 2:
                cls = module.classes.get(enclosing_class)
                if cls is not None:
                    return cls.methods.get(parts[1])
            return None
        resolved = self.resolve_name(module, ".".join(parts))
        if isinstance(resolved, ClassInfo):
            return resolved.constructor()
        if isinstance(resolved, FunctionInfo):
            return resolved
        return None

    # ------------------------------------------------------------ traversal

    def iter_functions(self) -> Iterable[FunctionInfo]:
        """Every indexed function and method, in stable order."""
        for relpath in sorted(self.by_relpath):
            module = self.by_relpath[relpath]
            for name in sorted(module.functions):
                yield module.functions[name]
            for cname in sorted(module.classes):
                cls = module.classes[cname]
                for mname in sorted(cls.methods):
                    yield cls.methods[mname]

    def constant_string(self, module: ModuleInfo, name: str) -> str | None:
        """Value of a module-level string constant, if ``name`` is one."""
        node = module.constants.get(name)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None


def detect_package(root: pathlib.Path) -> str | None:
    """Package name the scan root represents (None for loose files).

    A directory containing ``__init__.py`` is a package named after the
    directory itself — the default scan root ``.../src/repro`` indexes as
    package ``repro`` so that ``from repro.units import ...`` resolves.
    """
    if root.is_dir() and (root / "__init__.py").exists():
        return root.name
    return None
