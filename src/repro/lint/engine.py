"""The lint engine: file walking, suppression, baseline, reporting.

Usage (programmatic)::

    from repro.lint import run_lint
    report = run_lint()          # scan src/repro with the full catalogue
    assert report.ok, report.render_text()

The CLI (``repro lint``) is a thin wrapper in ``repro.cli``.

The engine runs two kinds of rules.  Per-file rules see one
:class:`FileContext` at a time; they are cached per file (keyed by
source sha256) and can run in a ``ProcessPoolExecutor`` (``jobs > 1``)
with byte-identical output, because each file's findings are a pure
function of its bytes.  Project rules
(:class:`~repro.lint.project.ProjectRule`, the R5–R8 families) run once
over the whole-program index in the parent process, and are cached
against the index fingerprint.

Exit-code contract (``LintReport.exit_code``):

* ``0`` — clean: no new findings, no stale baseline entries;
* ``1`` — new findings (with or without stale entries);
* ``2`` — *only* stale baseline entries: the code is clean but the
  baseline lists findings that no longer occur, so it must be pruned
  (``--update-baseline``) before the run is trustworthy again.
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import repro
from repro.errors import ConfigurationError
from repro.lint import baseline as baseline_mod
from repro.lint.cache import CacheStats, LintCache
from repro.lint.finding import Finding
from repro.lint.project import ProjectRule, build_project_context
from repro.lint.rules import FileContext, Rule, all_rules
from repro.lint.sarif import render_sarif

# Suppression comment grammar (always a trailing comment, hash elided
# here so the engine does not match its own documentation):
#   ``repro-lint: disable=R102`` on the offending line,
#   ``repro-lint: disable-next-line=R401`` on the line above it,
#   ``repro-lint: disable-file=R301`` within the first 10 lines.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line|disable-file)"
    r"=([A-Za-z0-9,\s]+)"
)

_FILE_SCOPE_LINES = 10

#: Stable total order on findings — including the message, so two
#: findings on one (line, col) from one rule cannot reorder between
#: serial and parallel runs.
_FINDING_ORDER = lambda f: (f.path, f.line, f.col, f.rule, f.message)  # noqa: E731


def package_root() -> pathlib.Path:
    """Directory of the installed ``repro`` package (default scan root)."""
    return pathlib.Path(repro.__file__).resolve().parent


def _parse_rule_ids(raw: str) -> frozenset[str]:
    ids = frozenset(tok.strip().upper() for tok in raw.split(",") if tok.strip())
    for rule_id in ids:
        if rule_id != "ALL" and not re.fullmatch(r"R\d+", rule_id):
            raise ConfigurationError(
                f"malformed rule id {rule_id!r} in suppression comment"
            )
    return ids


@dataclass
class _Suppressions:
    by_line: dict[int, frozenset]
    file_wide: frozenset

    def active(self, line: int) -> frozenset:
        return self.by_line.get(line, frozenset()) | self.file_wide

    def suppresses(self, finding: Finding) -> bool:
        ids = self.active(finding.line)
        return "ALL" in ids or finding.rule in ids


def _collect_suppressions(lines: Sequence[str]) -> _Suppressions:
    by_line: dict[int, frozenset] = {}
    file_wide: frozenset = frozenset()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        kind, raw_ids = match.groups()
        ids = _parse_rule_ids(raw_ids)
        if kind == "disable":
            by_line[lineno] = by_line.get(lineno, frozenset()) | ids
        elif kind == "disable-next-line":
            by_line[lineno + 1] = by_line.get(lineno + 1, frozenset()) | ids
        elif kind == "disable-file":
            if lineno > _FILE_SCOPE_LINES:
                raise ConfigurationError(
                    f"disable-file on line {lineno}: file-wide suppressions "
                    f"must sit in the first {_FILE_SCOPE_LINES} lines"
                )
            file_wide = file_wide | ids
    return _Suppressions(by_line=by_line, file_wide=file_wide)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list = field(default_factory=list)  # new + baselined, ordered
    new: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def ok(self) -> bool:
        """True when nothing requires action (exit code 0)."""
        return not self.new and not self.stale_baseline

    @property
    def exit_code(self) -> int:
        """0 clean / 1 new findings / 2 only-stale-baseline."""
        if self.new:
            return 1
        if self.stale_baseline:
            return 2
        return 0

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}: stale baseline entry {entry.rule} "
                f"({entry.context!r} no longer found) — remove it or "
                "re-run with --update-baseline"
            )
        lines.append(
            f"{self.files_scanned} files, {len(self.rules_run)} rules: "
            f"{len(self.new)} new finding(s), {len(self.baselined)} "
            f"baselined, {len(self.stale_baseline)} stale baseline entr(ies)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "findings": [f.to_json() for f in self.findings],
            "stale_baseline": [e.to_json() for e in self.stale_baseline],
            "summary": {
                "files_scanned": self.files_scanned,
                "rules": self.rules_run,
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "cache_file_hits": self.cache.file_hits,
                "cache_file_misses": self.cache.file_misses,
                "cache_project_hit": self.cache.project_hit,
                "ok": self.ok,
                "exit_code": self.exit_code,
            },
        }, indent=2)

    def render_sarif(self) -> str:
        from repro.lint.rules import get_rule

        return render_sarif(
            self, [get_rule(rule_id) for rule_id in self.rules_run]
        )


def _iter_py_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts or path.name.startswith("."):
            continue
        yield path


def lint_file(
    path: pathlib.Path,
    relpath: str,
    rules: Sequence[Rule],
    services: dict,
    source: str | None = None,
) -> list[Finding]:
    """Run ``rules`` over one file, honouring suppression comments."""
    if source is None:
        source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot lint {path}: {exc}") from None
    lines = source.splitlines()
    ctx = FileContext(
        relpath=relpath, tree=tree, lines=lines, services=services
    )
    suppressions = _collect_suppressions(lines)
    findings = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(ctx):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    findings.sort(key=_FINDING_ORDER)
    return findings


# Worker-process state for the parallel mode: installed once per worker
# by the pool initialiser so rule objects and shared services (the sysfs
# authority) are not re-built per file.
_WORKER: dict = {}


def _pool_init(rule_ids: Sequence[str], services: dict) -> None:
    from repro.lint.rules import get_rule

    _WORKER["rules"] = [get_rule(rule_id) for rule_id in rule_ids]
    _WORKER["services"] = dict(services)


def _pool_lint(job: tuple[str, str]) -> tuple[str, list[Finding]]:
    path_str, relpath = job
    findings = lint_file(
        pathlib.Path(path_str), relpath, _WORKER["rules"], _WORKER["services"]
    )
    return relpath, findings


def _sha256_text(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _run_project_rules(
    root: pathlib.Path,
    files: Sequence[tuple[pathlib.Path, str]],
    project_rules: Sequence[ProjectRule],
    services: dict,
    cache: LintCache | None,
    stats: CacheStats,
    docs_dir: pathlib.Path | None,
) -> list[Finding]:
    """Run the whole-program families over one root (cached as a unit)."""
    pctx = build_project_context(root, files, docs_dir, services)
    key = pctx.fingerprint()
    if cache is not None:
        cached = cache.get_project(key)
        if cached is not None:
            stats.project_hit = True
            return cached
    suppressions: dict[str, _Suppressions] = {}
    findings: list[Finding] = []
    for rule in sorted(project_rules, key=lambda r: r.id):
        for finding in rule.check_project(pctx):
            module = pctx.index.by_relpath.get(finding.path)
            if module is not None:
                if finding.path not in suppressions:
                    suppressions[finding.path] = _collect_suppressions(
                        module.lines
                    )
                if suppressions[finding.path].suppresses(finding):
                    continue
            findings.append(finding)
    findings.sort(key=_FINDING_ORDER)
    if cache is not None:
        cache.put_project(key, findings)
    return findings


def run_lint(
    targets: Sequence[str | pathlib.Path] | None = None,
    rules: Sequence[Rule] | None = None,
    baseline_path: str | pathlib.Path | None = None,
    use_baseline: bool = True,
    jobs: int = 1,
    cache_path: str | pathlib.Path | None = None,
    docs_dir: str | pathlib.Path | None = None,
) -> LintReport:
    """Lint ``targets`` (default: the ``repro`` package) and reconcile.

    ``relpath``s — the identity used by scoping and the baseline — are
    taken relative to each target root, so the default scan yields paths
    like ``core/governor.py`` regardless of checkout location.

    ``jobs > 1`` fans the per-file pass over a process pool; output is
    byte-identical to serial because findings are a pure per-file
    function and the merge order is a total order.  ``cache_path``
    enables the incremental cache (per-file results keyed by sha256,
    project-wide results keyed by the index fingerprint).
    """
    active_rules = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active_rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active_rules if isinstance(r, ProjectRule)]
    roots = (
        [pathlib.Path(t).resolve() for t in targets]
        if targets else [package_root()]
    )
    docs_override = pathlib.Path(docs_dir) if docs_dir is not None else None
    cache = (
        LintCache.open(cache_path, [r.id for r in active_rules])
        if cache_path is not None else None
    )
    services: dict = {}
    report = LintReport(rules_run=sorted(r.id for r in active_rules))
    findings_by_relpath: dict[str, list[Finding]] = {}
    to_lint: list[tuple[pathlib.Path, str, str]] = []  # path, relpath, source
    root_files: list[tuple[pathlib.Path, list]] = []

    for root in roots:
        if not root.exists():
            raise ConfigurationError(f"lint target {root} does not exist")
        base = root if root.is_dir() else root.parent
        files: list[tuple[pathlib.Path, str]] = []
        for path in _iter_py_files(root):
            relpath = path.relative_to(base).as_posix()
            files.append((path, relpath))
            report.files_scanned += 1
            source = path.read_text()
            if cache is not None:
                cached = cache.get_file(relpath, _sha256_text(source))
                if cached is not None:
                    report.cache.file_hits += 1
                    findings_by_relpath[relpath] = cached
                    continue
            report.cache.file_misses += 1
            to_lint.append((path, relpath, source))
        root_files.append((root, files))

    if to_lint and jobs > 1:
        # Shared services must exist before the fork: workers cannot
        # build cross-file state (and must not, N times over).
        for rule in file_rules:
            rule.prepare(services)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_pool_init,
            initargs=([r.id for r in file_rules], services),
        ) as pool:
            jobs_in = [(str(path), relpath) for path, relpath, _ in to_lint]
            for relpath, findings in pool.map(_pool_lint, jobs_in):
                findings_by_relpath[relpath] = findings
    else:
        for path, relpath, source in to_lint:
            findings_by_relpath[relpath] = lint_file(
                path, relpath, file_rules, services, source=source
            )
    if cache is not None:
        for path, relpath, source in to_lint:
            cache.put_file(
                relpath, _sha256_text(source), findings_by_relpath[relpath]
            )

    raw_findings: list[Finding] = []
    for relpath in sorted(findings_by_relpath):
        raw_findings.extend(findings_by_relpath[relpath])
    if project_rules:
        for root, files in root_files:
            raw_findings.extend(_run_project_rules(
                root, files, project_rules, services, cache,
                report.cache, docs_override,
            ))
    if cache is not None:
        cache.save()

    if use_baseline:
        entries = baseline_mod.load(
            baseline_path if baseline_path is not None
            else baseline_mod.DEFAULT_BASELINE
        )
    else:
        entries = []
    match = baseline_mod.reconcile(raw_findings, entries)
    report.new = match.new
    report.baselined = match.baselined
    report.stale_baseline = match.stale
    merged = match.new + match.baselined
    merged.sort(key=_FINDING_ORDER)
    report.findings = merged
    return report


def update_baseline(
    report: LintReport,
    baseline_path: str | pathlib.Path | None = None,
    justification: str = "grandfathered at baseline update",
) -> int:
    """Rewrite the baseline to accept ``report``'s current findings.

    Keeps the justifications of still-matching entries, adds entries for
    new findings, and drops stale ones.  Output is deterministic: the
    kept set is rewritten sorted by entry key with stable JSON
    formatting, so two runs over the same tree produce identical bytes.
    Returns the entry count.
    """
    path = pathlib.Path(
        baseline_path if baseline_path is not None
        else baseline_mod.DEFAULT_BASELINE
    )
    kept = {
        e.key: e
        for e in baseline_mod.load(path)
        if e not in report.stale_baseline
    }
    fresh = baseline_mod.entries_for(report.new, justification=justification)
    for entry in fresh:
        kept.setdefault(entry.key, entry)
    baseline_mod.save(path, kept.values())
    return len(kept)
