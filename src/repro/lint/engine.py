"""The lint engine: file walking, suppression, baseline, reporting.

Usage (programmatic)::

    from repro.lint import run_lint
    report = run_lint()          # scan src/repro with the full catalogue
    assert report.ok, report.render_text()

The CLI (``repro lint``) is a thin wrapper in ``repro.cli``.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import repro
from repro.errors import ConfigurationError
from repro.lint import baseline as baseline_mod
from repro.lint.finding import Finding
from repro.lint.rules import FileContext, Rule, all_rules

# Suppression comment grammar (always a trailing comment, hash elided
# here so the engine does not match its own documentation):
#   ``repro-lint: disable=R102`` on the offending line,
#   ``repro-lint: disable-next-line=R401`` on the line above it,
#   ``repro-lint: disable-file=R301`` within the first 10 lines.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line|disable-file)"
    r"=([A-Za-z0-9,\s]+)"
)

_FILE_SCOPE_LINES = 10


def package_root() -> pathlib.Path:
    """Directory of the installed ``repro`` package (default scan root)."""
    return pathlib.Path(repro.__file__).resolve().parent


def _parse_rule_ids(raw: str) -> frozenset[str]:
    ids = frozenset(tok.strip().upper() for tok in raw.split(",") if tok.strip())
    for rule_id in ids:
        if rule_id != "ALL" and not re.fullmatch(r"R\d+", rule_id):
            raise ConfigurationError(
                f"malformed rule id {rule_id!r} in suppression comment"
            )
    return ids


@dataclass
class _Suppressions:
    by_line: dict[int, frozenset]
    file_wide: frozenset

    def active(self, line: int) -> frozenset:
        return self.by_line.get(line, frozenset()) | self.file_wide

    def suppresses(self, finding: Finding) -> bool:
        ids = self.active(finding.line)
        return "ALL" in ids or finding.rule in ids


def _collect_suppressions(lines: Sequence[str]) -> _Suppressions:
    by_line: dict[int, frozenset] = {}
    file_wide: frozenset = frozenset()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        kind, raw_ids = match.groups()
        ids = _parse_rule_ids(raw_ids)
        if kind == "disable":
            by_line[lineno] = by_line.get(lineno, frozenset()) | ids
        elif kind == "disable-next-line":
            by_line[lineno + 1] = by_line.get(lineno + 1, frozenset()) | ids
        elif kind == "disable-file":
            if lineno > _FILE_SCOPE_LINES:
                raise ConfigurationError(
                    f"disable-file on line {lineno}: file-wide suppressions "
                    f"must sit in the first {_FILE_SCOPE_LINES} lines"
                )
            file_wide = file_wide | ids
    return _Suppressions(by_line=by_line, file_wide=file_wide)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list = field(default_factory=list)  # new + baselined, ordered
    new: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing requires action (exit code 0)."""
        return not self.new and not self.stale_baseline

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}: stale baseline entry {entry.rule} "
                f"({entry.context!r} no longer found) — remove it or "
                "re-run with --update-baseline"
            )
        lines.append(
            f"{self.files_scanned} files, {len(self.rules_run)} rules: "
            f"{len(self.new)} new finding(s), {len(self.baselined)} "
            f"baselined, {len(self.stale_baseline)} stale baseline entr(ies)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "findings": [f.to_json() for f in self.findings],
            "stale_baseline": [e.to_json() for e in self.stale_baseline],
            "summary": {
                "files_scanned": self.files_scanned,
                "rules": self.rules_run,
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "ok": self.ok,
            },
        }, indent=2)


def _iter_py_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts or path.name.startswith("."):
            continue
        yield path


def lint_file(
    path: pathlib.Path,
    relpath: str,
    rules: Sequence[Rule],
    services: dict,
) -> list[Finding]:
    """Run ``rules`` over one file, honouring suppression comments."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot lint {path}: {exc}") from None
    lines = source.splitlines()
    ctx = FileContext(
        relpath=relpath, tree=tree, lines=lines, services=services
    )
    suppressions = _collect_suppressions(lines)
    findings = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(ctx):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def run_lint(
    targets: Sequence[str | pathlib.Path] | None = None,
    rules: Sequence[Rule] | None = None,
    baseline_path: str | pathlib.Path | None = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint ``targets`` (default: the ``repro`` package) and reconcile.

    ``relpath``s — the identity used by scoping and the baseline — are
    taken relative to each target root, so the default scan yields paths
    like ``core/governor.py`` regardless of checkout location.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    roots = (
        [pathlib.Path(t).resolve() for t in targets]
        if targets else [package_root()]
    )
    services: dict = {}
    report = LintReport(rules_run=[r.id for r in active_rules])
    raw_findings: list[Finding] = []
    for root in roots:
        if not root.exists():
            raise ConfigurationError(f"lint target {root} does not exist")
        base = root if root.is_dir() else root.parent
        for path in _iter_py_files(root):
            relpath = path.relative_to(base).as_posix()
            raw_findings.extend(
                lint_file(path, relpath, active_rules, services)
            )
            report.files_scanned += 1

    if use_baseline:
        entries = baseline_mod.load(
            baseline_path if baseline_path is not None
            else baseline_mod.DEFAULT_BASELINE
        )
    else:
        entries = []
    match = baseline_mod.reconcile(raw_findings, entries)
    report.new = match.new
    report.baselined = match.baselined
    report.stale_baseline = match.stale
    merged = match.new + match.baselined
    merged.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.findings = merged
    return report


def update_baseline(
    report: LintReport,
    baseline_path: str | pathlib.Path | None = None,
    justification: str = "grandfathered at baseline update",
) -> int:
    """Rewrite the baseline to accept ``report``'s current findings.

    Keeps the justifications of still-matching entries, adds entries for
    new findings, and drops stale ones.  Returns the entry count.
    """
    path = pathlib.Path(
        baseline_path if baseline_path is not None
        else baseline_mod.DEFAULT_BASELINE
    )
    kept = {
        e.key: e
        for e in baseline_mod.load(path)
        if e not in report.stale_baseline
    }
    fresh = baseline_mod.entries_for(report.new, justification=justification)
    for entry in fresh:
        kept.setdefault(entry.key, entry)
    baseline_mod.save(path, kept.values())
    return len(kept)
