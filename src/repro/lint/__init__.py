"""``repro.lint`` — domain-aware static analysis for this reproduction.

Eight rule families guard the invariants the physics depends on.  Four
are per-file pattern checks:

* **R1 units** — all kelvin/millidegree/kHz conversions go through
  :mod:`repro.units` (no ad-hoc ``* 1000`` / ``273.15`` arithmetic);
* **R2 determinism** — entropy comes from ``sim/rng.py`` streams and
  time from the sim clock, never the wall clock or global RNGs;
* **R3 sysfs contract** — every ``/sys``/``/proc`` path a controller
  touches matches a node the kernel wiring actually registers;
* **R4 float hygiene** — no exact ``==``/``!=`` between floats in the
  numerical core.

Four are whole-program semantic checks, built on a project index
(:mod:`repro.lint.index`) and a unit-dataflow pass
(:mod:`repro.lint.dataflow`):

* **R5 unit flow** — unit dimensions propagated through assignments,
  returns and call boundaries must agree with the names they land in;
* **R6 RNG discipline** — every generator derives from a named
  ``RngRegistry`` stream in a declared namespace; no orphan generators;
* **R7 contract drift** — ``to_dict``/``from_dict`` key symmetry and
  ``repro.<family>/<n>`` wire-format version agreement;
* **R8 metric coherence** — emitted vs declared vs documented metric
  families (three-way diff against ``docs/OBSERVABILITY.md``).

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, suppression
syntax, the baseline workflow, exit codes, the incremental cache and
the parallel/SARIF modes.
"""

from repro.lint.baseline import DEFAULT_BASELINE, BaselineEntry
from repro.lint.engine import (
    LintReport,
    lint_file,
    package_root,
    run_lint,
    update_baseline,
)
from repro.lint.finding import Finding
from repro.lint.rules import all_rules, get_rule

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "all_rules",
    "get_rule",
    "lint_file",
    "package_root",
    "run_lint",
    "update_baseline",
]
