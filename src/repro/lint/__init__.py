"""``repro.lint`` — domain-aware static analysis for this reproduction.

Four rule families guard the invariants the physics depends on:

* **R1 units** — all kelvin/millidegree/kHz conversions go through
  :mod:`repro.units` (no ad-hoc ``* 1000`` / ``273.15`` arithmetic);
* **R2 determinism** — entropy comes from ``sim/rng.py`` streams and
  time from the sim clock, never the wall clock or global RNGs;
* **R3 sysfs contract** — every ``/sys``/``/proc`` path a controller
  touches matches a node the kernel wiring actually registers;
* **R4 float hygiene** — no exact ``==``/``!=`` between floats in the
  numerical core.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, suppression
syntax and the baseline workflow.
"""

from repro.lint.baseline import DEFAULT_BASELINE, BaselineEntry
from repro.lint.engine import (
    LintReport,
    lint_file,
    package_root,
    run_lint,
    update_baseline,
)
from repro.lint.finding import Finding
from repro.lint.rules import all_rules, get_rule

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "all_rules",
    "get_rule",
    "lint_file",
    "package_root",
    "run_lint",
    "update_baseline",
]
