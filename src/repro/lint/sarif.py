"""SARIF 2.1.0 rendering for lint reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the log annotates the PR diff with each
finding in place.  One run per report; baselined findings are emitted at
``note`` level with ``baselineState: "unchanged"`` so code scanning
shows them without failing the check, new findings are ``error`` /
``"new"``.

Output is fully deterministic — findings arrive pre-sorted from the
engine and the serialisation is stable JSON — which is what lets the
``--jobs N`` byte-identity guarantee extend to SARIF output.
"""

from __future__ import annotations

import json

#: Published schema for SARIF 2.1.0 (the version GitHub ingests).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

_TOOL_URI = "https://github.com/repro/repro"  # docs/STATIC_ANALYSIS.md


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding, rule_index: dict) -> dict:
    out = {
        "ruleId": finding.rule,
        "level": "note" if finding.baselined else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "baselineState": "unchanged" if finding.baselined else "new",
    }
    if finding.rule in rule_index:
        out["ruleIndex"] = rule_index[finding.rule]
    if finding.snippet:
        out["locations"][0]["physicalLocation"]["region"]["snippet"] = {
            "text": finding.snippet
        }
    return out


def render_sarif(report, rules) -> str:
    """SARIF 2.1.0 log for ``report`` run with ``rules``.

    ``rules`` is the full active catalogue (so suppressed-to-zero rules
    still appear as driver rules, which code scanning uses to close
    previously-open alerts).
    """
    ordered = sorted(rules, key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(ordered)}
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": _TOOL_URI,
                    "rules": [_rule_descriptor(r) for r in ordered],
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [
                _result(f, rule_index) for f in report.findings
            ],
        }],
    }
    return json.dumps(log, indent=2) + "\n"
