"""Project-context construction for the cross-module rule families.

Per-file rules (R1–R4) receive a :class:`~repro.lint.rules.FileContext`
and can be run on any one file in isolation — which is what makes them
cacheable and parallelisable.  The R5–R8 families instead reason about
the *whole* program: call graphs, unit flow across modules, the metric
catalogue versus its documentation.  They subclass
:class:`~repro.lint.rules.ProjectRule` and receive a single
:class:`~repro.lint.rules.ProjectContext` holding the
:class:`~repro.lint.index.ProjectIndex`, the shared
:class:`~repro.lint.dataflow.UnitAnalysis`, and any markdown documents
the scan could locate (``docs/OBSERVABILITY.md`` for R8).

The classes themselves live in :mod:`repro.lint.rules` (the registry
module must not import the analysis machinery); this module supplies the
builders the engine calls, and re-exports the classes for convenience.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Sequence

from repro.lint.dataflow import UnitAnalysis
from repro.lint.index import ProjectIndex, detect_package
from repro.lint.rules import (  # noqa: F401  (re-exported)
    DocFile,
    ProjectContext,
    ProjectRule,
)

#: Documents project rules may consult, looked up by basename.  R8 reads
#: the observability catalogue; the list is the *search* set, a missing
#: file simply disables the checks that need it.
PROJECT_DOCS = ("OBSERVABILITY.md",)

#: How far above the scan root to look for a ``docs/`` directory.
_DOCS_SEARCH_DEPTH = 4


def find_docs(
    root: pathlib.Path, docs_dir: pathlib.Path | None = None
) -> dict[str, DocFile]:
    """Locate :data:`PROJECT_DOCS` near ``root`` (or in ``docs_dir``).

    Without an explicit ``docs_dir``, walk up from the scan root looking
    for a ``docs/`` directory — ``src/repro`` finds the repository's
    ``docs/`` two levels up.  Missing documents are simply absent from
    the result; rules degrade to the checks that need no document.
    """
    candidates: list[pathlib.Path] = []
    if docs_dir is not None:
        candidates.append(pathlib.Path(docs_dir))
    else:
        probe = root if root.is_dir() else root.parent
        for _ in range(_DOCS_SEARCH_DEPTH):
            candidates.append(probe / "docs")
            if probe.parent == probe:
                break
            probe = probe.parent
    docs: dict[str, DocFile] = {}
    for directory in candidates:
        if not directory.is_dir():
            continue
        for basename in PROJECT_DOCS:
            path = directory / basename
            if basename not in docs and path.is_file():
                text = path.read_text()
                docs[basename] = DocFile(
                    label=f"{directory.name}/{basename}",
                    path=path,
                    lines=text.splitlines(),
                    sha256=hashlib.sha256(text.encode("utf-8")).hexdigest(),
                )
        if docs:
            break
    return docs


def build_project_context(
    root: pathlib.Path,
    files: Sequence[tuple[pathlib.Path, str]],
    docs_dir: pathlib.Path | None = None,
    services: dict | None = None,
) -> ProjectContext:
    """Index ``files`` under ``root`` and assemble the shared context."""
    package = detect_package(root if root.is_dir() else root.parent)
    index = ProjectIndex.build(files, package)
    return ProjectContext(
        root=root,
        index=index,
        analysis=UnitAnalysis(index),
        docs=find_docs(root, docs_dir),
        services=services if services is not None else {},
    )
