"""R8 family — metric-family coherence.

``docs/OBSERVABILITY.md`` is the operator-facing catalogue of every
metric family; dashboards and SLO gates are written against it.  These
rules three-way-diff the names *emitted* by ``counter/gauge/histogram``
call sites, the names *declared* via ``MetricsRegistry.declare``, and
the names *documented* in the catalogue's tables:

* R801 — emitted or declared but missing from the catalogue (operators
  cannot discover it);
* R802 — documented but emitted nowhere (the dashboard panel reads a
  family that no longer exists);
* R803 — kind skew: the same family emitted as two different kinds at
  different sites, or documented as a kind the code disagrees with.

Emission sites whose name argument is not a string literal (or a
module-level string constant) are not statically knowable; their names
still count toward R802's "exists somewhere" universe via the
constant-string pool (the fleet gauges are emitted from a name table),
so indirection never produces false "documented-but-absent" findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.index import ModuleInfo
from repro.lint.rules import DocFile, ProjectContext, ProjectRule
from repro.lint.rules import register
from repro.lint.rules.interproc_units import _ProjectFinding

#: The project's metric-name shape (prefix keeps unrelated ``.counter``
#: calls from being misread as metric emissions).
METRIC_NAME_RE = re.compile(r"\Arepro_[a-z0-9_]+\Z")

#: Catalogue-table row: ``| `repro_x_total` | counter | labels | help |``.
_DOC_ROW_RE = re.compile(r"^\|\s*`(repro_[a-z0-9_]+)`\s*\|\s*([a-z]+)\s*\|")

#: Registry methods that emit (attr name doubles as the kind).
_EMIT_KINDS = ("counter", "gauge", "histogram")

#: Documentation file the catalogue lives in.
CATALOGUE_DOC = "OBSERVABILITY.md"


@dataclass
class EmitSite:
    """One statically-resolved metric emission or declaration."""

    name: str
    kind: str
    module: ModuleInfo
    node: ast.AST
    declared: bool  # True for .declare(...) sites


def _string_arg(node: ast.expr, module: ModuleInfo) -> str | None:
    """A literal or module-constant string argument, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        expr = module.constants.get(node.id)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
    return None


def collect_emit_sites(
    pctx: ProjectContext, rule: ProjectRule
) -> list[EmitSite]:
    """Every statically-knowable emission/declaration, in stable order."""
    sites: list[EmitSite] = []
    for relpath in sorted(pctx.index.by_relpath):
        if rule.skip_relpath(relpath):
            continue
        module = pctx.index.by_relpath[relpath]
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            if method not in (*_EMIT_KINDS, "declare"):
                continue
            args = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            name_node = node.args[0] if node.args else args.get("name")
            if name_node is None:
                continue
            name = _string_arg(name_node, module)
            if name is None or not METRIC_NAME_RE.match(name):
                continue
            if method == "declare":
                kind_node = (
                    node.args[1] if len(node.args) > 1 else args.get("kind")
                )
                kind = _string_arg(kind_node, module) if kind_node else None
                if kind is None:
                    continue
                sites.append(EmitSite(name, kind, module, node, True))
            else:
                sites.append(EmitSite(name, method, module, node, False))
    return sites


def constant_pool(pctx: ProjectContext, rule: ProjectRule) -> set[str]:
    """Metric-shaped strings inside module-level constants (name tables)."""
    pool: set[str] = set()
    for relpath in sorted(pctx.index.by_relpath):
        if rule.skip_relpath(relpath):
            continue
        module = pctx.index.by_relpath[relpath]
        for expr in module.constants.values():
            for node in ast.walk(expr):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ) and METRIC_NAME_RE.match(node.value):
                    pool.add(node.value)
    return pool


def documented_families(doc: DocFile) -> dict[str, tuple[str, int]]:
    """name -> (documented kind, 1-indexed doc line) from catalogue rows."""
    families: dict[str, tuple[str, int]] = {}
    for lineno, text in enumerate(doc.lines, start=1):
        match = _DOC_ROW_RE.match(text.strip())
        if match and match.group(1) not in families:
            families[match.group(1)] = (match.group(2), lineno)
    return families


def _doc_finding(
    rule, doc: DocFile, lineno: int, message: str
) -> Finding:
    snippet = ""
    if 1 <= lineno <= len(doc.lines):
        snippet = doc.lines[lineno - 1].strip()
    return Finding(
        rule=rule.id,
        path=doc.label,
        line=lineno,
        col=0,
        message=f"[{rule.name}] {message}",
        snippet=snippet,
    )


class UndocumentedMetricRule(_ProjectFinding, ProjectRule):
    """R801: a family the code emits but the catalogue omits."""

    id = "R801"
    name = "metric-undocumented"
    rationale = (
        "docs/OBSERVABILITY.md is the only discovery surface operators "
        "have; a family emitted but not catalogued is telemetry nobody "
        "can alert on, and the doc-vs-code drift compounds silently."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        doc = pctx.docs.get(CATALOGUE_DOC)
        if doc is None:
            return
        documented = documented_families(doc)
        reported: set[str] = set()
        for site in collect_emit_sites(pctx, self):
            if site.name in documented or site.name in reported:
                continue
            reported.add(site.name)
            yield self.project_finding(
                site.module, site.node,
                f"metric {site.name!r} ({site.kind}) is emitted here but "
                f"not documented in {doc.label}",
            )


class UnemittedMetricRule(_ProjectFinding, ProjectRule):
    """R802: a catalogued family no code emits, declares, or names."""

    id = "R802"
    name = "metric-unemitted"
    rationale = (
        "A documented family the code never produces means a dashboard "
        "panel or SLO gate is silently reading nothing — usually the "
        "residue of a rename that missed the catalogue."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        doc = pctx.docs.get(CATALOGUE_DOC)
        if doc is None:
            return
        exists = {s.name for s in collect_emit_sites(pctx, self)}
        exists |= constant_pool(pctx, self)
        for name, (_kind, lineno) in sorted(
            documented_families(doc).items()
        ):
            if name not in exists:
                yield _doc_finding(
                    self, doc, lineno,
                    f"metric {name!r} is documented but nothing in the "
                    "scanned code emits, declares, or names it",
                )


class MetricKindSkewRule(_ProjectFinding, ProjectRule):
    """R803: one family, two kinds (across sites or code-vs-doc)."""

    id = "R803"
    name = "metric-kind-skew"
    rationale = (
        "MetricsRegistry raises on kind conflicts only when both sites "
        "execute in one process; static skew (or a doc row disagreeing "
        "with the code) still corrupts cross-process merges and "
        "operator expectations."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        doc = pctx.docs.get(CATALOGUE_DOC)
        documented = documented_families(doc) if doc is not None else {}
        sites = collect_emit_sites(pctx, self)
        by_name: dict[str, list[EmitSite]] = {}
        for site in sites:
            by_name.setdefault(site.name, []).append(site)
        for name in sorted(by_name):
            group = by_name[name]
            kinds = sorted({s.kind for s in group})
            if len(kinds) > 1:
                first = group[0]
                yield self.project_finding(
                    first.module, first.node,
                    f"metric {name!r} is emitted with conflicting kinds "
                    f"({', '.join(kinds)}) across the project",
                )
                continue
            doc_entry = documented.get(name)
            if doc_entry is not None and doc_entry[0] != kinds[0]:
                first = group[0]
                yield self.project_finding(
                    first.module, first.node,
                    f"metric {name!r} is a {kinds[0]} in code but "
                    f"documented as a {doc_entry[0]}",
                )


register(UndocumentedMetricRule())
register(UnemittedMetricRule())
register(MetricKindSkewRule())
