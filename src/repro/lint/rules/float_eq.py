"""R4 family — float hygiene.

Exact ``==``/``!=`` between floats is how the ``FpsMeter.fps_series``
bucket-count bug (fixed in PR 1) happened: IEEE dust makes two
mathematically equal quantities compare unequal.  In the numerical core
(fixed-point analysis, thermal integration, power models) such
comparisons are flagged; compare against a tolerance or restructure to
``<=``/``>=`` guards instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.rules import FileContext, Rule, register
from repro.lint.rules.common import INTEGER_UNITS, is_float_constant, unit_of


def _non_numeric_constant(node: ast.AST) -> bool:
    """Constants that make an equality obviously not a float compare."""
    return isinstance(node, ast.Constant) and (
        node.value is None or type(node.value) in (str, bytes, bool)
    )


def _floatish(node: ast.AST) -> bool:
    """Whether an expression is recognisably float-valued."""
    if is_float_constant(node):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "float":
            return True
        if node.func.id in ("abs", "round", "sum", "min", "max"):
            return any(_floatish(a) for a in node.args)
    if isinstance(node, (ast.BinOp, ast.UnaryOp)):
        children = (
            (node.left, node.right) if isinstance(node, ast.BinOp)
            else (node.operand,)
        )
        return any(_floatish(c) for c in children)
    tag = unit_of(node)
    if tag is not None:
        # kHz/millidegree names hold the *integer* sysfs representation.
        return tag.unit not in INTEGER_UNITS
    return False


class FloatEqualityRule(Rule):
    """R401: exact equality between float expressions."""

    id = "R401"
    name = "float-exact-equality"
    rationale = (
        "== / != on floats silently fails on IEEE rounding dust; compare "
        "with a tolerance (math.isclose, abs(a-b) <= eps) or use ordered "
        "guards."
    )
    include = ("core/", "kernel/", "soc/", "thermal/", "power/", "sim/")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _non_numeric_constant(left) or _non_numeric_constant(right):
                    continue  # `s == "passive"`, `x == None`: not floats
                if _floatish(left) or _floatish(right):
                    yield self.finding(
                        ctx, node,
                        f"exact float equality "
                        f"{ast.unparse(left)!r} vs {ast.unparse(right)!r}; "
                        "compare with a tolerance",
                    )


register(FloatEqualityRule())
