"""R7 family — serialization and wire-format drift.

A field added to ``to_dict`` but not ``from_dict`` survives every unit
test that round-trips fresh objects and then silently drops data when a
campaign store written by one version is read by the next.  R701 checks
literal-keyed ``to_dict``/``from_dict`` pairs for key-set symmetry;
R702 checks the ``repro.<family>/<version>`` wire-format literals for
version skew and for raw duplicates of a literal some module already
owns as a constant.

Both checks are deliberately conservative: a serializer that builds its
dict dynamically (``**`` expansion, ``dataclasses.fields``, ``asdict``,
``dict(data)``) is skipped — its schema is enforced at runtime — and
only provably-asymmetric literal keys are reported.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.index import ClassInfo, FunctionInfo, ModuleInfo
from repro.lint.rules import ProjectContext, ProjectRule
from repro.lint.rules import register
from repro.lint.rules.interproc_units import _ProjectFinding

#: ``repro.obs.snapshot/1``-style wire-format version literals.
WIRE_FORMAT_RE = re.compile(r"\Arepro(\.[a-z_]+)*/\d+\Z")

#: Callables whose presence makes a serializer's key set dynamic.
_DYNAMIC_CALLS = frozenset({"asdict", "fields", "vars"})


def _str_keys(node: ast.Dict) -> set[str] | None:
    """Literal string keys of a dict display; None if any key is dynamic."""
    keys: set[str] = set()
    for key in node.keys:
        if key is None:
            return None  # ** expansion
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None
    return keys


def serialized_keys(func: FunctionInfo) -> set[str] | None:
    """Top-level keys ``to_dict`` writes; None when not statically known.

    Covers the two idioms the codebase uses — returning a dict display
    directly, and building a named dict then returning it (including
    ``out["key"] = ...`` inserts) — and refuses anything dynamic.
    """
    returned_names: set[str] = set()
    returned_dicts: list[ast.Dict] = []
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name in _DYNAMIC_CALLS:
                return None
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                returned_dicts.append(node.value)
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
            else:
                return None
    if not returned_dicts and not returned_names:
        return None
    keys: set[str] = set()
    for display in returned_dicts:
        top = _str_keys(display)
        if top is None:
            return None
        keys |= top
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id in returned_names
            ):
                if not isinstance(node.value, ast.Dict):
                    return None
                top = _str_keys(node.value)
                if top is None:
                    return None
                keys |= top
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in returned_names
            ):
                if isinstance(target.slice, ast.Constant) and isinstance(
                    target.slice.value, str
                ):
                    keys.add(target.slice.value)
                else:
                    return None
    return keys


def deserialized_keys(func: FunctionInfo) -> set[str] | None:
    """Keys ``from_dict`` reads from its payload parameter, or None.

    Reads are ``data["k"]``, ``data.get("k", ...)`` and
    ``data.pop("k", ...)``; ``**data`` / ``dict(data)`` / ``data.items()``
    mark the reader dynamic.
    """
    if not func.params:
        return None
    payload = func.params[0]
    keys: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ) and node.value.id == payload:
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                keys.add(node.slice.value)
            else:
                return None
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == payload
            ):
                if callee.attr in ("get", "pop") and node.args and isinstance(
                    node.args[0], ast.Constant
                ) and isinstance(node.args[0].value, str):
                    keys.add(node.args[0].value)
                elif callee.attr in ("items", "keys", "values"):
                    return None
            elif isinstance(callee, ast.Name) and callee.id == "dict":
                if any(
                    isinstance(a, ast.Name) and a.id == payload
                    for a in node.args
                ):
                    return None
            for kw in node.keywords:
                if kw.arg is None and isinstance(
                    kw.value, ast.Name
                ) and kw.value.id == payload:
                    return None  # cls(**data)
    return keys


class RoundTripSymmetryRule(_ProjectFinding, ProjectRule):
    """R701: to_dict writes a key from_dict never reads, or vice versa."""

    id = "R701"
    name = "roundtrip-key-drift"
    rationale = (
        "A key present on one side of a to_dict/from_dict pair only is "
        "data loss (writer-only: dropped on load) or a KeyError-in-"
        "waiting (reader-only: absent from stored payloads); fresh-"
        "object round-trip tests cannot catch either."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        for relpath in sorted(pctx.index.by_relpath):
            if self.skip_relpath(relpath):
                continue
            module = pctx.index.by_relpath[relpath]
            for cname in sorted(module.classes):
                yield from self._check_class(module, module.classes[cname])

    def _check_class(
        self, module: ModuleInfo, cls: ClassInfo
    ) -> Iterable[Finding]:
        writer = cls.methods.get("to_dict")
        reader = cls.methods.get("from_dict")
        if writer is None or reader is None:
            return
        written = serialized_keys(writer)
        read = deserialized_keys(reader)
        if written is None or read is None:
            return  # dynamic serializer; schema enforced at runtime
        for key in sorted(written - read):
            yield self.project_finding(
                module, writer.node,
                f"{cls.name}.to_dict writes {key!r} but "
                f"{cls.name}.from_dict never reads it (dropped on load)",
            )
        for key in sorted(read - written):
            yield self.project_finding(
                module, reader.node,
                f"{cls.name}.from_dict reads {key!r} but "
                f"{cls.name}.to_dict never writes it (KeyError on real "
                "payloads)",
            )


class WireFormatRule(_ProjectFinding, ProjectRule):
    """R702: wire-format literal version skew or raw duplication."""

    id = "R702"
    name = "wire-format-drift"
    rationale = (
        "The 'repro.<family>/<n>' literals are the cross-process "
        "compatibility contract; two sites disagreeing on <n>, or a "
        "module re-typing a literal another module owns as a constant, "
        "is how a version bump misses a reader."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        # family -> list of (version, module, node, is_constant_def)
        sites: dict[str, list] = {}
        owners: dict[str, str] = {}  # family -> module name defining it
        for relpath in sorted(pctx.index.by_relpath):
            if self.skip_relpath(relpath):
                continue
            module = pctx.index.by_relpath[relpath]
            constant_nodes = {
                id(expr) for expr in module.constants.values()
            }
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and WIRE_FORMAT_RE.match(node.value)
                ):
                    continue
                family, _, version = node.value.rpartition("/")
                is_def = id(node) in constant_nodes
                sites.setdefault(family, []).append(
                    (version, module, node, is_def)
                )
                if is_def and family not in owners:
                    owners[family] = module.name
        for family in sorted(sites):
            yield from self._check_family(
                family, sites[family], owners.get(family)
            )

    def _check_family(
        self, family: str, entries: list, owner: str | None
    ) -> Iterable[Finding]:
        versions = sorted({version for version, *_ in entries})
        for version, module, node, is_def in entries:
            if len(versions) > 1:
                yield self.project_finding(
                    module, node,
                    f"wire format {family!r} appears with versions "
                    f"{', '.join(versions)} across the project; every "
                    "site must agree",
                )
            elif not is_def and owner is not None and module.name != owner:
                yield self.project_finding(
                    module, node,
                    f"literal {family}/{version} re-typed here; import "
                    f"the constant {owner} defines instead",
                )


register(RoundTripSymmetryRule())
register(WireFormatRule())
