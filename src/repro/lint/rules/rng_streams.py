"""R6 family — RNG-stream discipline.

Reproducibility rests on one invariant: every random draw in a scenario
derives from the root seed through a *named* ``RngRegistry`` stream.  An
orphan generator (``np.random.default_rng()`` constructed ad hoc) gives
byte-different campaigns run-to-run, and a stream name outside the
declared namespaces silently forks the seed-derivation convention the
fault-injection and sensor layers rely on.

R601 bans generator construction anywhere except the registry module
itself; R602 checks every ``.stream("...")`` name against the
``STREAM_NAMESPACES`` frozenset declared next to ``RngRegistry``.  Both
discover the registry module *from the index* (the module defining a
class named ``RngRegistry``), so fixture packages exercise the same code
path as ``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules import ProjectContext, ProjectRule
from repro.lint.rules import register
from repro.lint.rules.interproc_units import _ProjectFinding

#: Fully-qualified callables that mint generators or reseed global state.
ORPHAN_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.SeedSequence",
    "numpy.random.seed",
    "random.Random",
    "random.seed",
})

#: Name of the namespace-allowlist constant R602 looks for.
NAMESPACES_CONSTANT = "STREAM_NAMESPACES"

#: Class whose defining module is the sanctioned generator factory.
REGISTRY_CLASS = "RngRegistry"


def registry_module(index: ProjectIndex) -> ModuleInfo | None:
    """The module defining ``RngRegistry``, if the index has one."""
    for relpath in sorted(index.by_relpath):
        module = index.by_relpath[relpath]
        if REGISTRY_CLASS in module.classes:
            return module
    return None


def _dotted_parts(node: ast.AST) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _resolve_full_name(module: ModuleInfo, node: ast.AST) -> str | None:
    """Import-alias-resolved dotted name of a call target."""
    parts = _dotted_parts(node)
    if parts is None:
        return None
    head = module.imports.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def declared_namespaces(module: ModuleInfo) -> frozenset[str] | None:
    """String elements of the module's ``STREAM_NAMESPACES`` constant."""
    expr = module.constants.get(NAMESPACES_CONSTANT)
    if expr is None:
        return None
    if isinstance(expr, ast.Call) and expr.args:
        expr = expr.args[0]  # frozenset({...}) -> the set literal
    if isinstance(expr, (ast.Set, ast.List, ast.Tuple)):
        names = set()
        for element in expr.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.add(element.value)
            else:
                return None  # not statically known; don't guess
        return frozenset(names)
    return None


class OrphanGeneratorRule(_ProjectFinding, ProjectRule):
    """R601: a random generator constructed outside the registry."""

    id = "R601"
    name = "orphan-rng-generator"
    rationale = (
        "Generators not minted by RngRegistry.stream() are invisible to "
        "the root seed: the run stops being a pure function of "
        "(scenario, seed), which breaks campaign caching and every "
        "reproducibility claim downstream."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        sanctioned = registry_module(pctx.index)
        for relpath in sorted(pctx.index.by_relpath):
            module = pctx.index.by_relpath[relpath]
            if self.skip_relpath(relpath):
                continue
            if sanctioned is not None and module is sanctioned:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                full = _resolve_full_name(module, node.func)
                if full in ORPHAN_CONSTRUCTORS:
                    yield self.project_finding(
                        module, node,
                        f"{full}() constructs a generator outside "
                        "RngRegistry; derive a named stream from the "
                        "scenario seed instead",
                    )


class StreamNamespaceRule(_ProjectFinding, ProjectRule):
    """R602: a stream name outside the declared namespaces."""

    id = "R602"
    name = "rng-stream-namespace"
    rationale = (
        "Stream names are the seed-derivation contract: consumers agree "
        "on 'faults.*', 'sensor.*' etc. so adding one never perturbs "
        "another's draws.  A name outside STREAM_NAMESPACES is either a "
        "typo or an undeclared new consumer class."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        sanctioned = registry_module(pctx.index)
        if sanctioned is None:
            return
        allowed = declared_namespaces(sanctioned)
        if allowed is None:
            return  # no allowlist declared; nothing to check against
        for relpath in sorted(pctx.index.by_relpath):
            module = pctx.index.by_relpath[relpath]
            if self.skip_relpath(relpath):
                continue
            for node in ast.walk(module.tree):
                namespace, site = self._stream_namespace(node)
                if namespace is None or namespace in allowed:
                    continue
                yield self.project_finding(
                    module, site,
                    f"stream namespace {namespace!r} is not declared in "
                    f"{NAMESPACES_CONSTANT} "
                    f"({', '.join(sorted(allowed))})",
                )

    @staticmethod
    def _stream_namespace(node: ast.AST):
        """(namespace, site) of a ``.stream(<name>)`` call, else (None, None).

        The namespace is the text before the first ``.`` of the stream
        name; f-strings contribute their leading literal (a name whose
        namespace is itself interpolated is not statically checkable).
        """
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream"
            and len(node.args) == 1
        ):
            return None, None
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            text = arg.value
        elif isinstance(arg, ast.JoinedStr) and arg.values and isinstance(
            arg.values[0], ast.Constant
        ) and isinstance(arg.values[0].value, str):
            text = arg.values[0].value
            if "." not in text:
                return None, None  # namespace boundary not in the literal
        else:
            return None, None
        return text.split(".", 1)[0], node


register(OrphanGeneratorRule())
register(StreamNamespaceRule())
