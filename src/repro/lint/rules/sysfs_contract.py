"""R3 family — the sysfs contract.

The userspace controllers (``core/``) and experiments talk to the kernel
exclusively through virtual ``/sys`` and ``/proc`` paths.  A typo'd node
name only explodes mid-run — or worse, an ``fs.exists`` probe quietly
returns False forever.  This rule extracts every ``/sys``/``/proc``
string (including f-string templates) outside the kernel layer and
checks it against the tree that ``kernel/wiring.py`` actually registers
for every platform in :mod:`repro.soc.registry`, so broken paths fail at
lint time — and newly registered devices join the authority automatically.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.rules import FileContext, Rule, register

_AUTHORITY_KEY = "sysfs_authority"


def sysfs_authority() -> tuple[frozenset, tuple]:
    """(static paths, resolver prefixes) over every registered platform.

    Built by instantiating the simulator kernels exactly as a deployment
    would — one per platform in the registry — so the check can never
    drift from the real registrations and never lags behind new devices.
    """
    from repro.kernel.kernel import KernelConfig
    from repro.sim.engine import Simulation
    from repro.soc import registry as platform_registry

    paths: set[str] = set()
    prefixes: set[str] = set()
    for name in platform_registry.platform_names():
        spec = platform_registry.build(name)
        sim = Simulation(spec, [], kernel_config=KernelConfig(), seed=0)
        fs = sim.kernel.userspace_api().fs
        paths.update(fs.paths())
        prefixes.update(fs.resolver_prefixes())
    return frozenset(paths), tuple(sorted(prefixes))


def _template_regex(parts: list) -> re.Pattern | None:
    """Compile a path template into a regex; None if not checkable.

    ``parts`` alternates literal strings and None markers for
    interpolated f-string fields (each matched as one path component).
    Templates that do not *start* with a literal ``/sys`` or ``/proc``
    segment are skipped — their root is not statically known.
    """
    if not parts or not isinstance(parts[0], str):
        return None
    first = parts[0]
    if not (first.startswith("/sys") or first.startswith("/proc")):
        return None
    pattern = ""
    for part in parts:
        pattern += re.escape(part) if isinstance(part, str) else r"[^/]+"
    # Accept the template as a node, or as a directory above real nodes.
    return re.compile(pattern.rstrip("/") + r"(/.*)?\Z")


def _string_parts(node: ast.AST) -> list | None:
    """Decompose a Str or JoinedStr into literal/placeholder parts."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        parts: list = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(None)
        return parts
    return None


class SysfsContractRule(Rule):
    """R301: a /sys or /proc path that the kernel never registers."""

    id = "R301"
    name = "sysfs-unknown-path"
    rationale = (
        "Controllers address the kernel by sysfs path strings; a typo "
        "('scaling_curr_freq') surfaces only as a mid-run ENOENT or a "
        "silently-false exists() probe.  Every path template must match "
        "a node wiring.py registers on some modelled platform."
    )
    exclude = ("kernel/", "lint/")

    def prepare(self, services: dict) -> None:
        """Build the authority up front (workers must not, N times)."""
        if _AUTHORITY_KEY not in services:
            services[_AUTHORITY_KEY] = sysfs_authority()

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Constants inside an f-string are also visited by ast.walk;
        # they are fragments, not paths, so only the JoinedStr counts.
        fragment_ids = {
            id(value)
            for node in ast.walk(ctx.tree) if isinstance(node, ast.JoinedStr)
            for value in node.values
        }
        candidates = []
        for node in ast.walk(ctx.tree):
            if id(node) in fragment_ids:
                continue
            parts = _string_parts(node)
            if parts is None:
                continue
            regex = _template_regex(parts)
            if regex is not None:
                candidates.append((node, parts, regex))
        if not candidates:
            return
        if _AUTHORITY_KEY not in ctx.services:
            ctx.services[_AUTHORITY_KEY] = sysfs_authority()
        paths, prefixes = ctx.services[_AUTHORITY_KEY]
        for node, parts, regex in candidates:
            template = "".join(
                p if isinstance(p, str) else "{*}" for p in parts
            )
            literal_head = parts[0]
            if any(
                literal_head.startswith(pfx) or pfx.startswith(literal_head + "/")
                or literal_head == pfx.rstrip("/")
                for pfx in prefixes
            ):
                continue  # resolver-served subtree (/proc/<pid>/...)
            if any(regex.match(path) for path in paths):
                continue
            yield self.finding(
                ctx, node,
                f"path {template!r} matches no node registered by "
                "kernel/wiring.py on any modelled platform",
            )


register(SysfsContractRule())
