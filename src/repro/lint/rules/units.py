"""R1 family — unit discipline.

``repro.units`` declares itself the only sanctioned conversion point
between internal units (kelvin, hertz, seconds, watts) and the
kernel-facing ones (millidegrees, kilohertz, milliseconds).  These rules
make that claim checkable: raw offset/scale arithmetic outside
``units.py`` is flagged, as is arithmetic that mixes differently-scaled
unit-suffixed names, and private re-implementations of the converters.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.rules import FileContext, Rule, register
from repro.lint.rules.common import unit_of, unit_suffix, walk_numbers
from repro.units import ZERO_CELSIUS_IN_KELVIN

#: Decimal scale factors that smell like a unit conversion when they
#: multiply or divide a unit-carrying expression.  100 (percent) and 60
#: (minutes) are deliberately absent: they are common and benign.
SCALE_LITERALS = (1000, 1000.0, 1_000_000, 1_000_000.0, 0.001, 1e-6)

_R1_EXCLUDE = ("units.py", "lint/")


def _unit_in_subtree(node: ast.AST):
    """First unit tag found anywhere in an expression subtree."""
    direct = unit_of(node)
    if direct is not None:
        return direct
    for sub in ast.walk(node):
        tag = unit_of(sub)
        if tag is not None:
            return tag
    return None


def _is_scale(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and type(node.value) in (int, float)
        and any(node.value == s for s in SCALE_LITERALS)
    )


class KelvinLiteralRule(Rule):
    """R101: the 273.15 offset appears outside ``units.py``."""

    id = "R101"
    name = "units-kelvin-literal"
    rationale = (
        "A bare 273.15 is a kelvin/Celsius conversion hiding outside the "
        "sanctioned converters; use celsius_to_kelvin/kelvin_to_celsius."
    )
    exclude = _R1_EXCLUDE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in walk_numbers(ctx.tree):
            if node.value == ZERO_CELSIUS_IN_KELVIN:
                yield self.finding(
                    ctx, node,
                    "raw 273.15 offset; use repro.units "
                    "celsius_to_kelvin/kelvin_to_celsius",
                )


class ScaleArithmeticRule(Rule):
    """R102: ``* 1000`` / ``/ 1000``-style scaling on unit-carrying values."""

    id = "R102"
    name = "units-adhoc-scaling"
    rationale = (
        "Multiplying or dividing a unit-suffixed value by a decimal scale "
        "re-implements a converter inline; one silent kHz-vs-Hz slip "
        "produces plausible-but-wrong physics."
    )
    exclude = _R1_EXCLUDE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        flagged: set[int] = set()
        for finding in self._walk(ctx.tree, ctx, flagged):
            yield finding

    def _walk(self, tree: ast.Module, ctx: FileContext, flagged: set[int]):
        func_stack: list[str] = []

        def scale_binops(node: ast.AST):
            for sub in ast.walk(node):
                if isinstance(
                    sub, ast.BinOp
                ) and isinstance(sub.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                    if _is_scale(sub.left) or _is_scale(sub.right):
                        yield sub

        def visit(node: ast.AST):
            findings = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.append(node.name)
            elif isinstance(node, ast.BinOp) and id(node) not in flagged:
                if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                    operand = None
                    if _is_scale(node.right):
                        operand = node.left
                    elif _is_scale(node.left):
                        operand = node.right
                    tag = _unit_in_subtree(operand) if operand is not None else None
                    if tag is not None:
                        flagged.add(id(node))
                        findings.append(self.finding(
                            ctx, node,
                            f"decimal scaling of {tag.dimension} value "
                            f"{ast.unparse(operand)!r}; use a repro.units "
                            "converter",
                        ))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                suffixed = any(
                    unit_of(t) is not None for t in targets
                )
                if suffixed and node.value is not None:
                    for sub in scale_binops(node.value):
                        if id(sub) not in flagged:
                            flagged.add(id(sub))
                            findings.append(self.finding(
                                ctx, sub,
                                "decimal scaling assigned to a "
                                "unit-suffixed name; use a repro.units "
                                "converter",
                            ))
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None or unit_suffix(kw.arg) is None:
                        continue
                    for sub in scale_binops(kw.value):
                        if id(sub) not in flagged:
                            flagged.add(id(sub))
                            findings.append(self.finding(
                                ctx, sub,
                                f"decimal scaling passed as {kw.arg}=; "
                                "use a repro.units converter",
                            ))
            elif isinstance(node, ast.Return) and node.value is not None:
                if func_stack and unit_suffix(func_stack[-1]) is not None:
                    for sub in scale_binops(node.value):
                        if id(sub) not in flagged:
                            flagged.add(id(sub))
                            findings.append(self.finding(
                                ctx, sub,
                                f"decimal scaling returned from "
                                f"{func_stack[-1]}(); use a repro.units "
                                "converter",
                            ))
            yield from findings
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.pop()

        yield from visit(tree)


class MixedUnitRule(Rule):
    """R103: additive/comparison arithmetic across unit suffixes."""

    id = "R103"
    name = "units-mixed-suffixes"
    rationale = (
        "Adding or comparing values whose names carry different unit "
        "suffixes (temp_c + temp_k, freq_hz > freq_khz) is almost always "
        "a missing conversion."
    )
    exclude = _R1_EXCLUDE

    def _pairs(self, node: ast.AST):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            yield node.left, node.right
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for left, right in zip(operands, operands[1:]):
                yield left, right

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            for left, right in self._pairs(node):
                lu, ru = unit_of(left), unit_of(right)
                if lu is None or ru is None or lu.unit == ru.unit:
                    continue
                yield self.finding(
                    ctx, node,
                    f"mixes {ast.unparse(left)!r} ({lu.unit}) with "
                    f"{ast.unparse(right)!r} ({ru.unit}) without converting",
                )


class ReimplementedConverterRule(Rule):
    """R104: a local function re-implements a sanctioned converter."""

    id = "R104"
    name = "units-reimplemented-converter"
    rationale = (
        "A one-line function applying a unit offset/scale duplicates "
        "repro.units; call the sanctioned converter instead so every "
        "conversion stays auditable in one module."
    )
    exclude = _R1_EXCLUDE

    _CONSTANTS = SCALE_LITERALS + (ZERO_CELSIUS_IN_KELVIN,)

    def _converter_body(self, params: set[str], expr: ast.AST) -> bool:
        while isinstance(expr, ast.Call) and len(expr.args) == 1 and not expr.keywords:
            # int(round(...))-style wrappers around the arithmetic.
            expr = expr.args[0]
        if not isinstance(expr, ast.BinOp):
            return False
        if not isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            return False
        left, right = expr.left, expr.right
        for a, b in ((left, right), (right, left)):
            if (
                isinstance(a, ast.Name)
                and a.id in params
                and isinstance(b, ast.Constant)
                and type(b.value) in (int, float)
                and any(b.value == c for c in self._CONSTANTS)
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = {a.arg for a in node.args.args}
                body = [
                    stmt for stmt in node.body
                    if not (isinstance(stmt, ast.Expr)
                            and isinstance(stmt.value, ast.Constant))
                ]
                if (
                    len(body) == 1
                    and isinstance(body[0], ast.Return)
                    and body[0].value is not None
                    and self._converter_body(params, body[0].value)
                ):
                    yield self.finding(
                        ctx, node,
                        f"{node.name}() re-implements a unit converter; "
                        "import it from repro.units",
                    )
            elif isinstance(node, ast.Lambda):
                params = {a.arg for a in node.args.args}
                if self._converter_body(params, node.body):
                    yield self.finding(
                        ctx, node,
                        "lambda re-implements a unit converter; import it "
                        "from repro.units",
                    )


register(KelvinLiteralRule())
register(ScaleArithmeticRule())
register(MixedUnitRule())
register(ReimplementedConverterRule())
