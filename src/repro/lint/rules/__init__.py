"""Rule registry for ``repro.lint``.

Each rule family lives in its own module and registers concrete
:class:`Rule` instances at import time via :func:`register`.  The engine
asks :func:`all_rules` for the catalogue; docs tests assert that
``docs/STATIC_ANALYSIS.md`` lists exactly these ids.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.lint.finding import Finding


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file.

    ``relpath`` uses posix separators and is relative to the scanned root
    (for the default scan, the ``repro`` package directory — e.g.
    ``core/governor.py``).  ``services`` is a per-run cache shared across
    files, used by rules that need cross-file state (the sysfs authority).
    """

    relpath: str
    tree: ast.Module
    lines: Sequence[str]
    services: dict = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """One named check producing findings for a file.

    Subclasses set ``id`` (``R<family><nn>``), ``name`` (kebab-case slug),
    ``rationale``, and implement :meth:`check`.  ``exclude``/``include``
    are relpath prefixes (posix); an empty ``include`` means every file.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    include: tuple = ()
    exclude: tuple = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans ``relpath`` (prefix-scoped)."""
        if any(relpath == e or relpath.startswith(e) for e in self.exclude):
            return False
        if not self.include:
            return True
        return any(relpath == i or relpath.startswith(i) for i in self.include)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def prepare(self, services: dict) -> None:
        """Populate shared ``services`` before a parallel run.

        Rules that lazily build expensive cross-file state inside
        :meth:`check` override this so the engine can build it once in
        the parent instead of once per worker.  No-op by default.
        """

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            path=ctx.relpath,
            line=line,
            col=col,
            message=f"[{self.name}] {message}",
            snippet=ctx.snippet(line),
        )


@dataclass
class DocFile:
    """One markdown document available to project rules."""

    label: str  # path label used in findings, e.g. "docs/OBSERVABILITY.md"
    path: object  # pathlib.Path
    lines: list
    sha256: str


@dataclass
class ProjectContext:
    """Everything a project-wide rule may inspect.

    Built by :func:`repro.lint.project.build_project_context`; ``index``
    is a :class:`repro.lint.index.ProjectIndex` and ``analysis`` a
    :class:`repro.lint.dataflow.UnitAnalysis` (typed loosely here so the
    registry module never imports the analysis machinery — that import
    direction is what keeps the rule/dataflow graph acyclic).
    """

    root: object  # pathlib.Path of the scan root
    index: object
    analysis: object
    docs: dict = field(default_factory=dict)  # basename -> DocFile
    services: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Cache key: changes iff the index or a consulted doc changes."""
        import hashlib

        digest = hashlib.sha256(self.index.fingerprint().encode("ascii"))
        for basename in sorted(self.docs):
            digest.update(basename.encode("utf-8"))
            digest.update(self.docs[basename].sha256.encode("ascii"))
        return digest.hexdigest()


class ProjectRule(Rule):
    """A rule that runs once over the whole project, not per file.

    ``applies_to`` is False for every file so the per-file loop skips
    these; the engine dispatches them through :meth:`check_project`.
    """

    def applies_to(self, relpath: str) -> bool:
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError

    def skip_relpath(self, relpath: str) -> bool:
        """Prefix scoping for project findings (reuses include/exclude)."""
        if any(relpath == e or relpath.startswith(e) for e in self.exclude):
            return True
        if self.include and not any(
            relpath == i or relpath.startswith(i) for i in self.include
        ):
            return True
        return False


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the catalogue (ids must be unique)."""
    if not rule.id or not rule.name:
        raise ConfigurationError("lint rules need an id and a name")
    if rule.id in _REGISTRY:
        raise ConfigurationError(f"duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigurationError(f"unknown lint rule {rule_id!r}") from None


# Importing the family modules populates the registry.  Keep this at the
# bottom so the modules can import the names above.  interproc_units must
# precede the other project families (they reuse its finding helper).
from repro.lint.rules import determinism as _determinism  # noqa: E402,F401
from repro.lint.rules import float_eq as _float_eq  # noqa: E402,F401
from repro.lint.rules import interproc_units as _interproc  # noqa: E402,F401
from repro.lint.rules import metric_coherence as _metrics  # noqa: E402,F401
from repro.lint.rules import rng_streams as _rng  # noqa: E402,F401
from repro.lint.rules import serialization as _serial  # noqa: E402,F401
from repro.lint.rules import sysfs_contract as _sysfs  # noqa: E402,F401
from repro.lint.rules import units as _units  # noqa: E402,F401
