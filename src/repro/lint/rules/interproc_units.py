"""R5 family — inter-procedural unit mismatches.

The R1 rules look at one expression; these look at *flow*.  A value
typed millicelsius by the dataflow pass (:mod:`repro.lint.dataflow`)
that arrives in a parameter whose name says Celsius is exactly the class
of bug the paper's thermal pipeline cannot survive — the governor would
compare 52 000 against a 75-degree limit and conclude the SoC is on
fire (or never throttle at all, in the m°C-vs-°C direction).

Every check fires only when *both* sides carry a known unit tag; any
ambiguity (unresolvable call, mixed reassignment, arithmetic that could
be a deliberate rescale) widens to unknown and stays silent.  The goal
is zero false positives, accepting false negatives.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.dataflow import converter_units
from repro.lint.finding import Finding
from repro.lint.index import FunctionInfo, ModuleInfo
from repro.lint.rules import ProjectContext, ProjectRule
from repro.lint.rules import register
from repro.lint.rules.common import UnitTag, unit_suffix


def _tags_differ(a: UnitTag, b: UnitTag) -> bool:
    return (a.dimension, a.unit) != (b.dimension, b.unit)


def _describe(tag: UnitTag) -> str:
    return f"{tag.unit} ({tag.dimension})"


class _ProjectFinding:
    """Mixin building findings from index positions (no FileContext)."""

    def project_finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=line,
            col=col,
            message=f"[{self.name}] {message}",
            snippet=snippet,
        )


def _iter_checked_functions(pctx: ProjectContext, rule: ProjectRule):
    for func in pctx.index.iter_functions():
        if rule.skip_relpath(func.relpath):
            continue
        yield func, pctx.index.modules[func.module]


class CallArgUnitRule(_ProjectFinding, ProjectRule):
    """R501: argument unit disagrees with the callee parameter's unit."""

    id = "R501"
    name = "call-arg-unit-mismatch"
    rationale = (
        "A millidegree value flowing into a Celsius-typed parameter "
        "across a call boundary silently scales the physics by 1000x; "
        "the per-expression R1 checks cannot see across files."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        for func, module in _iter_checked_functions(pctx, self):
            env = pctx.analysis.build_env(func)
            for call in ast.walk(func.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = pctx.index.resolve_call(
                    module, call, func.class_name
                )
                if callee is None:
                    continue
                for arg_node, param, expected in self._expectations(
                    call, callee
                ):
                    actual = pctx.analysis.infer(
                        arg_node, env, module, func.class_name
                    )
                    if actual is None or not _tags_differ(actual, expected):
                        continue
                    yield self.project_finding(
                        module, arg_node,
                        f"argument to {callee.qualname}({param}=...) is "
                        f"{_describe(actual)} but the parameter expects "
                        f"{_describe(expected)}",
                    )

    @staticmethod
    def _expectations(call: ast.Call, callee: FunctionInfo):
        """Yield (arg node, param name, expected tag) for checkable args."""
        converter = converter_units(callee)
        param_tags: dict[str, UnitTag] = {}
        if converter is not None and callee.params:
            param_tags[callee.params[0]] = converter[0]
        else:
            for p in (*callee.params, *callee.kwonly):
                tag = unit_suffix(p)
                if tag is not None:
                    param_tags[p] = tag
        if not param_tags:
            return
        for pos, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                return  # positions past a * are unknowable
            if pos >= len(callee.params):
                break
            expected = param_tags.get(callee.params[pos])
            if expected is not None:
                yield arg, callee.params[pos], expected
        for kw in call.keywords:
            if kw.arg is None:
                continue  # ** expansion never matches by name statically
            expected = param_tags.get(kw.arg)
            if expected is not None:
                yield kw.value, kw.arg, expected


class ReturnUnitRule(_ProjectFinding, ProjectRule):
    """R502: inferred return unit disagrees with the function's name."""

    id = "R502"
    name = "return-unit-mismatch"
    rationale = (
        "A function named read_temp_c whose body provably returns "
        "millicelsius poisons every caller that trusts the name; the "
        "name is the only unit contract Python gives us."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        for func, module in _iter_checked_functions(pctx, self):
            if converter_units(func) is not None:
                # Sanctioned converters are typed by the signature table
                # (mhz() legitimately returns hertz despite its name).
                continue
            declared = unit_suffix(func.name)
            if declared is None:
                continue
            inferred = pctx.analysis.summary_for(func).return_unit
            if inferred is None or not _tags_differ(inferred, declared):
                continue
            yield self.project_finding(
                module, func.node,
                f"{func.qualname} is named {_describe(declared)} but its "
                f"return value is {_describe(inferred)}",
            )


class AssignUnitRule(_ProjectFinding, ProjectRule):
    """R503: unit-suffixed variable bound to a different unit's value."""

    id = "R503"
    name = "assign-unit-mismatch"
    rationale = (
        "temp_c = sensor.read_millicelsius() type-launders a raw sysfs "
        "value into a Celsius-named variable; every later use of the "
        "name now lies, and only flow analysis sees the origin."
    )
    exclude = ("lint/",)

    def check_project(self, pctx: ProjectContext) -> Iterable[Finding]:
        for func, module in _iter_checked_functions(pctx, self):
            env = pctx.analysis.build_env(func)
            for stmt in ast.walk(func.node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                else:
                    continue
                if not isinstance(target, ast.Name):
                    continue
                declared = unit_suffix(target.id)
                if declared is None:
                    continue
                actual = pctx.analysis.infer(
                    value, env, module, func.class_name
                )
                if actual is None or not _tags_differ(actual, declared):
                    continue
                yield self.project_finding(
                    module, stmt,
                    f"{target.id} is named {_describe(declared)} but is "
                    f"assigned a {_describe(actual)} value",
                )


register(CallArgUnitRule())
register(ReturnUnitRule())
register(AssignUnitRule())
