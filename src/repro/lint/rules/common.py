"""Shared AST helpers for the rule families.

The implementations live in :mod:`repro.lint.unitconv` (outside the
rules package, so the dataflow pass can import them without triggering
rule registration); this module re-exports them under the historical
name the rule families use.
"""

from __future__ import annotations

from repro.lint.unitconv import (  # noqa: F401
    BARE_UNIT_NAMES,
    INTEGER_UNITS,
    UNIT_SUFFIXES,
    UnitTag,
    identifier_of,
    is_float_constant,
    unit_of,
    unit_suffix,
    walk_numbers,
)
