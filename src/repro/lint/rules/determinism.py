"""R2 family — determinism.

Every benchmark and regression test in this repository depends on the
guarantee that one ``(seed, name)`` pair replays the exact same run.
These rules keep nondeterminism out of simulation code: entropy must
come from ``sim/rng.py`` streams, time from the simulated clock, and
iteration order must never depend on hash randomisation.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding
from repro.lint.rules import FileContext, Rule, register

#: ``np.random`` attributes that are deterministic constructions (seeded
#: bit generators and generator classes), as used by ``sim/rng.py``.
SEEDED_NP_ATTRS = frozenset({
    "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock callables that leak real time into simulated state.
WALL_CLOCK_CALLS = frozenset({"time", "time_ns", "now", "utcnow", "today"})


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute chain like ``np.random.default_rng``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class StdlibRandomRule(Rule):
    """R201: the stdlib ``random`` module is used at all."""

    id = "R201"
    name = "det-stdlib-random"
    rationale = (
        "random.* draws from untracked global state; use a named stream "
        "from sim/rng.py so replays and new consumers stay stable."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "stdlib random imported; use a named "
                            "sim/rng.py stream",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib random imported; use a named sim/rng.py "
                        "stream",
                    )


class WallClockRule(Rule):
    """R202: wall-clock reads (``time.time``, ``datetime.now``)."""

    id = "R202"
    name = "det-wall-clock"
    rationale = (
        "time.time()/datetime.now() make results depend on when the run "
        "happened; simulated behaviour must read the sim clock.  "
        "time.perf_counter/monotonic stay allowed: they only measure "
        "host-side durations for profiling."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            head, _, leaf = dotted.rpartition(".")
            if leaf not in WALL_CLOCK_CALLS:
                continue
            if leaf in ("time", "time_ns") and head.split(".")[-1] != "time":
                continue
            if leaf in ("now", "utcnow", "today") and "datetime" not in head.split("."):
                continue
            yield self.finding(
                ctx, node,
                f"wall-clock read {dotted}(); simulated state must use "
                "the sim clock",
            )


class UnseededNumpyRule(Rule):
    """R203: global/unseeded ``np.random`` entropy."""

    id = "R203"
    name = "det-unseeded-numpy"
    rationale = (
        "np.random.<fn>() draws from the process-global generator and "
        "np.random.default_rng() without a seed draws OS entropy; both "
        "break replay.  Build generators through sim/rng.py."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 2 or parts[-2] != "random":
                continue
            leaf = parts[-1]
            if leaf in SEEDED_NP_ATTRS:
                continue
            if leaf == "default_rng" and (node.args or node.keywords):
                continue  # explicitly seeded: fine
            yield self.finding(
                ctx, node,
                f"unseeded numpy entropy {dotted}(); use a named "
                "sim/rng.py stream",
            )


class SetIterationRule(Rule):
    """R204: iteration directly over a set expression."""

    id = "R204"
    name = "det-set-iteration"
    rationale = (
        "Set iteration order depends on string-hash randomisation across "
        "processes; wrap the set in sorted() before iterating so traces "
        "and reports are stable."
    )

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        ctx, it,
                        "iterating a bare set; wrap in sorted() for a "
                        "stable order",
                    )


register(StdlibRandomRule())
register(WallClockRule())
register(UnseededNumpyRule())
register(SetIterationRule())
