"""Unit-dimension abstract interpretation over the project index.

The R1 rules catch unit bugs a single expression betrays (a ``* 1000``
next to a ``_khz`` name).  This pass catches the ones that *cross*
statements and files: a value born as millidegrees in one function
flowing, through assignments, returns and call boundaries, into a
parameter whose name says Celsius.

The abstract domain is deliberately tiny: a value is either a known
``(dimension, unit)`` tag — the vocabulary of
:mod:`repro.lint.unitconv` — or unknown.  Three sources introduce
tags:

* **parameter / variable name conventions** — ``temp_mc`` is
  millicelsius because its suffix says so;
* **the sanctioned converters** — a call resolved to
  ``repro.units.kelvin_to_celsius`` *returns* Celsius whatever its
  argument was named (:data:`CONVERTER_SIGNATURES` pins each converter's
  input and output unit, so a converter the table does not know is a
  test failure, not a silent hole);
* **other functions' summaries** — computed for the whole index to a
  fixpoint, so a chain ``a() -> b() -> temp_mc`` still types ``a()``.

Propagation is a single forward pass per function over assignments and
returns (loops and reassignment joins collapse to unknown — lint must
never be *wrong*, so every ambiguity widens).  Mismatches are only
reported when both sides carry a *known* tag.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

from repro.lint.index import FunctionInfo, ModuleInfo, ProjectIndex
from repro.lint.unitconv import UnitTag, unit_suffix

#: Input/output units of every ``repro.units`` converter, keyed by bare
#: function name.  ``tests/test_lint_dataflow.py`` asserts this table
#: covers every public function of :mod:`repro.units`, so adding a
#: converter without teaching the analyzer fails the suite.
CONVERTER_SIGNATURES: dict[str, tuple[tuple[str, str], tuple[str, str]]] = {
    # name: ((in dimension, in unit), (out dimension, out unit))
    "celsius_to_kelvin": (("temperature", "celsius"), ("temperature", "kelvin")),
    "kelvin_to_celsius": (("temperature", "kelvin"), ("temperature", "celsius")),
    "kelvin_to_millicelsius": (
        ("temperature", "kelvin"), ("temperature", "millicelsius")),
    "millicelsius_to_kelvin": (
        ("temperature", "millicelsius"), ("temperature", "kelvin")),
    "celsius_to_millicelsius": (
        ("temperature", "celsius"), ("temperature", "millicelsius")),
    "millicelsius_to_celsius": (
        ("temperature", "millicelsius"), ("temperature", "celsius")),
    "hz_to_khz": (("frequency", "hertz"), ("frequency", "kilohertz")),
    "khz_to_hz": (("frequency", "kilohertz"), ("frequency", "hertz")),
    # mhz() *expresses megahertz in hertz* — its name suffix lies, which
    # is exactly why the table, not the convention, is authoritative.
    "mhz": (("frequency", "megahertz"), ("frequency", "hertz")),
    "hz_to_mhz": (("frequency", "hertz"), ("frequency", "megahertz")),
    "khz_to_mhz": (("frequency", "kilohertz"), ("frequency", "megahertz")),
    "seconds_to_milliseconds": (("time", "seconds"), ("time", "milliseconds")),
    "milliseconds_to_seconds": (("time", "milliseconds"), ("time", "seconds")),
    "seconds_to_microseconds": (("time", "seconds"), ("time", "microseconds")),
    "microseconds_to_seconds": (("time", "microseconds"), ("time", "seconds")),
    "watts_to_microwatts": (("power", "watts"), ("power", "microwatts")),
    "microwatts_to_watts": (("power", "microwatts"), ("power", "watts")),
    "joules_to_millijoules": (("energy", "joules"), ("energy", "millijoules")),
    "millijoules_to_joules": (("energy", "millijoules"), ("energy", "joules")),
}

#: Module whose functions the signature table describes.
UNITS_MODULE_SUFFIX = "units"

#: Builtins transparent to units: the result has its argument's unit.
_TRANSPARENT_CALLS = frozenset({"int", "float", "round", "abs", "min", "max"})


def _tag(dimension: str, unit: str) -> UnitTag:
    return UnitTag(suffix="", dimension=dimension, unit=unit)


def _join(a: UnitTag | None, b: UnitTag | None) -> UnitTag | None:
    """Lattice join: equal units survive, anything else widens to None."""
    if a is None or b is None:
        return None
    if (a.dimension, a.unit) == (b.dimension, b.unit):
        return a
    return None


def converter_units(func: FunctionInfo) -> tuple[UnitTag, UnitTag] | None:
    """(input, output) tags when ``func`` is a sanctioned converter."""
    if func.class_name is not None:
        return None
    last = func.module.rpartition(".")[2]
    if last != UNITS_MODULE_SUFFIX:
        return None
    sig = CONVERTER_SIGNATURES.get(func.name)
    if sig is None:
        return None
    (in_dim, in_unit), (out_dim, out_unit) = sig
    return _tag(in_dim, in_unit), _tag(out_dim, out_unit)


@dataclass
class FunctionSummary:
    """What unit analysis knows about one function's boundary."""

    func: FunctionInfo
    #: Parameter name -> tag, for parameters whose names carry a suffix.
    param_units: dict[str, UnitTag] = field(default_factory=dict)
    #: Join of every return expression's inferred tag (None = unknown).
    return_unit: UnitTag | None = None


class UnitEnv:
    """Name -> tag environment for one function body."""

    def __init__(self, seed: Mapping[str, UnitTag] | None = None) -> None:
        self._env: dict[str, UnitTag | None] = dict(seed or {})

    def get(self, name: str) -> UnitTag | None:
        if name in self._env:
            return self._env[name]
        return unit_suffix(name)

    def set(self, name: str, tag: UnitTag | None) -> None:
        if name in self._env:
            # A name bound twice only keeps a tag both bindings agree on.
            self._env[name] = _join(self._env[name], tag)
        else:
            self._env[name] = tag


class UnitAnalysis:
    """Project-wide unit inference: summaries plus per-expression typing."""

    def __init__(self, index: ProjectIndex, rounds: int = 3) -> None:
        self.index = index
        self.summaries: dict[int, FunctionSummary] = {}
        for func in index.iter_functions():
            self.summaries[id(func.node)] = FunctionSummary(
                func=func,
                param_units={
                    p: tag
                    for p in (*func.params, *func.kwonly)
                    if (tag := unit_suffix(p)) is not None
                },
            )
        # Fixpoint over return-unit summaries: each round may type more
        # call results from the previous round's summaries.  Three rounds
        # close any realistic chain; the loop stops early when stable.
        for _ in range(rounds):
            changed = False
            for func in index.iter_functions():
                summary = self.summaries[id(func.node)]
                inferred = self._infer_return(func)
                if self._tag_key(inferred) != self._tag_key(summary.return_unit):
                    summary.return_unit = inferred
                    changed = True
            if not changed:
                break

    @staticmethod
    def _tag_key(tag: UnitTag | None) -> tuple | None:
        return None if tag is None else (tag.dimension, tag.unit)

    def summary_for(self, func: FunctionInfo) -> FunctionSummary:
        """The (possibly empty) summary of a function.

        Synthesized functions (dataclass constructors) are not in the
        fixpoint table; they get a fresh suffix-only summary — their
        "return value" is an object, never a unit-carrying number.
        """
        summary = self.summaries.get(id(func.node))
        if summary is not None:
            return summary
        return FunctionSummary(
            func=func,
            param_units={
                p: tag
                for p in (*func.params, *func.kwonly)
                if (tag := unit_suffix(p)) is not None
            },
        )

    # --------------------------------------------------------- environments

    def build_env(self, func: FunctionInfo) -> UnitEnv:
        """Forward pass over ``func``'s body, binding assigned names."""
        env = UnitEnv(self.summary_for(func).param_units)
        module = self.index.modules[func.module]
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    env.set(target.id, self.infer(stmt.value, env, module,
                                                  func.class_name))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    env.set(stmt.target.id, self.infer(stmt.value, env, module,
                                                       func.class_name))
        return env

    def _infer_return(self, func: FunctionInfo) -> UnitTag | None:
        env = self.build_env(func)
        module = self.index.modules[func.module]
        returned: list[UnitTag | None] = []
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                returned.append(
                    self.infer(node.value, env, module, func.class_name)
                )
        if not returned:
            return None
        out = returned[0]
        for tag in returned[1:]:
            out = _join(out, tag)
        return out

    # ------------------------------------------------------------ inference

    def infer(
        self,
        node: ast.AST,
        env: UnitEnv,
        module: ModuleInfo,
        enclosing_class: str | None = None,
    ) -> UnitTag | None:
        """Tag of one expression, or None when not provable."""
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            return unit_suffix(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call(node, env, module, enclosing_class)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = self.infer(node.left, env, module, enclosing_class)
            right = self.infer(node.right, env, module, enclosing_class)
            if left is not None and right is not None:
                return _join(left, right)
            # x + 5.0 keeps x's unit; a unit-changing scale is R102's beat.
            if isinstance(node.right, ast.Constant):
                return left
            if isinstance(node.left, ast.Constant):
                return right
            return None
        if isinstance(node, ast.IfExp):
            return _join(
                self.infer(node.body, env, module, enclosing_class),
                self.infer(node.orelse, env, module, enclosing_class),
            )
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env, module, enclosing_class)
        return None

    def _infer_call(
        self,
        node: ast.Call,
        env: UnitEnv,
        module: ModuleInfo,
        enclosing_class: str | None,
    ) -> UnitTag | None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _TRANSPARENT_CALLS
            and node.args
        ):
            # Numeric literals are transparent, as in BinOp: the common
            # ``max(0.0, temp_c)`` clamp keeps the variable's unit.
            tags = [
                self.infer(a, env, module, enclosing_class)
                for a in node.args
                if not isinstance(a, ast.Constant)
            ]
            if not tags:
                return None
            out = tags[0]
            for tag in tags[1:]:
                out = _join(out, tag)
            return out
        callee = self.index.resolve_call(module, node, enclosing_class)
        if callee is not None:
            units = converter_units(callee)
            if units is not None:
                return units[1]
            return self.summary_for(callee).return_unit
        # Unresolvable call: fall back to the callee name's own suffix
        # (``sensor.read_millicelsius()`` is millicelsius by convention).
        func_name = None
        if isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        elif isinstance(node.func, ast.Name):
            func_name = node.func.id
        return unit_suffix(func_name)
