"""Incremental lint-result cache.

Per-file findings are a pure function of (source bytes, active rules),
so they are cached keyed by the file's sha256 and invalidated by edits
alone — a full-repo re-lint after touching one file re-checks one file.
Project-wide rules (R5–R8) see the whole program, so their findings are
keyed by the :meth:`ProjectContext.fingerprint` — any file or consulted
document changing re-runs them all.

The cache file is plain JSON.  A version bump, a different rule
selection, or rule-logic changes (tracked by :data:`CACHE_SALT`) drop
the whole cache rather than attempt migration; correctness never
depends on the cache, only speed does.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.finding import Finding

_CACHE_VERSION = 1

#: Bump when rule logic changes in a way sha-keyed entries cannot see.
CACHE_SALT = "r1-r8/1"


def default_cache_path() -> pathlib.Path:
    """Per-user default cache location (created on first save)."""
    return pathlib.Path.home() / ".cache" / "repro-lint" / "cache.json"


def rules_fingerprint(rule_ids: Iterable[str]) -> str:
    """Identity of one rule selection (plus the logic-version salt)."""
    digest = hashlib.sha256(CACHE_SALT.encode("ascii"))
    for rule_id in sorted(rule_ids):
        digest.update(rule_id.encode("ascii"))
    return digest.hexdigest()


def _finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def _finding_from_json(raw: dict) -> Finding:
    return Finding(
        rule=raw["rule"],
        path=raw["path"],
        line=int(raw["line"]),
        col=int(raw["col"]),
        message=raw["message"],
        snippet=raw.get("snippet", ""),
    )


@dataclass
class CacheStats:
    """Hit/miss counters surfaced on the lint report."""

    file_hits: int = 0
    file_misses: int = 0
    project_hit: bool = False


@dataclass
class LintCache:
    """One cache file bound to one rule selection."""

    path: pathlib.Path
    fingerprint: str
    files: dict = field(default_factory=dict)  # relpath -> {sha, findings}
    project: dict | None = None  # {key, findings}
    _dirty: bool = field(default=False, repr=False)

    @classmethod
    def open(
        cls, path: pathlib.Path | str, rule_ids: Iterable[str]
    ) -> "LintCache":
        """Load ``path`` if it matches this rule selection, else start empty."""
        path = pathlib.Path(path)
        fingerprint = rules_fingerprint(rule_ids)
        cache = cls(path=path, fingerprint=fingerprint)
        if not path.exists():
            return cache
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return cache  # unreadable cache == cold cache
        if (
            data.get("version") != _CACHE_VERSION
            or data.get("rules") != fingerprint
        ):
            return cache
        cache.files = data.get("files", {})
        cache.project = data.get("project")
        return cache

    # ------------------------------------------------------------ per-file

    def get_file(self, relpath: str, sha256: str) -> list[Finding] | None:
        entry = self.files.get(relpath)
        if entry is None or entry.get("sha") != sha256:
            return None
        return [_finding_from_json(raw) for raw in entry["findings"]]

    def put_file(
        self, relpath: str, sha256: str, findings: Sequence[Finding]
    ) -> None:
        self.files[relpath] = {
            "sha": sha256,
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True

    # ------------------------------------------------------- project-wide

    def get_project(self, key: str) -> list[Finding] | None:
        if self.project is None or self.project.get("key") != key:
            return None
        return [_finding_from_json(raw) for raw in self.project["findings"]]

    def put_project(self, key: str, findings: Sequence[Finding]) -> None:
        self.project = {
            "key": key,
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True

    # -------------------------------------------------------- persistence

    def save(self) -> None:
        """Write the cache back (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "rules": self.fingerprint,
            "files": {k: self.files[k] for k in sorted(self.files)},
            "project": self.project,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        self._dirty = False
