"""Live campaign watch: an in-terminal fleet dashboard.

:class:`WatchView` implements the :class:`CampaignObserver` hook the
campaign runner calls as runs finish.  On a TTY it redraws a small status
block in place (ANSI cursor-up); with ``tty=False`` (``--no-tty``, CI
logs, piped output) it appends one plain line per event and never emits
escape codes or wall-clock figures, so a single-job run's output is fully
deterministic.

The block shows per-wave progress, counts by status, straggler detection
(completed runs whose wall time exceeded the p90 of all completed runs —
only ever shown on a TTY, wall times are host-dependent) and, when an SLO
spec is attached, the rolling verdict re-evaluated after every run.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.obs.telemetry.aggregate import CampaignAggregator, quantile
from repro.obs.telemetry.slo import SloSpec


def aggregate_block(aggregate, slo=None, stragglers=False) -> list[str]:
    """The dashboard's body lines for one fleet aggregate.

    Shared by the live :class:`WatchView` and the one-shot
    ``repro campaign watch`` rendering of a stored campaign.
    """
    lines = [
        "  " + "  ".join(
            f"{status} {aggregate.scalar(f'runs_{status}'):.0f}"
            for status in ("cached", "completed", "failed", "pending")
        )
    ]
    if stragglers:
        for text in find_stragglers(aggregate):
            lines.append(f"  straggler: {text}")
    if slo is not None:
        report = slo.evaluate(aggregate)
        passed = sum(1 for o in report.outcomes if o.ok)
        line = f"  SLO {slo.name}: {passed}/{len(report.outcomes)} ok"
        if not report.ok:
            failing = ",".join(o.rule.name for o in report.breaches)
            line += f" [FAIL {failing}]"
        lines.append(line)
    return lines


def find_stragglers(aggregate) -> list[str]:
    """Completed runs whose wall time exceeded the fleet p90, rendered.

    Wall times are host-dependent, so callers only show these on a TTY.
    """
    walls = [
        (s.run_id, s.values["wall_s"])
        for s in aggregate.samples if "wall_s" in s.values
    ]
    if len(walls) < 2:
        return []
    p90 = quantile([w for _, w in walls], 0.90)
    return [
        f"{run_id} {wall:.2f}s (p90 {p90:.2f}s)"
        for run_id, wall in walls if wall > p90
    ]


class CampaignObserver:
    """No-op base class for campaign progress hooks.

    The runner calls these in order: :meth:`campaign_started` once,
    :meth:`wave_started` per fan-out, :meth:`run_finished` per resolved
    run (cached runs included), :meth:`campaign_finished` once.
    """

    def campaign_started(self, name: str, total: int, aggregator) -> None:
        """The campaign is about to execute ``total`` grid points."""

    def wave_started(self, index: int, size: int) -> None:
        """A fan-out of ``size`` pending runs is starting."""

    def run_finished(self, record) -> None:
        """One run resolved (its sample is already in the aggregator)."""

    def campaign_finished(self, report) -> None:
        """Every run resolved; ``report`` is the final CampaignReport."""


class WatchView(CampaignObserver):
    """Render campaign progress to a terminal (or a plain log stream)."""

    def __init__(
        self,
        out: TextIO | None = None,
        tty: bool | None = None,
        slo: SloSpec | None = None,
    ) -> None:
        self.out = out if out is not None else sys.stdout
        self.tty = self.out.isatty() if tty is None else tty
        self.slo = slo
        self._aggregator: CampaignAggregator | None = None
        self._name = ""
        self._total = 0
        self._done = 0
        self._wave = 0
        self._drawn_lines = 0

    # ------------------------------------------------------------ observer

    def campaign_started(self, name, total, aggregator) -> None:
        self._name = name
        self._total = total
        self._done = 0
        self._wave = 0
        self._aggregator = aggregator
        if not self.tty:
            self._line(f"watch: campaign {name}: {total} run(s)")

    def wave_started(self, index, size) -> None:
        self._wave = index
        if self.tty:
            self._redraw()
        else:
            self._line(f"watch: wave {index}: {size} run(s)")

    def run_finished(self, record) -> None:
        self._done += 1
        if self.tty:
            self._redraw()
        else:
            self._line(
                f"watch: {record.run_id} {record.status} "
                f"({self._done}/{self._total})"
            )

    def campaign_finished(self, report) -> None:
        if self.tty:
            self._redraw(final=True)
            self._drawn_lines = 0  # leave the last block on screen
        else:
            for line in self._block(final=True):
                self._line(f"watch: {line}")

    # ----------------------------------------------------------- rendering

    def render(self) -> str:
        """The current status block (what the TTY shows), as plain text."""
        return "\n".join(self._block(final=True))

    def _line(self, text: str) -> None:
        self.out.write(text + "\n")
        self.out.flush()

    def _redraw(self, final: bool = False) -> None:
        block = self._block(final=final)
        if self._drawn_lines:
            # Cursor up over the previous block, then clear to screen end.
            self.out.write(f"\x1b[{self._drawn_lines}F\x1b[0J")
        self.out.write("\n".join(block) + "\n")
        self.out.flush()
        self._drawn_lines = len(block)

    def _block(self, final: bool = False) -> list[str]:
        aggregate = (
            self._aggregator.aggregate(merge_telemetry=False)
            if self._aggregator is not None else None
        )
        header = f"campaign {self._name}: {self._done}/{self._total} resolved"
        if self._wave and not final:
            header += f" (wave {self._wave})"
        if final:
            header += " -- done"
        lines = [header]
        if aggregate is not None:
            lines += aggregate_block(
                aggregate, slo=self.slo, stragglers=self.tty
            )
        return lines
