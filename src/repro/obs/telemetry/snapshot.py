"""Snapshot merging: the algebra behind cross-process telemetry.

A snapshot (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) is the
canonical JSON dump of one registry.  Campaign workers ship one per run;
the parent folds them with :func:`merge_snapshots` into a single fleet
registry, exactly as if every simulation had emitted into one process:

* **counters** sum;
* **gauges** are last-write-wins on the snapshot's simulation-time stamp
  (``as_of_s``; later argument wins ties);
* **histograms** add per-bucket counts and sums — families must agree on
  bucket bounds.

The merge is associative and, for counters and histograms, commutative
(property-tested under hypothesis; exactly so up to float rounding of
the summed values, which is why the campaign runner always folds in grid
order rather than completion order).  :func:`snapshot_json` renders the
byte-stable canonical form used for the on-disk ``telemetry.json`` — two
campaigns that executed the same runs serialise identically whatever the
worker count or scheduling order.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from repro.errors import ConfigurationError
from repro.obs.metrics import SNAPSHOT_SCHEMA, MetricsRegistry


def snapshot_json(snapshot: Mapping) -> str:
    """Byte-stable canonical JSON of a snapshot (sorted keys, compact)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def _check_schema(snapshot: Mapping) -> None:
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ConfigurationError(
            f"unsupported snapshot schema {schema!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )


def _label_key(entry: Mapping) -> tuple[tuple[str, str], ...]:
    return tuple((str(k), str(v)) for k, v in entry["labels"])


def _as_of(entry: Mapping, default) -> float:
    """Gauge write stamp: the child's own, else the snapshot's, else -inf."""
    stamp = entry.get("as_of_s", default)
    return -math.inf if stamp is None else float(stamp)


def _merge_two(left: dict, right: Mapping) -> dict:
    """Fold ``right`` into ``left`` (left is mutated and returned)."""
    left_as_of = left.get("as_of_s")
    right_as_of = right.get("as_of_s")
    stamps = [s for s in (left_as_of, right_as_of) if s is not None]
    left["as_of_s"] = max(stamps) if stamps else None

    families = left["families"]
    for name, incoming in right["families"].items():
        mine = families.get(name)
        if mine is None:
            families[name] = {
                "kind": incoming["kind"],
                "help": incoming["help"],
                "buckets": None if incoming["buckets"] is None
                else list(incoming["buckets"]),
                "wall_clock": bool(incoming["wall_clock"]),
                "children": [_copy_child(incoming, c, right_as_of)
                             for c in incoming["children"]],
            }
            continue
        if mine["kind"] != incoming["kind"]:
            raise ConfigurationError(
                f"cannot merge {name!r}: {mine['kind']} vs {incoming['kind']}"
            )
        if mine["kind"] == "histogram" and mine["buckets"] != list(
            incoming["buckets"] or ()
        ):
            raise ConfigurationError(
                f"cannot merge histogram {name!r}: bucket bounds differ"
            )
        if incoming["help"] and not mine["help"]:
            mine["help"] = incoming["help"]
        mine["wall_clock"] = mine["wall_clock"] or bool(incoming["wall_clock"])
        children = {_label_key(c): c for c in mine["children"]}
        for entry in incoming["children"]:
            key = _label_key(entry)
            have = children.get(key)
            if have is None:
                children[key] = _copy_child(incoming, entry, right_as_of)
                continue
            if mine["kind"] == "counter":
                have["value"] += float(entry["value"])
            elif mine["kind"] == "gauge":
                # Last write wins on the sim-time stamp; the later
                # argument wins ties, so a left fold in grid order is
                # deterministic.
                if _as_of(entry, right_as_of) >= _as_of(have, None):
                    have["value"] = float(entry["value"])
                    have["as_of_s"] = entry.get("as_of_s", right_as_of)
            else:
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], entry["counts"])
                ]
                have["sum"] += float(entry["sum"])
        mine["children"] = [children[k] for k in sorted(children)]
    return left


def _copy_child(family: Mapping, entry: Mapping, snapshot_as_of) -> dict:
    out = {"labels": [list(kv) for kv in entry["labels"]]}
    if family["kind"] == "histogram":
        out["counts"] = list(entry["counts"])
        out["sum"] = float(entry["sum"])
    elif family["kind"] == "gauge":
        out["value"] = float(entry["value"])
        # Normalise: a merged gauge child always carries its own stamp.
        out["as_of_s"] = entry.get("as_of_s", snapshot_as_of)
    else:
        out["value"] = float(entry["value"])
    return out


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge registry snapshots into one (associative; see module doc).

    Accepts any number of snapshots (one yields a normalised copy, zero is
    an error).  The result is itself a valid snapshot: families sorted by
    name, children sorted by labels, counters summed, histogram buckets
    added, gauges resolved last-write-wins by ``as_of_s``.
    """
    if not snapshots:
        raise ConfigurationError("merge_snapshots needs at least one snapshot")
    for snapshot in snapshots:
        _check_schema(snapshot)
    first = snapshots[0]
    merged: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "as_of_s": None,
        "families": {},
    }
    _merge_two(merged, first)
    for snapshot in snapshots[1:]:
        _merge_two(merged, snapshot)
    merged["families"] = {
        name: merged["families"][name] for name in sorted(merged["families"])
    }
    return merged


def registry_from_snapshot(snapshot: Mapping) -> MetricsRegistry:
    """Rebuild a live :class:`MetricsRegistry` from a snapshot.

    The inverse of :meth:`MetricsRegistry.snapshot` (up to the gauge
    ``as_of_s`` stamps, which only exist on the wire): feeding the result
    to :func:`repro.obs.exporters.prometheus_text` renders the merged
    fleet exposition through the exact writer single runs use.
    """
    _check_schema(snapshot)
    registry = MetricsRegistry()
    for name, family in snapshot["families"].items():
        registry.declare(
            name, family["kind"], family["help"],
            buckets=family["buckets"],
            wall_clock=bool(family["wall_clock"]),
        )
        for entry in family["children"]:
            labels = {k: v for k, v in entry["labels"]}
            if family["kind"] == "counter":
                registry.counter(name, labels=labels).inc(float(entry["value"]))
            elif family["kind"] == "gauge":
                registry.gauge(name, labels=labels).set(float(entry["value"]))
            else:
                registry.histogram(name, labels=labels).restore(
                    entry["counts"], float(entry["sum"])
                )
    return registry
