"""Declarative SLO rules over campaign aggregates.

An :class:`SloSpec` is a named bundle of :class:`SloRule` predicates —
``p99(excess_c) <= 0.25``, ``min(min_fps) >= 28``,
``value(runs_crashed) == 0`` — evaluated against a
:class:`~repro.obs.telemetry.aggregate.CampaignAggregate`.  Specs
round-trip through JSON exactly like
:class:`~repro.faults.plan.FaultPlan`, so fleets can keep their
service-level objectives in version control next to their fault plans.

``repro obs check --slo <spec>`` evaluates a spec against a campaign's
``aggregate.json`` and exits non-zero on any breach, which is what the CI
``telemetry-smoke`` job and the chaos-hardening acceptance gates run.

Rule grammar
------------

``agg``
    One of ``p50``/``p90``/``p99`` (nearest-rank percentiles),
    ``min``/``max``/``mean``/``count`` over a per-run series, or
    ``value`` for a campaign scalar such as ``runs_crashed``.
``metric``
    A series from :data:`repro.obs.telemetry.aggregate.SERIES` (for the
    series aggregations) or a scalar from
    :data:`~repro.obs.telemetry.aggregate.SCALARS` (for ``value``).
``op`` / ``threshold``
    ``<=``, ``<``, ``>=``, ``>`` or ``==`` against a float.
``platform`` / ``policy`` / ``fault_plan``
    Optional scope: only runs matching every given axis value count.
``on_empty``
    What an empty scoped series means: ``"breach"`` (default — silence is
    suspicious) or ``"pass"`` (e.g. detection latency on a fault-free
    grid, where no detection is the healthy outcome).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigurationError
from repro.obs.telemetry.aggregate import (
    SCALARS,
    SERIES,
    CampaignAggregate,
    quantile,
)

SLO_SCHEMA = "repro.obs.slo/1"

AGGREGATIONS = ("p50", "p90", "p99", "min", "max", "mean", "count", "value")
OPERATORS = ("<=", "<", ">=", ">", "==")

_OP_FN = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
}


@dataclass(frozen=True)
class SloRule:
    """One predicate: ``agg(metric) op threshold`` within an axis scope."""

    name: str
    metric: str
    agg: str
    op: str
    threshold: float
    platform: str | None = None
    policy: str | None = None
    fault_plan: str | None = None
    on_empty: str = "breach"

    def __post_init__(self) -> None:
        if self.agg not in AGGREGATIONS:
            raise ConfigurationError(
                f"unknown aggregation {self.agg!r}; have {AGGREGATIONS}"
            )
        if self.op not in OPERATORS:
            raise ConfigurationError(
                f"unknown operator {self.op!r}; have {OPERATORS}"
            )
        if self.on_empty not in ("breach", "pass"):
            raise ConfigurationError(
                f"on_empty must be 'breach' or 'pass', got {self.on_empty!r}"
            )
        if self.agg == "value":
            if self.metric not in SCALARS:
                raise ConfigurationError(
                    f"value() needs a campaign scalar, got {self.metric!r}; "
                    f"have {SCALARS}"
                )
            if (self.platform, self.policy, self.fault_plan) != (None,) * 3:
                raise ConfigurationError(
                    f"rule {self.name!r}: campaign scalars cannot be scoped "
                    "by platform/policy/fault_plan"
                )
        elif self.metric not in SERIES:
            raise ConfigurationError(
                f"{self.agg}() needs a per-run series, got {self.metric!r}; "
                f"have {SERIES}"
            )

    def describe(self) -> str:
        """The predicate in grammar form, e.g. ``p99(excess_c) <= 0.25``."""
        scope = [
            f"{axis}={value}"
            for axis, value in (
                ("platform", self.platform),
                ("policy", self.policy),
                ("fault_plan", self.fault_plan),
            )
            if value is not None
        ]
        suffix = f" [{', '.join(scope)}]" if scope else ""
        return f"{self.agg}({self.metric}) {self.op} {self.threshold:g}{suffix}"

    def evaluate(self, aggregate: CampaignAggregate) -> "RuleOutcome":
        """Check this rule against one campaign aggregate."""
        if self.agg == "value":
            observed = aggregate.scalar(self.metric)
        else:
            values = aggregate.series(
                self.metric,
                platform=self.platform,
                policy=self.policy,
                fault_plan=self.fault_plan,
            )
            if self.agg == "count":
                observed = float(len(values))
            elif not values:
                ok = self.on_empty == "pass"
                return RuleOutcome(
                    rule=self, observed=None, ok=ok,
                    detail="no matching runs"
                    + ("" if ok else " (on_empty=breach)"),
                )
            elif self.agg == "min":
                observed = min(values)
            elif self.agg == "max":
                observed = max(values)
            elif self.agg == "mean":
                observed = sum(values) / len(values)
            else:
                observed = quantile(values, float(self.agg[1:]) / 100.0)
        ok = _OP_FN[self.op](observed, self.threshold)
        return RuleOutcome(
            rule=self, observed=observed, ok=ok,
            detail=f"observed {observed:g}",
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "metric": self.metric,
            "agg": self.agg,
            "op": self.op,
            "threshold": self.threshold,
            "platform": self.platform,
            "policy": self.policy,
            "fault_plan": self.fault_plan,
            "on_empty": self.on_empty,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloRule":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        known = {
            "name", "metric", "agg", "op", "threshold",
            "platform", "policy", "fault_plan", "on_empty",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SloRule field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        return cls(
            name=str(data["name"]),
            metric=str(data["metric"]),
            agg=str(data["agg"]),
            op=str(data["op"]),
            threshold=float(data["threshold"]),
            platform=data.get("platform"),
            policy=data.get("policy"),
            fault_plan=data.get("fault_plan"),
            on_empty=str(data.get("on_empty", "breach")),
        )


@dataclass(frozen=True)
class SloSpec:
    """A named bundle of SLO rules, JSON round-trippable."""

    name: str
    description: str = ""
    rules: tuple[SloRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.rules:
            raise ConfigurationError("an SLO spec needs at least one rule")
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"duplicate rule names in SLO spec {self.name!r}"
            )

    def evaluate(self, aggregate: CampaignAggregate) -> "SloReport":
        """Check every rule; the report is ok iff all rules pass."""
        return SloReport(
            spec=self,
            campaign=aggregate.name,
            outcomes=tuple(rule.evaluate(aggregate) for rule in self.rules),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "schema": SLO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloSpec":
        """Inverse of :meth:`to_dict`, rejecting unknown keys."""
        known = {"schema", "name", "description", "rules"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SloSpec field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        schema = data.get("schema", SLO_SCHEMA)
        if schema != SLO_SCHEMA:
            raise ConfigurationError(
                f"unsupported SLO schema {schema!r}; expected {SLO_SCHEMA!r}"
            )
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            rules=tuple(SloRule.from_dict(r) for r in data["rules"]),
        )


@dataclass(frozen=True)
class RuleOutcome:
    """One rule's verdict against one aggregate."""

    rule: SloRule
    observed: float | None
    ok: bool
    detail: str


@dataclass(frozen=True)
class SloReport:
    """Every rule's verdict for one campaign."""

    spec: SloSpec
    campaign: str
    outcomes: tuple[RuleOutcome, ...]

    @property
    def ok(self) -> bool:
        """True iff no rule breached."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def breaches(self) -> tuple[RuleOutcome, ...]:
        """The failing outcomes, in rule order."""
        return tuple(o for o in self.outcomes if not o.ok)

    def render_text(self) -> str:
        """One line per rule plus a PASS/BREACH verdict."""
        lines = [f"SLO {self.spec.name!r} vs campaign {self.campaign!r}:"]
        for outcome in self.outcomes:
            mark = "ok " if outcome.ok else "FAIL"
            lines.append(
                f"  [{mark}] {outcome.rule.name}: "
                f"{outcome.rule.describe()} -- {outcome.detail}"
            )
        verdict = "PASS" if self.ok else (
            f"BREACH ({len(self.breaches)} rule(s))"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for ``--format json``)."""
        return {
            "slo": self.spec.name,
            "campaign": self.campaign,
            "ok": self.ok,
            "rules": [
                {
                    "name": o.rule.name,
                    "predicate": o.rule.describe(),
                    "observed": o.observed,
                    "ok": o.ok,
                    "detail": o.detail,
                }
                for o in self.outcomes
            ],
        }


def _builtin_specs() -> dict[str, SloSpec]:
    chaos = SloSpec(
        name="chaos-hardening",
        description=(
            "The hardened governor keeps thermal excess bounded and the "
            "campaign loses no runs, even on fault-injected grids."
        ),
        rules=(
            SloRule(
                name="excess-bounded", metric="excess_c",
                agg="p99", op="<=", threshold=0.25,
            ),
            SloRule(
                name="detects-quickly", metric="detection_latency_s",
                agg="mean", op="<=", threshold=30.0, on_empty="pass",
            ),
            SloRule(
                name="no-crashes", metric="runs_crashed",
                agg="value", op="==", threshold=0.0,
            ),
            SloRule(
                name="no-failures", metric="runs_failed",
                agg="value", op="==", threshold=0.0,
            ),
        ),
    )
    fps = SloSpec(
        name="fps-protection",
        description=(
            "Interactive apps keep their frame rate: no run's worst app "
            "drops below 28 FPS and every run completes."
        ),
        rules=(
            SloRule(
                name="fps-floor", metric="min_fps",
                agg="min", op=">=", threshold=28.0,
            ),
            SloRule(
                name="no-failures", metric="runs_failed",
                agg="value", op="==", threshold=0.0,
            ),
        ),
    )
    return {chaos.name: chaos, fps.name: fps}


#: Built-in specs by name — what ``repro obs check --slo <name>`` resolves.
BUILTIN_SLOS = _builtin_specs()


def resolve_slo(ref) -> SloSpec:
    """Resolve a spec, built-in name, JSON file path, or plain dict."""
    if isinstance(ref, SloSpec):
        return ref
    if isinstance(ref, Mapping):
        return SloSpec.from_dict(ref)
    name = str(ref)
    if name in BUILTIN_SLOS:
        return BUILTIN_SLOS[name]
    path = Path(name)
    if path.suffix == ".json" or path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read SLO spec {name!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"SLO spec {name!r} is not valid JSON: {exc}"
            ) from exc
        return SloSpec.from_dict(payload)
    raise ConfigurationError(
        f"unknown SLO spec {name!r}; built-ins: {sorted(BUILTIN_SLOS)}"
    )
