"""Cross-process telemetry: snapshots, fleet aggregation, SLOs, watch.

Layered on :mod:`repro.obs` (PR 1) and the campaign runner (PR 3):
workers snapshot their registries
(:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), the parent merges
them (:func:`merge_snapshots`) and folds per-run outcomes into fleet
percentile series (:class:`CampaignAggregator`), which declarative SLO
specs (:class:`SloSpec`) gate and the watch dashboard
(:class:`WatchView`) renders live.
"""

from repro.obs.telemetry.aggregate import (
    AGGREGATE_SCHEMA,
    FLEET_FAMILIES,
    QUANTILES,
    SCALARS,
    SERIES,
    CampaignAggregate,
    CampaignAggregator,
    RunSample,
    quantile,
)
from repro.obs.telemetry.slo import (
    BUILTIN_SLOS,
    SLO_SCHEMA,
    RuleOutcome,
    SloReport,
    SloRule,
    SloSpec,
    resolve_slo,
)
from repro.obs.telemetry.snapshot import (
    merge_snapshots,
    registry_from_snapshot,
    snapshot_json,
)
from repro.obs.telemetry.watch import (
    CampaignObserver,
    WatchView,
    aggregate_block,
    find_stragglers,
)

__all__ = [
    "AGGREGATE_SCHEMA",
    "BUILTIN_SLOS",
    "FLEET_FAMILIES",
    "QUANTILES",
    "SCALARS",
    "SERIES",
    "SLO_SCHEMA",
    "CampaignAggregate",
    "CampaignAggregator",
    "CampaignObserver",
    "RuleOutcome",
    "RunSample",
    "SloReport",
    "SloRule",
    "SloSpec",
    "WatchView",
    "aggregate_block",
    "find_stragglers",
    "merge_snapshots",
    "quantile",
    "registry_from_snapshot",
    "resolve_slo",
    "snapshot_json",
]
