"""Campaign-level aggregation: per-run telemetry to fleet-level series.

A :class:`CampaignAggregator` ingests one entry per campaign run — its
status, wall time, :class:`~repro.sim.experiment.ScenarioResult` and
registry snapshot — and produces a :class:`CampaignAggregate`: the merged
fleet registry plus percentile summaries of the safety/performance series
the paper's case studies (and ROADMAP's fleet-advisor service) ask about,
keyed by the campaign axes (platform, policy, fault plan).

Per-run series
--------------

``excess_c``
    How far the run's peak temperature overshot its thermal limit
    (clamped at 0: staying under the limit is "no excess", per the
    safety-bound framing of the TECS 2017 companion paper).  The limit is
    the scenario's ``t_limit_c`` or the platform definition's default.
``min_fps``
    The worst app frame rate of the run (absent for batch-only mixes).
``failsafe_s``
    Simulated seconds the hardened governor spent in failsafe mode.
``detection_latency_s``
    Mean sim-time from fault activation to governor detection, from the
    run's ``repro_fault_detection_latency_seconds`` histogram (absent when
    no fault was detected).
``wall_s``
    Host wall-clock duration of the executed run (absent for cached runs).

Campaign scalars: run counts by status, ``runs_crashed`` and
``cache_hit_ratio``.  Summaries are nearest-rank percentiles (p50/p90/p99)
plus min/max/mean — deterministic, no interpolation.

The aggregate exports through the *existing* writers: :meth:`to_registry`
builds a ``repro_fleet_*`` gauge registry for
:func:`repro.obs.exporters.prometheus_text` /
:func:`~repro.obs.exporters.write_prometheus`, and :meth:`to_dict` is the
JSON persisted as ``campaigns/<name>/aggregate.json`` (what ``repro obs
check`` evaluates SLOs against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.snapshot import merge_snapshots

AGGREGATE_SCHEMA = "repro.obs.aggregate/1"

#: The reported quantiles, in display order.
QUANTILES = ("p50", "p90", "p99")

#: Per-run series names (see the module docstring).
SERIES = ("excess_c", "min_fps", "failsafe_s", "detection_latency_s", "wall_s")

#: Campaign-level scalars (evaluated with the ``value`` aggregation).
SCALARS = (
    "runs_total", "runs_cached", "runs_completed", "runs_failed",
    "runs_crashed", "runs_pending", "cache_hit_ratio",
)

#: Fleet metric family per series (all gauges, one child per quantile).
FLEET_SERIES_FAMILIES = {
    "excess_c": "repro_fleet_excess_celsius",
    "min_fps": "repro_fleet_min_fps",
    "failsafe_s": "repro_fleet_failsafe_seconds",
    "detection_latency_s": "repro_fleet_detection_latency_seconds",
    "wall_s": "repro_fleet_run_wall_seconds",
}

#: Every fleet family :meth:`CampaignAggregate.to_registry` can emit —
#: asserted against docs/OBSERVABILITY.md by the doc-sync test.
FLEET_FAMILIES = tuple(sorted(FLEET_SERIES_FAMILIES.values())) + (
    "repro_fleet_cache_hit_ratio",
    "repro_fleet_crashed_runs",
    "repro_fleet_runs",
)

_SERIES_HELP = {
    "excess_c": "Peak temperature overshoot past the run's thermal limit",
    "min_fps": "Worst per-app median FPS of one run",
    "failsafe_s": "Simulated seconds spent in governor failsafe mode",
    "detection_latency_s": "Mean fault-detection latency of one run",
    "wall_s": "Host wall-clock duration of one executed run",
}


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sequence (deterministic)."""
    if not values:
        raise ConfigurationError("quantile of an empty series")
    if not 0.0 < q <= 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _series_stats(values: Sequence[float]) -> dict:
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "p50": quantile(values, 0.50),
        "p90": quantile(values, 0.90),
        "p99": quantile(values, 0.99),
    }


def _default_limit_c(platform: str) -> float:
    # Deferred import: repro.soc pulls in the platform registry, which the
    # obs layer must not require at import time.
    from repro.soc import registry as platform_registry

    return platform_registry.get(platform).default_t_limit_c


@dataclass(frozen=True)
class RunSample:
    """One run's contribution to the fleet aggregate."""

    run_id: str
    status: str  # "cached" | "completed" | "failed" | "pending"
    platform: str
    policy: str
    fault_plan: str | None
    crashed: bool
    #: Present per-run series values (a subset of :data:`SERIES`).
    values: Mapping[str, float]

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "run_id": self.run_id,
            "status": self.status,
            "platform": self.platform,
            "policy": self.policy,
            "fault_plan": self.fault_plan,
            "crashed": self.crashed,
            "values": dict(self.values),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSample":
        """Inverse of :meth:`to_dict`."""
        fault_plan = data.get("fault_plan")
        return cls(
            run_id=str(data["run_id"]),
            status=str(data["status"]),
            platform=str(data["platform"]),
            policy=str(data["policy"]),
            fault_plan=None if fault_plan is None else str(fault_plan),
            crashed=bool(data.get("crashed", False)),
            values={str(k): float(v) for k, v in data["values"].items()},
        )


def _detection_latency_s(snapshot: Mapping | None) -> float | None:
    if not snapshot:
        return None
    family = snapshot["families"].get("repro_fault_detection_latency_seconds")
    if family is None:
        return None
    total = sum(sum(c["counts"]) for c in family["children"])
    if total == 0:
        return None
    return sum(float(c["sum"]) for c in family["children"]) / total


class CampaignAggregator:
    """Incrementally fold per-run telemetry into a campaign aggregate."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: dict[str, RunSample] = {}
        self._snapshots: dict[str, Mapping] = {}

    def ingest(
        self,
        run_id: str,
        scenario,
        status: str,
        elapsed_s: float | None = None,
        result=None,
        snapshot: Mapping | None = None,
        failure_kind: str | None = None,
    ) -> RunSample:
        """File one run's outcome; re-ingesting a run id overwrites it.

        ``scenario`` is anything with ``platform``, ``policy``,
        ``t_limit_c`` and ``faults`` attributes (a
        :class:`~repro.sim.experiment.Scenario`).
        """
        values: dict[str, float] = {}
        if elapsed_s is not None:
            values["wall_s"] = float(elapsed_s)
        if result is not None:
            limit_c = scenario.t_limit_c
            if limit_c is None:
                limit_c = _default_limit_c(scenario.platform)
            values["excess_c"] = max(0.0, result.peak_temp_c - limit_c)
            if result.fps:
                values["min_fps"] = min(result.fps.values())
            values["failsafe_s"] = result.failsafe_s
        latency = _detection_latency_s(snapshot)
        if latency is not None:
            values["detection_latency_s"] = latency
        faults = getattr(scenario, "faults", None)
        sample = RunSample(
            run_id=run_id,
            status=status,
            platform=scenario.platform,
            policy=scenario.policy,
            fault_plan=None if faults is None else faults.name,
            crashed=failure_kind == "crash",
            values=values,
        )
        self._samples[run_id] = sample
        if snapshot is not None:
            self._snapshots[run_id] = snapshot
        else:
            self._snapshots.pop(run_id, None)
        return sample

    def aggregate(self, merge_telemetry: bool = True) -> "CampaignAggregate":
        """The current fleet aggregate (samples in run-id order).

        Snapshots merge in run-id — i.e. grid — order, so the merged
        telemetry is byte-identical whatever order the workers finished in.
        ``merge_telemetry=False`` skips the merge (snapshot ``None``) — the
        cheap rolling view the watch dashboard re-evaluates per event.
        """
        order = sorted(self._samples)
        snapshots = [self._snapshots[r] for r in order if r in self._snapshots]
        return CampaignAggregate(
            name=self.name,
            samples=tuple(self._samples[r] for r in order),
            snapshot=merge_snapshots(*snapshots)
            if snapshots and merge_telemetry else None,
        )


@dataclass(frozen=True)
class CampaignAggregate:
    """Fleet-level view of one campaign: samples + merged telemetry."""

    name: str
    samples: tuple[RunSample, ...]
    #: Merged registry snapshot of every run that shipped one (or None).
    snapshot: dict | None

    # ------------------------------------------------------------- queries

    def scalar(self, name: str) -> float:
        """One campaign-level scalar (see :data:`SCALARS`)."""
        if name not in SCALARS:
            raise ConfigurationError(
                f"unknown scalar {name!r}; have {SCALARS}"
            )
        counts = {"cached": 0, "completed": 0, "failed": 0, "pending": 0}
        crashed = 0
        for sample in self.samples:
            counts[sample.status] = counts.get(sample.status, 0) + 1
            crashed += sample.crashed
        total = len(self.samples)
        if name == "runs_total":
            return float(total)
        if name == "runs_crashed":
            return float(crashed)
        if name == "cache_hit_ratio":
            return counts["cached"] / total if total else 0.0
        return float(counts[name.removeprefix("runs_")])

    def series(
        self,
        metric: str,
        platform: str | None = None,
        policy: str | None = None,
        fault_plan: str | None = None,
    ) -> list[float]:
        """Per-run values of one series, optionally scoped by axis values."""
        if metric not in SERIES:
            raise ConfigurationError(
                f"unknown series {metric!r}; have {SERIES}"
            )
        out = []
        for sample in self.samples:
            if platform is not None and sample.platform != platform:
                continue
            if policy is not None and sample.policy != policy:
                continue
            if fault_plan is not None and sample.fault_plan != fault_plan:
                continue
            if metric in sample.values:
                out.append(sample.values[metric])
        return out

    def groups(self) -> list[tuple[str, str, str | None]]:
        """Distinct (platform, policy, fault_plan) triples, sorted."""
        triples = {
            (s.platform, s.policy, s.fault_plan) for s in self.samples
        }
        return sorted(triples, key=lambda t: (t[0], t[1], t[2] or ""))

    def summary(self) -> dict:
        """Scalars plus per-series stats, overall and per axis group."""
        overall = {}
        for metric in SERIES:
            values = self.series(metric)
            if values:
                overall[metric] = _series_stats(values)
        group_rows = []
        for platform, policy, fault_plan in self.groups():
            row: dict = {
                "platform": platform,
                "policy": policy,
                "fault_plan": fault_plan,
                "series": {},
            }
            for metric in SERIES:
                values = self.series(metric, platform, policy, fault_plan)
                if values:
                    row["series"][metric] = _series_stats(values)
            group_rows.append(row)
        return {
            "scalars": {name: self.scalar(name) for name in SCALARS},
            "overall": overall,
            "groups": group_rows,
        }

    # ------------------------------------------------------------- exports

    def to_registry(self) -> MetricsRegistry:
        """Fleet gauges for the existing Prometheus/JSONL writers."""
        registry = MetricsRegistry()
        base = {"campaign": self.name}
        for status in ("cached", "completed", "failed", "pending"):
            registry.gauge(
                "repro_fleet_runs", "Campaign runs by status",
                labels={**base, "status": status},
            ).set(self.scalar(f"runs_{status}"))
        registry.gauge(
            "repro_fleet_crashed_runs",
            "Runs lost to a hard worker crash", labels=base,
        ).set(self.scalar("runs_crashed"))
        registry.gauge(
            "repro_fleet_cache_hit_ratio",
            "Fraction of runs served from the result store", labels=base,
        ).set(self.scalar("cache_hit_ratio"))
        summary = self.summary()
        for metric, family in FLEET_SERIES_FAMILIES.items():
            stats = summary["overall"].get(metric)
            if stats is not None:
                for q in QUANTILES:
                    registry.gauge(
                        family, _SERIES_HELP[metric],
                        labels={**base, "quantile": q},
                    ).set(stats[q])
        for row in summary["groups"]:
            axis_labels = {
                **base,
                "platform": row["platform"],
                "policy": row["policy"],
                "fault_plan": row["fault_plan"] or "none",
            }
            for metric, family in FLEET_SERIES_FAMILIES.items():
                stats = row["series"].get(metric)
                if stats is not None:
                    for q in QUANTILES:
                        registry.gauge(
                            family, _SERIES_HELP[metric],
                            labels={**axis_labels, "quantile": q},
                        ).set(stats[q])
        return registry

    def to_dict(self) -> dict:
        """JSON-serialisable form — ``campaigns/<name>/aggregate.json``."""
        return {
            "schema": AGGREGATE_SCHEMA,
            "name": self.name,
            "samples": [s.to_dict() for s in self.samples],
            "summary": self.summary(),
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignAggregate":
        """Inverse of :meth:`to_dict` (``summary`` is derived, ignored)."""
        schema = data.get("schema")
        if schema != AGGREGATE_SCHEMA:
            raise ConfigurationError(
                f"unsupported aggregate schema {schema!r}; "
                f"expected {AGGREGATE_SCHEMA!r}"
            )
        return cls(
            name=str(data["name"]),
            samples=tuple(
                RunSample.from_dict(s) for s in data["samples"]
            ),
            snapshot=data.get("snapshot"),
        )

    def render_text(self) -> str:
        """Human-readable fleet summary table."""
        from repro.analysis.tables import render_table

        summary = self.summary()
        rows = []
        for row in summary["groups"]:
            cells = [row["platform"], row["policy"], row["fault_plan"] or "-"]
            for metric in ("excess_c", "min_fps", "failsafe_s"):
                stats = row["series"].get(metric)
                cells.append("-" if stats is None else f"{stats['p90']:.2f}")
            rows.append(cells)
        table = render_table(
            ["platform", "policy", "faults", "p90 excess degC",
             "p90 min FPS", "p90 failsafe s"],
            rows, title=f"Fleet summary: {self.name}",
        )
        scalars = summary["scalars"]
        line = (
            f"{scalars['runs_total']:.0f} run(s), cache hit ratio "
            f"{scalars['cache_hit_ratio']:.2f}, "
            f"{scalars['runs_failed']:.0f} failed "
            f"({scalars['runs_crashed']:.0f} crashed)"
        )
        return f"{table}\n{line}"
