"""repro.obs — the unified observability layer.

Four concerns, one package:

* :mod:`repro.obs.metrics`   — counters / gauges / fixed-bucket histograms
  in a per-simulation :class:`MetricsRegistry` (no process-wide globals);
* :mod:`repro.obs.spans`     — bounded span tracing of discrete decisions
  with parent/child nesting and dual wall/sim timestamps;
* :mod:`repro.obs.profiler`  — per-phase wall-clock profiling of
  ``Simulation.step`` (enable with ``Simulation(profile=True)``);
* :mod:`repro.obs.exporters` / :mod:`repro.obs.manifest` — JSONL events,
  Prometheus text exposition, per-channel CSVs and the ``manifest.json``
  provenance record written alongside every export;
* :mod:`repro.obs.telemetry` — cross-process pipeline: registry snapshots
  merged across campaign workers, fleet percentile aggregation,
  declarative SLO specs and the live watch dashboard.

The metric-name catalogue and span taxonomy live in
``docs/OBSERVABILITY.md`` (and are asserted against the registry by the
test suite).
"""

from repro.obs.exporters import (
    export_run_set,
    export_simulation,
    prometheus_text,
    read_events_jsonl,
    write_channel_csvs,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.manifest import build_manifest, read_manifest, write_manifest
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    FRAME_TIME_BUCKETS_S,
    LATENCY_BUCKETS_S,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    STEP_PHASES,
    NullProfiler,
    PhaseStat,
    ProfileReport,
    StepProfiler,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "DURATION_BUCKETS_S",
    "FRAME_TIME_BUCKETS_S",
    "LATENCY_BUCKETS_S",
    "NULL_PROFILER",
    "STEP_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "PhaseStat",
    "ProfileReport",
    "SNAPSHOT_SCHEMA",
    "Span",
    "SpanTracer",
    "StepProfiler",
    "build_manifest",
    "export_run_set",
    "export_simulation",
    "prometheus_text",
    "read_events_jsonl",
    "read_manifest",
    "write_channel_csvs",
    "write_events_jsonl",
    "write_manifest",
    "write_prometheus",
]
