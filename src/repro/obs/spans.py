"""Lightweight span tracing for discrete decisions.

Where :class:`~repro.kernel.tracing.EventTracer` renders a flat ftrace-like
log, spans carry *structure*: parent/child nesting (a cooling-state change
caused by a governor evaluation is recorded as its child), a wall-clock
duration (how long the decision took to compute) and a simulation-clock
timestamp (when it happened in the modelled world).

The tracer is a bounded ring buffer like the kernel's: completed spans
beyond ``capacity`` drop oldest-first and are counted, never silently lost.

Span names form a small taxonomy (``governor.update``, ``sched.migrate``,
``thermal.cooling_state``, ``thermal.trip``, ``hotplug.transition``,
``app_governor.run`` — see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.units import seconds_to_microseconds


@dataclass
class Span:
    """One finished (or in-flight) span."""

    span_id: int
    name: str
    start_wall_s: float
    start_sim_s: float
    parent_id: int | None = None
    end_wall_s: float | None = None
    end_sim_s: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        """Wall-clock duration; None while the span is still open."""
        if self.end_wall_s is None:
            return None
        return self.end_wall_s - self.start_wall_s

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``events.jsonl`` record shape)."""
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "sim_time_s": self.start_sim_s,
            "sim_end_s": self.end_sim_s,
            "wall_duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def render(self) -> str:
        """One human-readable line (ftrace-flavoured)."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        dur = (
            f" ({seconds_to_microseconds(self.duration_s):.1f} us)"
            if self.duration_s is not None
            else ""
        )
        nest = f" <-{self.parent_id}" if self.parent_id is not None else ""
        body = f" {attrs}" if attrs else ""
        return f"[{self.start_sim_s:10.3f}] #{self.span_id}{nest} {self.name}{body}{dur}"


class _SpanHandle:
    """Context manager returned by :meth:`SpanTracer.span`."""

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attrs) -> "_SpanHandle":
        """Attach attributes to the span; chainable."""
        self.span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._finish(self.span)


class SpanTracer:
    """Bounded collector of :class:`Span` with automatic nesting."""

    def __init__(
        self,
        capacity: int = 8192,
        sim_time_fn: Callable[[], float] | None = None,
        wall_time_fn: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("span tracer capacity must be >= 1")
        self.capacity = capacity
        self._sim_time = sim_time_fn or (lambda: 0.0)
        self._wall_time = wall_time_fn
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_id = 1
        self._dropped = 0

    # ------------------------------------------------------------ emission

    def _new_span(self, name: str, attrs: dict) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            start_wall_s=self._wall_time(),
            start_sim_s=self._sim_time(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=attrs,
        )
        self._next_id += 1
        return span

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a span; use as a context manager.  Nested spans get parents."""
        span = self._new_span(name, attrs)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def instant(self, name: str, **attrs) -> Span:
        """A zero-duration span (a point decision, not a timed region)."""
        span = self._new_span(name, attrs)
        span.end_wall_s = span.start_wall_s
        span.end_sim_s = span.start_sim_s
        self._store(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_wall_s = self._wall_time()
        span.end_sim_s = self._sim_time()
        # Close abandoned children too (exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._store(span)

    def _store(self, span: Span) -> None:
        if len(self._finished) == self.capacity:
            self._dropped += 1
        self._finished.append(span)

    # ------------------------------------------------------------- queries

    @property
    def dropped(self) -> int:
        """Finished spans lost to the ring-buffer bound."""
        return self._dropped

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, oldest first, optionally filtered by exact name."""
        if name is None:
            return list(self._finished)
        return [s for s in self._finished if s.name == name]

    def by_prefix(self, prefix: str) -> list[Span]:
        """Finished spans whose name starts with ``prefix``."""
        return [s for s in self._finished if s.name.startswith(prefix)]

    def children_of(self, span_id: int) -> list[Span]:
        """Finished spans whose parent is ``span_id``."""
        return [s for s in self._finished if s.parent_id == span_id]

    def to_dicts(self) -> Iterator[dict]:
        """Every finished span as a JSON-serialisable dict, oldest first."""
        for span in self._finished:
            yield span.to_dict()

    def render(self, limit: int | None = None) -> str:
        """The buffer as one line per span (``limit``: only the newest N)."""
        finished = list(self._finished)
        if limit is not None:
            finished = finished[-limit:] if limit > 0 else []
        lines = [span.render() for span in finished]
        if self._dropped:
            lines.insert(0, f"# {self._dropped} spans dropped")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop all finished spans (open spans keep nesting)."""
        self._finished.clear()
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._finished)
