"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink every instrumented layer
(engine, kernel, thermal zones, governors, apps) emits into.  There is no
process-wide global: each :class:`~repro.sim.engine.Simulation` owns one
registry, so concurrent simulations never share state and tests stay
hermetic.

Metrics are organised Prometheus-style:

* a *family* is a named metric (``repro_migrations_total``) of one type;
* a family with labels has one *child* per label set
  (``repro_governor_updates_total{domain="a57"}``);
* :meth:`MetricsRegistry.collect` yields every sample for exposition
  (see :mod:`repro.obs.exporters`).

Names follow the Prometheus conventions: ``snake_case``, a unit suffix
(``_seconds``, ``_watts``, ``_celsius``) and ``_total`` for counters.  The
full catalogue lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import bisect
import math
import re
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Version tag of :meth:`MetricsRegistry.snapshot`'s wire format.
SNAPSHOT_SCHEMA = "repro.obs.snapshot/1"

#: Default latency buckets (seconds, wall-clock) for decision-sized work.
LATENCY_BUCKETS_S = (
    1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2,
)

#: Default frame-time buckets (seconds, simulated): 120/60/45/30/20/10 FPS.
FRAME_TIME_BUCKETS_S = (1 / 120, 1 / 60, 1 / 45, 1 / 30, 1 / 20, 0.1, 0.25)

#: Default throttle-episode duration buckets (seconds, simulated).
DURATION_BUCKETS_S = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Fault-detection latency buckets (seconds, simulated): how long an
#: injected fault goes unnoticed by the hardened governor.
DETECTION_LATENCY_BUCKETS_S = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0)


def _check_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    out = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
        out.append((key, str(labels[key])))
    return tuple(out)


class Counter:
    """Monotonically increasing count (events, frames, migrations)."""

    def __init__(self, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0.0:
            raise ConfigurationError("counters can only increase")
        self._value += amount

    def samples(self, name: str) -> Iterator[tuple[str, tuple, float]]:
        yield name, self.labels, self._value


class Gauge:
    """Last-written instantaneous value (temperature, power, occupancy)."""

    def __init__(self, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    def samples(self, name: str) -> Iterator[tuple[str, tuple, float]]:
        yield name, self.labels, self._value


class Histogram:
    """Fixed-bucket cumulative histogram (latencies, frame times, durations).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the rest,
    exactly like a Prometheus classic histogram.
    """

    def __init__(
        self,
        buckets: Sequence[float],
        labels: tuple[tuple[str, str], ...] = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigurationError("histogram buckets must be strictly increasing")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ConfigurationError("histogram buckets must be finite")
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sum += value

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative count at each upper bound (+Inf included)."""
        out = {}
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            out[bound] = running
        out[math.inf] = running + self._counts[-1]
        return out

    def raw_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts, +Inf slot last — the
        snapshot wire format (see :meth:`MetricsRegistry.snapshot`)."""
        return tuple(self._counts)

    def restore(self, counts: Sequence[int], total: float) -> None:
        """Overwrite state from snapshot data (inverse of :meth:`raw_counts`).

        ``counts`` must cover every bucket plus the +Inf slot; used by
        :func:`repro.obs.telemetry.registry_from_snapshot` to rebuild a
        registry from merged per-run snapshots.
        """
        if len(counts) != len(self.buckets) + 1:
            raise ConfigurationError(
                f"histogram restore needs {len(self.buckets) + 1} bucket "
                f"counts (+Inf included), got {len(counts)}"
            )
        if any(int(c) != c or c < 0 for c in counts):
            raise ConfigurationError(
                "histogram bucket counts must be non-negative integers"
            )
        self._counts = [int(c) for c in counts]
        self._sum = float(total)

    def samples(self, name: str) -> Iterator[tuple[str, tuple, float]]:
        for bound, cumulative in self.bucket_counts().items():
            le = "+Inf" if math.isinf(bound) else f"{bound:g}"
            yield f"{name}_bucket", self.labels + (("le", le),), float(cumulative)
        yield f"{name}_sum", self.labels, self._sum
        yield f"{name}_count", self.labels, float(self.count)


@dataclass
class _Family:
    """One named metric family: type, help text, children by label set."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    buckets: tuple[float, ...] | None
    children: dict[tuple, object]
    #: True for families observing host wall-clock time (profiling data).
    #: Wall-clock samples are not reproducible run-to-run, so snapshots
    #: meant for deterministic cross-process merging exclude them.
    wall_clock: bool = False


class MetricsRegistry:
    """Registry of metric families; the emit target of all instrumentation."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------ creation

    def _family(
        self, name: str, kind: str, help: str, buckets=None,
        wall_clock: bool = False,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets, {}, wall_clock)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if kind == "histogram" and buckets is not None and family.buckets != buckets:
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different buckets"
            )
        if help and not family.help:
            family.help = help
        if wall_clock:
            family.wall_clock = True
        return family

    def declare(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        wall_clock: bool = False,
    ) -> None:
        """Register a family without creating a child.

        Labelled families whose first event may never fire (hotplug, trips)
        still show up in :meth:`names` and the exposition headers, keeping
        the emitted catalogue identical run-to-run.
        """
        if kind not in ("counter", "gauge", "histogram"):
            raise ConfigurationError(f"unknown metric kind {kind!r}")
        bounds = tuple(float(b) for b in buckets) if buckets is not None else None
        if kind == "histogram" and bounds is None:
            bounds = tuple(float(b) for b in LATENCY_BUCKETS_S)
        self._family(name, kind, help, bounds, wall_clock)

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None,
        wall_clock: bool = False,
    ) -> Counter:
        """Get or create a counter child (family created on first call)."""
        family = self._family(name, "counter", help, wall_clock=wall_clock)
        key = _check_labels(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Counter(key)
        return child

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None,
        wall_clock: bool = False,
    ) -> Gauge:
        """Get or create a gauge child."""
        family = self._family(name, "gauge", help, wall_clock=wall_clock)
        key = _check_labels(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Gauge(key)
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        labels: Mapping[str, str] | None = None,
        wall_clock: bool = False,
    ) -> Histogram:
        """Get or create a histogram child (buckets fixed per family).

        ``buckets=None`` reuses the family's buckets (or the default latency
        buckets for a new family); passing different buckets for an existing
        family is an error.  ``wall_clock=True`` marks the family as host
        wall-clock data, excluded from deterministic snapshots.
        """
        if buckets is None:
            existing = self._families.get(name)
            bounds = (
                existing.buckets
                if existing is not None and existing.buckets is not None
                else tuple(float(b) for b in LATENCY_BUCKETS_S)
            )
        else:
            bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds, wall_clock)
        key = _check_labels(labels)
        child = family.children.get(key)
        if child is None:
            child = family.children[key] = Histogram(family.buckets, key)
        return child

    # ------------------------------------------------------------- queries

    def names(self) -> list[str]:
        """Sorted family names registered so far."""
        return sorted(self._families)

    def kind(self, name: str) -> str:
        """Type of a family ("counter", "gauge", "histogram")."""
        return self._families[name].kind

    def help(self, name: str) -> str:
        """Help text of a family."""
        return self._families[name].help

    def is_wall_clock(self, name: str) -> bool:
        """True if a family records host wall-clock (non-reproducible) data."""
        return self._families[name].wall_clock

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str, labels: Mapping[str, str] | None = None):
        """Existing child for (name, labels); raises if absent."""
        try:
            family = self._families[name]
            return family.children[_check_labels(labels)]
        except KeyError:
            raise ConfigurationError(
                f"no metric {name!r} with labels {dict(labels or {})}"
            ) from None

    def children(self, name: str) -> list:
        """All children of a family (one per label set)."""
        return list(self._families[name].children.values())

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        """Convenience: scalar value of a counter/gauge child."""
        child = self.get(name, labels)
        if isinstance(child, Histogram):
            raise ConfigurationError(f"metric {name!r} is a histogram; no scalar value")
        return child.value

    def collect(self) -> Iterator[tuple[_Family, str, tuple, float]]:
        """Yield ``(family, sample_name, labels, value)`` for every sample."""
        for name in self.names():
            family = self._families[name]
            for child in family.children.values():
                for sample_name, labels, value in child.samples(name):
                    yield family, sample_name, labels, value

    # ----------------------------------------------------------- snapshots

    def snapshot(
        self, as_of_s: float | None = None, include_wall_clock: bool = True
    ) -> dict:
        """Canonical JSON-serialisable dump of every family and child.

        The snapshot is the wire format of the campaign telemetry pipeline
        (:mod:`repro.obs.telemetry`): workers ship it back to the campaign
        parent, which folds the per-run snapshots with
        :func:`~repro.obs.telemetry.merge_snapshots`.  Children are listed
        in sorted label order, so equal registries snapshot to byte-equal
        canonical JSON.

        ``as_of_s`` stamps the snapshot with the simulation time it was
        taken at; gauges merge last-write-wins on that stamp.  Campaign
        snapshots pass ``include_wall_clock=False`` to drop host-timing
        families (marked ``wall_clock=True`` at registration), keeping the
        shipped payload deterministic at a fixed seed.
        """
        families: dict[str, dict] = {}
        for name in self.names():
            family = self._families[name]
            if not include_wall_clock and family.wall_clock:
                continue
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict = {"labels": [[k, v] for k, v in key]}
                if family.kind == "histogram":
                    entry["counts"] = list(child.raw_counts())
                    entry["sum"] = child.sum
                elif family.kind == "gauge":
                    entry["value"] = child.value
                    entry["as_of_s"] = as_of_s
                else:
                    entry["value"] = child.value
                children.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "buckets": None if family.buckets is None
                else list(family.buckets),
                "wall_clock": family.wall_clock,
                "children": children,
            }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "as_of_s": None if as_of_s is None else float(as_of_s),
            "families": families,
        }
