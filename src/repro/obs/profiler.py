"""Per-phase wall-clock profiling of the simulation hot loop.

``Simulation(profile=True)`` wraps every :meth:`Simulation.step` in a
:class:`StepProfiler`: the whole step is timed, and each phase of the step
(``apps``, ``kernel``, ``power_assemble``, ``thermal``, ``power_model``,
``record`` — plus ``thermal_exact`` and ``batch_sync`` in the batched
engine) accumulates its own wall-clock total.  The resulting :class:`ProfileReport` says where
the time goes — the measurement substrate any optimisation of the hot loop
must be benchmarked against.

Phases may be entered several times per step (the power-model phase brackets
the thermal integration); totals simply accumulate.  The profiler is
deliberately dependency-free and cheap: two ``perf_counter`` calls per
phase entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.units import seconds_to_microseconds, seconds_to_milliseconds

#: The canonical phases of one :meth:`Simulation.step`, in execution order.
#: ``power_assemble`` (activity construction + rail summation) and
#: ``power_model`` (sensor/energy/DAQ feeds) bracket the scalar power path;
#: ``thermal_exact`` and ``batch_sync`` are entered only by
#: :class:`repro.sim.batch.BatchSimulation`'s vectorized fast path.
STEP_PHASES = (
    "apps",
    "kernel",
    "power_assemble",
    "thermal",
    "thermal_exact",
    "power_model",
    "batch_sync",
    "record",
)


class _PhaseAccumulator:
    """Reusable context manager accumulating one phase's wall-clock.

    One accumulator exists per phase name; re-entering it re-arms the start
    stamp.  Zero allocation on the hot path — the engine brackets every
    phase of every tick with one of these.
    """

    __slots__ = ("name", "total_s", "calls", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.calls = 0
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseAccumulator":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.total_s += time.perf_counter() - self._t0
        self.calls += 1


class _StepAccumulator:
    """Reusable context manager timing whole steps."""

    __slots__ = ("total_s", "count", "_t0")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0
        self._t0 = 0.0

    def __enter__(self) -> "_StepAccumulator":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.total_s += time.perf_counter() - self._t0
        self.count += 1


class StepProfiler:
    """Accumulates wall-clock time per step phase."""

    def __init__(self) -> None:
        self._phases: dict[str, _PhaseAccumulator] = {}
        self._step = _StepAccumulator()

    @property
    def step_total_s(self) -> float:
        """Total wall-clock spent inside profiled steps."""
        return self._step.total_s

    @property
    def step_count(self) -> int:
        """Number of profiled steps."""
        return self._step.count

    def step(self) -> _StepAccumulator:
        """Time one whole step (the denominator of phase shares)."""
        return self._step

    def phase(self, name: str) -> _PhaseAccumulator:
        """Time one phase entry; totals accumulate across entries."""
        acc = self._phases.get(name)
        if acc is None:
            acc = self._phases[name] = _PhaseAccumulator(name)
        return acc

    def reset(self) -> None:
        """Zero all accumulators in place (cached handles stay valid)."""
        for acc in self._phases.values():
            acc.total_s = 0.0
            acc.calls = 0
        self._step.total_s = 0.0
        self._step.count = 0

    def report(self) -> "ProfileReport":
        """Aggregate what has been measured so far."""
        if self.step_count == 0:
            raise AnalysisError("profiler has not timed any steps yet")
        rows = []
        for acc in self._phases.values():
            rows.append(
                PhaseStat(
                    name=acc.name,
                    calls=acc.calls,
                    total_s=acc.total_s,
                    share=(
                        acc.total_s / self.step_total_s if self.step_total_s else 0.0
                    ),
                )
            )
        order = {name: i for i, name in enumerate(STEP_PHASES)}
        rows.sort(key=lambda r: (order.get(r.name, len(order)), r.name))
        return ProfileReport(
            step_count=self.step_count,
            step_total_s=self.step_total_s,
            phases=tuple(rows),
        )


class NullProfiler:
    """No-op stand-in used when profiling is disabled (shared handles)."""

    class _Null:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return None

    _HANDLE = _Null()

    def step(self):
        return self._HANDLE

    def phase(self, name: str):
        return self._HANDLE


NULL_PROFILER = NullProfiler()


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate timing of one phase."""

    name: str
    calls: int
    total_s: float
    share: float  # fraction of total step wall-clock

    @property
    def mean_us(self) -> float:
        """Mean wall-clock per phase entry, microseconds."""
        if not self.calls:
            return 0.0
        return seconds_to_microseconds(self.total_s / self.calls)


@dataclass(frozen=True)
class ProfileReport:
    """Where the step wall-clock went."""

    step_count: int
    step_total_s: float
    phases: tuple[PhaseStat, ...]

    @property
    def coverage(self) -> float:
        """Fraction of step wall-clock attributed to a phase (target >= 0.95)."""
        if self.step_total_s <= 0.0:
            return 0.0
        return sum(p.total_s for p in self.phases) / self.step_total_s

    @property
    def mean_step_us(self) -> float:
        """Mean wall-clock per step, microseconds."""
        return seconds_to_microseconds(self.step_total_s / self.step_count)

    def phase(self, name: str) -> PhaseStat:
        """Look up one phase by name."""
        for stat in self.phases:
            if stat.name == name:
                return stat
        raise AnalysisError(f"no profiled phase {name!r}")

    def render(self) -> str:
        """Text table of the per-phase breakdown."""
        lines = [
            f"Step profile: {self.step_count} steps, "
            f"{seconds_to_milliseconds(self.step_total_s):.1f} ms total, "
            f"{self.mean_step_us:.1f} us/step, "
            f"coverage {self.coverage * 100.0:.1f}%",
            f"  {'phase':<12s} {'calls':>8s} {'total ms':>10s} "
            f"{'mean us':>9s} {'share':>7s}",
        ]
        for p in self.phases:
            lines.append(
                f"  {p.name:<12s} {p.calls:>8d} "
                f"{seconds_to_milliseconds(p.total_s):>10.2f} "
                f"{p.mean_us:>9.1f} {p.share * 100.0:>6.1f}%"
            )
        return "\n".join(lines)
