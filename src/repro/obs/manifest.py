"""Run manifests: the provenance record written next to every export.

A result nobody can reproduce is a rumour.  Every export directory gets a
``manifest.json`` capturing what produced the artefacts: platform, seed,
kernel configuration, step size, simulated duration, attached apps and the
package version.  Re-running the manifested configuration regenerates the
same traces bit-for-bit (the simulator is deterministic per seed).
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import pathlib
import platform as _host_platform

MANIFEST_SCHEMA = "repro.run/1"


def _jsonable(value):
    """Best-effort conversion to JSON-serialisable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def build_manifest(sim, label: str | None = None, extra: dict | None = None) -> dict:
    """Describe one :class:`~repro.sim.engine.Simulation` for reproduction.

    ``sim`` may be mid-run or finished; ``duration_s`` records its current
    simulated time.  ``extra`` is merged in verbatim (e.g. the CLI command).
    """
    from repro import __version__

    kernel = sim.kernel
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "label": label,
        "repro_version": __version__,
        "python_version": _host_platform.python_version(),
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "platform": sim.platform.name,
        "seed": sim.seed,
        "dt_s": sim.clock.dt,
        "duration_s": sim.now_s,
        "ticks": sim.clock.tick,
        "apps": sorted(sim.apps),
        "kernel_config": _jsonable(kernel.config),
        "trace_channels": sim.traces.names(),
        "metric_families": sim.metrics.names(),
    }
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_manifest(manifest: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Write a manifest as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: str | pathlib.Path) -> dict:
    """Load a manifest back (round-trip of :func:`write_manifest`)."""
    return json.loads(pathlib.Path(path).read_text())
