"""Machine-readable export of a run's observability artefacts.

Three formats, one directory layout:

* ``metrics.prom``  — Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry` (scrape-file compatible);
* ``events.jsonl``  — one JSON object per line: every finished span of the
  :class:`~repro.obs.spans.SpanTracer` plus every kernel
  :class:`~repro.kernel.tracing.TraceEvent`, merged in sim-time order;
* ``traces/<channel>.csv`` — the raw samples of every
  :class:`~repro.sim.trace.TraceRecorder` channel (no resampling — the
  rectangular-grid CSV of :mod:`repro.analysis.export` still exists for
  plotting).

:func:`export_simulation` writes all of the above plus ``manifest.json``
for one simulation; :func:`export_run_set` does it for a family of runs
(one sub-directory per run, plus merged top-level artefacts where every
sample/record carries a ``run`` label).
"""

from __future__ import annotations

import csv
import json
import math
import pathlib
from typing import Iterable, Iterator, Mapping

from repro.errors import AnalysisError
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry

# ------------------------------------------------------------------ metrics


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # Prometheus HELP lines escape backslash and newline (but not quotes).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: tuple, extra: Mapping[str, str] | None) -> str:
    pairs = list(extra.items()) if extra else []
    pairs += [(k, v) for k, v in labels]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    registry: MetricsRegistry, extra_labels: Mapping[str, str] | None = None
) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_header: set[str] = set()
    for family, sample_name, labels, value in registry.collect():
        if family.name not in seen_header:
            seen_header.add(family.name)
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
        lines.append(
            f"{sample_name}{_render_labels(labels, extra_labels)} "
            f"{_format_value(value)}"
        )
    # Families registered but never given a child still get their headers:
    # the catalogue is visible even before the first event.
    for name in registry.names():
        if name not in seen_header:
            if registry.help(name):
                lines.append(f"# HELP {name} {_escape_help(registry.help(name))}")
            lines.append(f"# TYPE {name} {registry.kind(name)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry,
    path: str | pathlib.Path,
    extra_labels: Mapping[str, str] | None = None,
) -> pathlib.Path:
    """Write one registry's exposition to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry, extra_labels))
    return path


# ------------------------------------------------------------------- events


def iter_event_dicts(
    spans=None, tracer=None, run: str | None = None
) -> Iterator[dict]:
    """Spans + kernel trace events as dicts, merged by simulation time."""
    records: list[dict] = []
    if spans is not None:
        records.extend(spans.to_dicts())
    if tracer is not None:
        for event in tracer.events():
            records.append(
                {
                    "kind": "event",
                    "name": f"{event.source}.{event.event}",
                    "sim_time_s": event.time_s,
                    "source": event.source,
                    "event": event.event,
                    "detail": event.detail,
                }
            )
    records.sort(key=lambda r: r["sim_time_s"])
    for record in records:
        if run is not None:
            record["run"] = run
        yield record


def write_events_jsonl(
    path: str | pathlib.Path,
    spans=None,
    tracer=None,
    run: str | None = None,
) -> pathlib.Path:
    """Write merged span/event records as JSON lines."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in iter_event_dicts(spans, tracer, run):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_events_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Parse an ``events.jsonl`` back into dicts (round-trip of the writer)."""
    out = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -------------------------------------------------------------------- CSVs


def _channel_filename(name: str) -> str:
    return name.replace("/", "_").replace("\\", "_") + ".csv"


def write_channel_csvs(
    traces, directory: str | pathlib.Path, channels: Iterable[str] | None = None
) -> list[pathlib.Path]:
    """One raw ``(time_s, value)`` CSV per trace channel; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = list(channels) if channels is not None else traces.names()
    paths = []
    for name in names:
        channel = traces.channel(name)
        path = directory / _channel_filename(name)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", name])
            for t, v in zip(channel.times, channel.values):
                writer.writerow([f"{t:.6g}", f"{v:.6g}"])
        paths.append(path)
    return paths


# ---------------------------------------------------------------- run dumps


def export_simulation(
    sim,
    export_dir: str | pathlib.Path,
    label: str | None = None,
    extra: dict | None = None,
) -> dict:
    """Dump one simulation's full observability bundle into ``export_dir``.

    Writes ``manifest.json``, ``metrics.prom``, ``events.jsonl`` and
    ``traces/<channel>.csv``; returns ``{artefact: path(s)}``.
    """
    export_dir = pathlib.Path(export_dir)
    export_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(sim, label=label, extra=extra)
    return {
        "manifest": write_manifest(manifest, export_dir / "manifest.json"),
        "metrics": write_prometheus(sim.metrics, export_dir / "metrics.prom"),
        "events": write_events_jsonl(
            export_dir / "events.jsonl",
            spans=sim.spans,
            tracer=sim.kernel.tracer,
        ),
        "traces": write_channel_csvs(sim.traces, export_dir / "traces"),
    }


def export_run_set(
    sims: Mapping[str, object],
    export_dir: str | pathlib.Path,
    command: str | None = None,
    seed: int | None = None,
) -> dict:
    """Dump a family of labelled runs (one CLI invocation's worth).

    Layout: per-run bundles under ``<export_dir>/<label>/`` plus merged
    top-level ``manifest.json`` / ``metrics.prom`` / ``events.jsonl`` in
    which every sample and record carries a ``run`` label.
    """
    if not sims:
        raise AnalysisError("no runs to export")
    export_dir = pathlib.Path(export_dir)
    export_dir.mkdir(parents=True, exist_ok=True)

    run_manifests = {}
    prom_parts = []
    merged_events = export_dir / "events.jsonl"
    with merged_events.open("w") as handle:
        for raw_label, sim in sims.items():
            label = raw_label.replace("/", "_")
            export_simulation(sim, export_dir / label, label=label)
            run_manifests[label] = build_manifest(sim, label=label)
            prom_parts.append(
                prometheus_text(sim.metrics, extra_labels={"run": label})
            )
            for record in iter_event_dicts(
                spans=sim.spans, tracer=sim.kernel.tracer, run=label
            ):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    merged_manifest = {
        "schema": MANIFEST_SCHEMA + "+set",
        "command": command,
        "seed": seed,
        "runs": run_manifests,
    }
    write_manifest(merged_manifest, export_dir / "manifest.json")
    (export_dir / "metrics.prom").write_text("".join(prom_parts))
    return {
        "manifest": export_dir / "manifest.json",
        "metrics": export_dir / "metrics.prom",
        "events": merged_events,
        "runs": {label: export_dir / label for label in run_manifests},
    }
