"""Operating performance points (OPPs) and OPP tables.

An OPP pairs a clock frequency with the supply voltage required to run at
that frequency.  DVFS actors (cpufreq governors, cooling devices, the power
model) all work in terms of an :class:`OppTable` — an immutable, ascending
list of OPPs mirroring the ``opp-table`` device-tree nodes of a real SoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.units import hz_to_khz, hz_to_mhz, mhz


@dataclass(frozen=True)
class OperatingPoint:
    """A single frequency/voltage pair."""

    freq_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0.0:
            raise ConfigurationError(f"OPP frequency must be positive: {self.freq_hz}")
        if self.voltage_v <= 0.0:
            raise ConfigurationError(f"OPP voltage must be positive: {self.voltage_v}")


class OppTable:
    """Immutable ascending table of :class:`OperatingPoint` entries.

    Frequencies must be strictly increasing and voltages non-decreasing —
    running faster never takes less voltage on real silicon, and several
    governor algorithms (notably IPA's power tables) rely on this
    monotonicity.
    """

    def __init__(self, points: Iterable[OperatingPoint]) -> None:
        pts = tuple(points)
        if len(pts) < 2:
            raise ConfigurationError("an OPP table needs at least two points")
        for prev, cur in zip(pts, pts[1:]):
            if cur.freq_hz <= prev.freq_hz:
                raise ConfigurationError(
                    f"OPP frequencies must be strictly increasing: "
                    f"{cur.freq_hz} after {prev.freq_hz}"
                )
            if cur.voltage_v < prev.voltage_v:
                raise ConfigurationError(
                    f"OPP voltages must be non-decreasing: "
                    f"{cur.voltage_v} after {prev.voltage_v}"
                )
        self._points = pts

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "OppTable":
        """Build a table from ``(freq_hz, voltage_v)`` tuples."""
        return cls(OperatingPoint(f, v) for f, v in pairs)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OppTable):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    @property
    def min_freq_hz(self) -> float:
        """Lowest supported frequency."""
        return self._points[0].freq_hz

    @property
    def max_freq_hz(self) -> float:
        """Highest supported frequency."""
        return self._points[-1].freq_hz

    def frequencies_hz(self) -> tuple[float, ...]:
        """All frequencies, ascending."""
        return tuple(p.freq_hz for p in self._points)

    def frequencies_khz(self) -> tuple[int, ...]:
        """All frequencies in kilohertz (the cpufreq sysfs unit), ascending."""
        return tuple(hz_to_khz(p.freq_hz) for p in self._points)

    def index_of(self, freq_hz: float) -> int:
        """Index of the exact frequency ``freq_hz``; raises if absent."""
        for i, p in enumerate(self._points):
            if abs(p.freq_hz - freq_hz) <= 0.5:
                return i
        raise ConfigurationError(f"{freq_hz} Hz is not an OPP of this table")

    def voltage_for(self, freq_hz: float) -> float:
        """Supply voltage of the exact OPP at ``freq_hz``."""
        return self._points[self.index_of(freq_hz)].voltage_v

    def floor(self, freq_hz: float) -> OperatingPoint:
        """Highest OPP whose frequency does not exceed ``freq_hz``.

        Clamps to the lowest OPP when ``freq_hz`` is below the table.
        """
        chosen = self._points[0]
        for p in self._points:
            if p.freq_hz <= freq_hz + 0.5:
                chosen = p
            else:
                break
        return chosen

    def ceil(self, freq_hz: float) -> OperatingPoint:
        """Lowest OPP whose frequency is at least ``freq_hz``.

        Clamps to the highest OPP when ``freq_hz`` is above the table.
        Frequency governors use this to pick the slowest speed that still
        meets a demand.
        """
        for p in self._points:
            if p.freq_hz + 0.5 >= freq_hz:
                return p
        return self._points[-1]

    def clamp(self, freq_hz: float) -> float:
        """Clamp an arbitrary frequency into the table's range."""
        return min(max(freq_hz, self.min_freq_hz), self.max_freq_hz)

    def capped(self, max_freq_hz: float) -> tuple[OperatingPoint, ...]:
        """All OPPs at or below ``max_freq_hz`` (at least the lowest one)."""
        allowed = tuple(p for p in self._points if p.freq_hz <= max_freq_hz + 0.5)
        return allowed if allowed else (self._points[0],)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points = ", ".join(f"{hz_to_mhz(p.freq_hz):.0f}" for p in self._points)
        return f"OppTable([{points}] MHz)"


def voltage_ladder(
    freqs_mhz: Sequence[int], v_min: float, v_max: float
) -> OppTable:
    """Linear voltage/frequency ladder between the table's endpoints.

    Real OPP tables pair each frequency with a calibrated supply voltage;
    when only the endpoints are known, a linear interpolation between
    ``v_min`` (at the lowest frequency) and ``v_max`` (at the highest) is
    the standard approximation.  Voltages are rounded to 0.1 mV, matching
    the granularity of device-tree OPP entries.
    """
    freqs = tuple(freqs_mhz)
    if len(freqs) < 2:
        raise ConfigurationError("a voltage ladder needs at least two frequencies")
    lo, hi = freqs[0], freqs[-1]
    if hi <= lo:
        raise ConfigurationError(
            f"voltage ladder frequencies must ascend: {lo}..{hi} MHz"
        )
    if v_max < v_min:
        raise ConfigurationError(
            f"voltage ladder needs v_min <= v_max, got {v_min}..{v_max} V"
        )
    pairs = []
    for f in freqs:
        volt = v_min + (v_max - v_min) * (f - lo) / (hi - lo)
        pairs.append((mhz(f), round(volt, 4)))
    return OppTable.from_pairs(pairs)
