"""Per-component power models: dynamic CV^2 f plus temperature-driven leakage.

Power is the coupling variable of the whole reproduction: the kernel decides
frequencies, the scheduler decides utilisations, this module turns both plus
the current temperatures into per-rail watts, and the thermal model turns
watts back into temperatures.  The leakage term is what creates the
positive feedback loop the paper's stability analysis (Section IV.A) studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec

#: Weights of the CPU/GPU → DRAM activity proxy.  One definition: the
#: engine applies it per tick and the calibration pipeline inverts it from
#: logged busy channels, so the constants must never drift apart.
MEM_ACTIVITY_CPU_WEIGHT = 0.25
MEM_ACTIVITY_GPU_WEIGHT = 0.6


def memory_activity_proxy(busy_cores, total_cores: int, gpu_busy):
    """DRAM activity in [0, 1] from CPU busy-cores and GPU busy fraction.

    ``act = min(1, 0.25 * busy_cores / total_cores + 0.6 * gpu_busy)`` — a
    modelling assumption standing in for DRAM event counters.  Accepts
    scalars (the engine's per-tick path) or numpy arrays (the calibration
    fit over whole trace channels).
    """
    act = (
        MEM_ACTIVITY_CPU_WEIGHT * busy_cores / max(total_cores, 1)
        + MEM_ACTIVITY_GPU_WEIGHT * gpu_busy
    )
    if isinstance(act, np.ndarray):
        return np.minimum(1.0, act)
    return min(1.0, act)


def dynamic_power_w(
    ceff_w_per_v2hz: float, voltage_v: float, freq_hz: float, busy_units: float
) -> float:
    """Dynamic switching power: ``Ceff * V^2 * f`` scaled by busy units.

    ``busy_units`` is the number of fully-busy execution units (e.g. 2.5
    means two cores busy plus one half busy).
    """
    if busy_units < 0.0:
        raise SimulationError(f"negative busy_units: {busy_units}")
    return ceff_w_per_v2hz * voltage_v * voltage_v * freq_hz * busy_units


def leakage_power_w(params: LeakageParams, temp_k: float, voltage_v: float) -> float:
    """Temperature-dependent leakage: ``kappa * T^2 * exp(-beta/T) * V/Vref``."""
    if temp_k <= 0.0:
        raise SimulationError(f"non-physical temperature {temp_k} K")
    import math

    return (
        params.kappa_w_per_k2
        * temp_k
        * temp_k
        * math.exp(-params.beta_k / temp_k)
        * (voltage_v / params.v_ref)
    )


@dataclass(frozen=True)
class PowerSample:
    """Decomposed power of one rail at one instant."""

    dynamic_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        """Dynamic plus leakage power."""
        return self.dynamic_w + self.leakage_w


@dataclass
class ComponentActivity:
    """Runtime operating condition of one component for a power query.

    ``idle_scale`` multiplies the component's idle power: 1.0 for a shallow
    WFI idle, lower when cpuidle has gated the component deeper.
    """

    freq_hz: float
    busy_units: float
    temp_k: float
    powered: bool = True
    idle_scale: float = 1.0


class SocPowerModel:
    """Computes per-rail power for a set of component activities.

    Built from the component specs of a platform; stateless apart from those
    specs, so one instance can serve many simulations.
    """

    def __init__(
        self,
        clusters: Mapping[str, ClusterSpec],
        gpu: GpuSpec,
        memory: MemorySpec,
    ) -> None:
        if not clusters:
            raise ConfigurationError("a SoC needs at least one CPU cluster")
        self._clusters = dict(clusters)
        self._gpu = gpu
        self._memory = memory

    def cluster_power(self, name: str, activity: ComponentActivity) -> PowerSample:
        """Power of CPU cluster ``name`` under ``activity``."""
        spec = self._clusters.get(name)
        if spec is None:
            raise SimulationError(f"unknown cluster {name!r}")
        if not activity.powered:
            return PowerSample(0.0, 0.0)
        if activity.busy_units > spec.n_cores + 1e-9:
            raise SimulationError(
                f"cluster {name!r}: busy_units {activity.busy_units} exceeds "
                f"{spec.n_cores} cores"
            )
        voltage = spec.opps.voltage_for(activity.freq_hz)
        dyn = spec.idle_power_w * activity.idle_scale + dynamic_power_w(
            spec.ceff_w_per_v2hz, voltage, activity.freq_hz, activity.busy_units
        )
        leak = leakage_power_w(spec.leakage, activity.temp_k, voltage)
        if activity.busy_units < 1e-6:
            # A fully idle cluster in a deep cpuidle state is power-gated:
            # the gating removes leakage along with the clock tree.
            leak *= activity.idle_scale
        return PowerSample(dyn, leak)

    def gpu_power(self, activity: ComponentActivity) -> PowerSample:
        """Power of the GPU under ``activity`` (busy_units in [0, 1])."""
        if not activity.powered:
            return PowerSample(0.0, 0.0)
        if activity.busy_units > 1.0 + 1e-9:
            raise SimulationError(
                f"gpu busy_units must be <= 1, got {activity.busy_units}"
            )
        spec = self._gpu
        voltage = spec.opps.voltage_for(activity.freq_hz)
        dyn = spec.idle_power_w * activity.idle_scale + dynamic_power_w(
            spec.ceff_w_per_v2hz, voltage, activity.freq_hz, activity.busy_units
        )
        leak = leakage_power_w(spec.leakage, activity.temp_k, voltage)
        if activity.busy_units < 1e-6:
            leak *= activity.idle_scale
        return PowerSample(dyn, leak)

    def memory_power(self, activity_fraction: float, temp_k: float) -> PowerSample:
        """Memory power at the given activity fraction in [0, 1]."""
        if not 0.0 <= activity_fraction <= 1.0 + 1e-9:
            raise SimulationError(
                f"memory activity must be in [0, 1], got {activity_fraction}"
            )
        spec = self._memory
        dyn = spec.base_power_w + spec.activity_power_w * min(activity_fraction, 1.0)
        leak = leakage_power_w(spec.leakage, temp_k, spec.leakage.v_ref)
        return PowerSample(dyn, leak)

    def rail_powers(
        self,
        cluster_activity: Mapping[str, ComponentActivity],
        gpu_activity: ComponentActivity,
        memory_activity: float,
        memory_temp_k: float,
    ) -> dict[str, PowerSample]:
        """Power of every rail, keyed by rail name."""
        out: dict[str, PowerSample] = {}
        for name, spec in self._clusters.items():
            activity = cluster_activity.get(name)
            if activity is None:
                raise SimulationError(f"missing activity for cluster {name!r}")
            out[spec.rail] = self.cluster_power(name, activity)
        out[self._gpu.rail] = self.gpu_power(gpu_activity)
        out[self._memory.rail] = self.memory_power(memory_activity, memory_temp_k)
        return out

    def max_cluster_power_w(self, name: str, freq_hz: float, temp_k: float) -> float:
        """Worst-case (all cores busy) cluster power at an OPP — used by IPA."""
        spec = self._clusters.get(name)
        if spec is None:
            raise SimulationError(f"unknown cluster {name!r}")
        activity = ComponentActivity(freq_hz, float(spec.n_cores), temp_k)
        return self.cluster_power(name, activity).total_w

    def max_gpu_power_w(self, freq_hz: float, temp_k: float) -> float:
        """Worst-case GPU power at an OPP — used by IPA."""
        return self.gpu_power(ComponentActivity(freq_hz, 1.0, temp_k)).total_w
