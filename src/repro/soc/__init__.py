"""SoC models: OPP tables, components, power model, platform definitions.

Concrete devices are declarative :class:`~repro.soc.defs.PlatformDef` data
registered with the default :data:`~repro.soc.registry.REGISTRY`; see
docs/PLATFORMS.md for the schema and how to add a device.
"""

from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.defs import PlatformDef
from repro.soc.exynos5422 import ODROID_XU3, ODROID_XU3_FAN, odroid_xu3
from repro.soc.opp import OperatingPoint, OppTable, voltage_ladder
from repro.soc.platform import BOARD_RAIL, PlatformSpec
from repro.soc.power_model import (
    ComponentActivity,
    PowerSample,
    SocPowerModel,
    dynamic_power_w,
    leakage_power_w,
)
from repro.soc.registry import (
    REGISTRY,
    PlatformRegistry,
    build as build_platform,
    get as get_platform,
    is_registered,
    platform_names,
    register as register_platform,
    unregister as unregister_platform,
)
from repro.soc.snapdragon810 import NEXUS6P, nexus6p
from repro.soc.snapdragon821 import PIXEL_XL, pixel_xl

__all__ = [
    "BOARD_RAIL",
    "NEXUS6P",
    "ODROID_XU3",
    "ODROID_XU3_FAN",
    "PIXEL_XL",
    "REGISTRY",
    "ClusterSpec",
    "ComponentActivity",
    "GpuSpec",
    "LeakageParams",
    "MemorySpec",
    "OperatingPoint",
    "OppTable",
    "PlatformDef",
    "PlatformRegistry",
    "PlatformSpec",
    "PowerSample",
    "SocPowerModel",
    "build_platform",
    "dynamic_power_w",
    "get_platform",
    "is_registered",
    "leakage_power_w",
    "nexus6p",
    "odroid_xu3",
    "pixel_xl",
    "platform_names",
    "register_platform",
    "unregister_platform",
    "voltage_ladder",
]
