"""SoC models: OPP tables, components, power model, concrete platforms."""

from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.opp import OperatingPoint, OppTable
from repro.soc.platform import BOARD_RAIL, PlatformSpec
from repro.soc.power_model import (
    ComponentActivity,
    PowerSample,
    SocPowerModel,
    dynamic_power_w,
    leakage_power_w,
)
from repro.soc.snapdragon810 import nexus6p

__all__ = [
    "BOARD_RAIL",
    "ClusterSpec",
    "ComponentActivity",
    "GpuSpec",
    "LeakageParams",
    "MemorySpec",
    "OperatingPoint",
    "OppTable",
    "PlatformSpec",
    "PowerSample",
    "SocPowerModel",
    "dynamic_power_w",
    "leakage_power_w",
    "nexus6p",
    "odroid_xu3",
]
