"""Pixel XL platform definition: Qualcomm Snapdragon 821 in a phone chassis.

The third modelled device, and the registry's proof point: everything below
is declarative data — no simulation, campaign, lint or CLI code knows this
platform exists, yet it runs end-to-end through all of them because they
resolve platforms through :mod:`repro.soc.registry`.

The Snapdragon 821 (14 nm FinFET) pairs two Kryo performance cores with two
power-optimised Kryo cores and an Adreno 530 (whose shipped frequency ladder
tops out at 624 MHz, as below).  The 14 nm process runs far less leaky than
the Nexus 6P's 20 nm Snapdragon 810, so the chassis constants dominate: the
phone throttles on skin-driven package trips in the low 40s rather than on
runaway silicon leakage.
"""

from __future__ import annotations

from repro.soc.defs import PlatformDef
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY

LEAKAGE_BETA_K = 1750.0

#: Registry name of the device (import this instead of quoting the string).
PIXEL_XL = "pixel-xl"

KRYO_GOLD_FREQS_MHZ = (
    307, 460, 614, 768, 902, 1056, 1209, 1363, 1516, 1670, 1824, 1977, 2150,
)
KRYO_SILVER_FREQS_MHZ = (307, 480, 652, 825, 998, 1171, 1344, 1593)
ADRENO530_FREQS_MHZ = (133, 214, 315, 401, 510, 560, 624)

PIXEL_XL_DEF = REGISTRY.register(PlatformDef(
    name=PIXEL_XL,
    clusters=(
        {
            "name": "kryo-silver",
            "core_type": "Kryo-LP",
            "n_cores": 2,
            "opps": {"freqs_mhz": list(KRYO_SILVER_FREQS_MHZ),
                     "v_min": 0.70, "v_max": 1.05},
            "ceff_w_per_v2hz": 1.5e-10,
            "leakage": {"kappa_w_per_k2": 1.2e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.03,
            "thermal_node": "soc",
            "rail": "kryo-silver",
            "is_little": True,
            "ipc": 1.3,
        },
        {
            "name": "kryo-gold",
            "core_type": "Kryo-HP",
            "n_cores": 2,
            "opps": {"freqs_mhz": list(KRYO_GOLD_FREQS_MHZ),
                     "v_min": 0.75, "v_max": 1.20},
            "ceff_w_per_v2hz": 4.2e-10,
            "leakage": {"kappa_w_per_k2": 3.5e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.06,
            "thermal_node": "soc",
            "rail": "kryo-gold",
            "is_big": True,
            "ipc": 1.9,
        },
    ),
    gpu={
        "name": "adreno530",
        "gpu_type": "Adreno 530",
        "opps": {"freqs_mhz": list(ADRENO530_FREQS_MHZ),
                 "v_min": 0.75, "v_max": 1.05},
        "ceff_w_per_v2hz": 2.8e-9,
        "leakage": {"kappa_w_per_k2": 2.5e-4, "beta_k": LEAKAGE_BETA_K},
        "idle_power_w": 0.05,
        "thermal_node": "soc",
        "rail": "gpu",
    },
    memory={
        "name": "mem",
        "base_power_w": 0.12,
        "activity_power_w": 0.40,
        "leakage": {"kappa_w_per_k2": 5.0e-5, "beta_k": LEAKAGE_BETA_K},
        "thermal_node": "pcb",
        "rail": "mem",
    },
    thermal={
        "nodes": [
            {"name": "soc", "capacitance_j_per_k": 2.8},
            {"name": "pcb", "capacitance_j_per_k": 16.0},
            {"name": "skin", "capacitance_j_per_k": 50.0},
        ],
        "links": [
            {"a": "soc", "b": "pcb", "conductance_w_per_k": 1.0},
            {"a": "pcb", "b": "skin", "conductance_w_per_k": 0.60},
            {"a": "skin", "b": "ambient", "conductance_w_per_k": 0.33},
            {"a": "soc", "b": "ambient", "conductance_w_per_k": 0.02},
        ],
        "power_split": {
            "kryo-gold": {"soc": 1.0},
            "kryo-silver": {"soc": 1.0},
            "gpu": {"soc": 1.0},
            "mem": {"pcb": 1.0},
            "board": {"pcb": 0.7, "skin": 0.3},
        },
    },
    sensors=(
        # tsens package sensor (0.1 degC steps) plus a skin thermistor.
        {"name": "pkg", "node": "soc", "noise_std_c": 0.1,
         "quantization_c": 0.1},
        {"name": "skin", "node": "skin", "noise_std_c": 0.1,
         "quantization_c": 0.1},
    ),
    board_power_w=1.1,
    default_ambient_c=25.0,
    initial_temp_c=32.0,
    extras={"soc": "Snapdragon 821", "os": "Android 8"},
    software={
        # Stock policy: step-wise package trips cooling clusters and GPU,
        # tripping slightly higher than the 6P (better process, same skin
        # budget).
        "thermal": {
            "kind": "step_wise",
            "sensor": "pkg",
            "cooled": ["kryo-gold", "kryo-silver", "gpu"],
            "trips": [{"temp_c": 43.0, "hyst_c": 1.5}],
            "polling_s": 0.1,
        },
        "t_limit_c": 45.0,
    },
))


def pixel_xl() -> PlatformSpec:
    """Build the Pixel XL platform spec (compiles the registered def)."""
    return PIXEL_XL_DEF.compile()
