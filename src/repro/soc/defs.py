"""Declarative platform definitions: pure data compiled to :class:`PlatformSpec`.

A :class:`PlatformDef` captures everything about a modelled device as
JSON-native data — clusters with their OPP ladders, the GPU, the memory,
the thermal RC network, the sensors, the chassis constants, *and* the
per-platform software defaults (the stock thermal policy and the default
temperature limit the proposed governor uses).  Definitions register with
:mod:`repro.soc.registry`; every higher layer (scenario runner, campaign
grids, lint's sysfs authority, the CLI) resolves platforms through the
registry, so adding a device means writing data, not code branches.

Definitions round-trip losslessly through :meth:`PlatformDef.to_dict` /
:meth:`PlatformDef.from_dict`, which is also the JSON file format that
``repro platforms validate --file`` consumes.  The field schema is
documented in ``docs/PLATFORMS.md`` (kept in sync by a test).
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Mapping

from repro.errors import ConfigurationError
from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.opp import OppTable, voltage_ladder
from repro.soc.platform import PlatformSpec
from repro.thermal.rc_network import (
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec
from repro.units import mhz

#: Platform names become run-id components and store directory names.
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: Fallback for the proposed governor's temperature limit when a platform's
#: ``software`` block does not set ``t_limit_c`` (the board-class default).
DEFAULT_T_LIMIT_C = 85.0

# -- schema key sets (also asserted against docs/PLATFORMS.md) --------------

OPP_LADDER_KEYS = frozenset({"freqs_mhz", "v_min", "v_max"})
OPP_POINTS_KEYS = frozenset({"points_mhz_v"})
LEAKAGE_REQUIRED = frozenset({"kappa_w_per_k2", "beta_k"})
LEAKAGE_OPTIONAL = frozenset({"v_ref"})
CLUSTER_REQUIRED = frozenset(
    {"name", "core_type", "n_cores", "opps", "ceff_w_per_v2hz", "leakage"}
)
CLUSTER_OPTIONAL = frozenset(
    {"idle_power_w", "thermal_node", "rail", "is_big", "is_little", "ipc"}
)
GPU_REQUIRED = frozenset({"name", "gpu_type", "opps", "ceff_w_per_v2hz", "leakage"})
GPU_OPTIONAL = frozenset({"idle_power_w", "thermal_node", "rail"})
MEMORY_REQUIRED = frozenset()
MEMORY_OPTIONAL = frozenset(
    {"name", "base_power_w", "activity_power_w", "leakage", "thermal_node", "rail"}
)
THERMAL_NODE_KEYS = frozenset({"name", "capacitance_j_per_k"})
THERMAL_LINK_KEYS = frozenset({"a", "b", "conductance_w_per_k"})
THERMAL_REQUIRED = frozenset({"nodes", "links"})
THERMAL_OPTIONAL = frozenset({"power_split"})
SENSOR_REQUIRED = frozenset({"name", "node"})
SENSOR_OPTIONAL = frozenset({"noise_std_c", "quantization_c", "offset_c"})
SOFTWARE_KEYS = frozenset({"thermal", "t_limit_c"})
THERMAL_CONFIG_REQUIRED = frozenset({"kind", "sensor", "cooled"})
THERMAL_CONFIG_OPTIONAL = frozenset(
    {"polling_s", "trips", "sustainable_power_w", "switch_on_temp_c",
     "control_temp_c"}
)
TRIP_REQUIRED = frozenset({"temp_c"})
TRIP_OPTIONAL = frozenset({"hyst_c", "trip_type"})


def _as_data(value, where: str):
    """Deep-normalise ``value`` into JSON-native data (dict/list/scalar).

    Mappings become plain dicts, sequences become lists; anything that
    would not survive a JSON round-trip is rejected so that equality and
    serialisation of definitions are trivially well-defined.
    """
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(f"{where}: mapping keys must be str: {key!r}")
            out[key] = _as_data(item, f"{where}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [_as_data(item, f"{where}[]") for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"{where}: {value!r} is not JSON-native data (dict/list/str/number)"
    )


def _check_keys(data: Mapping, required: frozenset, optional: frozenset,
                what: str) -> None:
    missing = required - set(data)
    if missing:
        raise ConfigurationError(f"{what}: missing key(s) {sorted(missing)}")
    unknown = set(data) - required - optional
    if unknown:
        raise ConfigurationError(
            f"{what}: unknown key(s) {sorted(unknown)}; "
            f"have {sorted(required | optional)}"
        )


def _opp_table(data: Mapping, what: str) -> OppTable:
    """Compile an OPP block: a voltage ladder or explicit (MHz, V) points."""
    keys = set(data)
    if keys == set(OPP_LADDER_KEYS):
        return voltage_ladder(
            tuple(data["freqs_mhz"]), data["v_min"], data["v_max"]
        )
    if keys == set(OPP_POINTS_KEYS):
        pairs = []
        for entry in data["points_mhz_v"]:
            if len(entry) != 2:
                raise ConfigurationError(
                    f"{what}: each OPP point must be [freq_mhz, voltage_v]"
                )
            pairs.append((mhz(entry[0]), entry[1]))
        return OppTable.from_pairs(pairs)
    raise ConfigurationError(
        f"{what}: an 'opps' block needs either {sorted(OPP_LADDER_KEYS)} "
        f"(ladder) or {sorted(OPP_POINTS_KEYS)} (explicit points); got "
        f"{sorted(keys)}"
    )


def _leakage(data: Mapping, what: str) -> LeakageParams:
    _check_keys(data, LEAKAGE_REQUIRED, LEAKAGE_OPTIONAL, what)
    return LeakageParams(**data)


def _cluster_spec(data: Mapping, platform: str) -> ClusterSpec:
    what = f"platform {platform!r}: cluster {data.get('name')!r}"
    _check_keys(data, CLUSTER_REQUIRED, CLUSTER_OPTIONAL, what)
    kwargs = dict(data)
    kwargs["opps"] = _opp_table(kwargs["opps"], what)
    kwargs["leakage"] = _leakage(kwargs["leakage"], f"{what} leakage")
    return ClusterSpec(**kwargs)


def _gpu_spec(data: Mapping, platform: str) -> GpuSpec:
    what = f"platform {platform!r}: gpu {data.get('name')!r}"
    _check_keys(data, GPU_REQUIRED, GPU_OPTIONAL, what)
    kwargs = dict(data)
    kwargs["opps"] = _opp_table(kwargs["opps"], what)
    kwargs["leakage"] = _leakage(kwargs["leakage"], f"{what} leakage")
    return GpuSpec(**kwargs)


def _memory_spec(data: Mapping, platform: str) -> MemorySpec:
    what = f"platform {platform!r}: memory"
    _check_keys(data, MEMORY_REQUIRED, MEMORY_OPTIONAL, what)
    kwargs = dict(data)
    if "leakage" in kwargs:
        kwargs["leakage"] = _leakage(kwargs["leakage"], f"{what} leakage")
    return MemorySpec(**kwargs)


def _thermal_spec(data: Mapping, platform: str) -> ThermalNetworkSpec:
    what = f"platform {platform!r}: thermal"
    _check_keys(data, THERMAL_REQUIRED, THERMAL_OPTIONAL, what)
    nodes = []
    for node in data["nodes"]:
        _check_keys(node, THERMAL_NODE_KEYS, frozenset(), f"{what} node")
        nodes.append(ThermalNodeSpec(**node))
    links = []
    for link in data["links"]:
        _check_keys(link, THERMAL_LINK_KEYS, frozenset(), f"{what} link")
        links.append(
            ThermalLinkSpec(link["a"], link["b"], link["conductance_w_per_k"])
        )
    return ThermalNetworkSpec(
        nodes=tuple(nodes),
        links=tuple(links),
        power_split={
            rail: dict(split)
            for rail, split in data.get("power_split", {}).items()
        },
    )


def _sensor_spec(data: Mapping, platform: str) -> SensorSpec:
    what = f"platform {platform!r}: sensor {data.get('name')!r}"
    _check_keys(data, SENSOR_REQUIRED, SENSOR_OPTIONAL, what)
    return SensorSpec(**data)


@dataclass(frozen=True, eq=True)
class PlatformDef:
    """A device described entirely as data (see module docstring).

    ``clusters``/``gpu``/``memory``/``thermal``/``sensors`` hold nested
    dicts in the documented schema; ``software`` holds the per-platform
    software defaults (``thermal``: the stock kernel thermal policy or
    ``None``; ``t_limit_c``: the proposed governor's default limit).
    """

    name: str
    clusters: tuple
    gpu: Mapping
    memory: Mapping
    thermal: Mapping
    sensors: tuple
    board_power_w: float = 0.0
    default_ambient_c: float = 25.0
    initial_temp_c: float | None = None
    extras: Mapping = field(default_factory=dict)
    software: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ConfigurationError(
                f"platform name {self.name!r} must match {_NAME_RE.pattern} "
                "(it becomes run ids and store directory names)"
            )
        where = f"platform {self.name!r}"
        object.__setattr__(
            self, "clusters",
            tuple(_as_data(c, f"{where}.clusters") for c in self.clusters),
        )
        object.__setattr__(self, "gpu", _as_data(self.gpu, f"{where}.gpu"))
        object.__setattr__(self, "memory", _as_data(self.memory, f"{where}.memory"))
        object.__setattr__(
            self, "thermal", _as_data(self.thermal, f"{where}.thermal")
        )
        object.__setattr__(
            self, "sensors",
            tuple(_as_data(s, f"{where}.sensors") for s in self.sensors),
        )
        object.__setattr__(self, "extras", _as_data(self.extras, f"{where}.extras"))
        software = _as_data(self.software, f"{where}.software")
        _check_keys(software, frozenset(), SOFTWARE_KEYS, f"{where}.software")
        object.__setattr__(self, "software", software)

    # -- compilation --------------------------------------------------------

    def compile(self) -> PlatformSpec:
        """Build the :class:`PlatformSpec` this definition describes.

        All structural validation (thermal-node references, rail splits,
        sensor placement...) happens in the spec's ``__post_init__``.
        """
        return PlatformSpec(
            name=self.name,
            clusters=tuple(_cluster_spec(c, self.name) for c in self.clusters),
            gpu=_gpu_spec(self.gpu, self.name),
            memory=_memory_spec(self.memory, self.name),
            thermal=_thermal_spec(self.thermal, self.name),
            sensors=tuple(_sensor_spec(s, self.name) for s in self.sensors),
            board_power_w=self.board_power_w,
            default_ambient_c=self.default_ambient_c,
            initial_temp_c=self.initial_temp_c,
            extras=copy.deepcopy(dict(self.extras)),
        )

    def stock_thermal_config(self):
        """Compile the platform's stock kernel thermal policy.

        Returns a :class:`repro.kernel.kernel.ThermalConfig`, or ``None``
        when the definition declares no stock policy (the platform then
        runs unmanaged under the ``stock`` scenario policy).
        """
        data = self.software.get("thermal")
        if data is None:
            return None
        # Imported here: the kernel layer consumes soc specs, so importing
        # it at soc module load would be circular.
        from repro.kernel.kernel import ThermalConfig
        from repro.kernel.thermal.zone import TripPoint

        what = f"platform {self.name!r}: software.thermal"
        _check_keys(data, THERMAL_CONFIG_REQUIRED, THERMAL_CONFIG_OPTIONAL, what)
        kwargs = dict(data)
        kwargs["cooled"] = tuple(kwargs["cooled"])
        trips = []
        for trip in kwargs.pop("trips", ()):
            _check_keys(trip, TRIP_REQUIRED, TRIP_OPTIONAL, f"{what} trip")
            trips.append(TripPoint(**trip))
        return ThermalConfig(trips=tuple(trips), **kwargs)

    @property
    def default_t_limit_c(self) -> float:
        """The proposed governor's default temperature limit (degC)."""
        return float(self.software.get("t_limit_c", DEFAULT_T_LIMIT_C))

    def validate(self) -> PlatformSpec:
        """Compile hardware *and* software blocks; raises on any error."""
        spec = self.compile()
        config = self.stock_thermal_config()
        if config is not None and config.sensor not in {
            s["name"] for s in self.sensors
        }:
            raise ConfigurationError(
                f"platform {self.name!r}: stock thermal policy senses "
                f"{config.sensor!r}, which is not a declared sensor"
            )
        if self.default_t_limit_c <= 0.0:
            raise ConfigurationError(
                f"platform {self.name!r}: t_limit_c must be positive"
            )
        return spec

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return copy.deepcopy(
            {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
            | {"clusters": list(self.clusters), "sensors": list(self.sensors)}
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlatformDef":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown PlatformDef field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        kwargs = dict(data)
        for key in ("clusters", "sensors"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)
