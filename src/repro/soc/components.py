"""Static descriptions of SoC components (CPU clusters, GPU, memory).

These are *specifications*: immutable data that parameterises the power
model, the scheduler, and the thermal mapping.  Runtime state (current
frequency, utilisation, temperature) lives in the kernel and thermal layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.soc.opp import OppTable


@dataclass(frozen=True)
class LeakageParams:
    """Temperature-dependent leakage model parameters.

    Leakage power of a component follows the standard compact model used by
    the paper's companion analysis (Bhat et al., TECS 2017):

        P_leak(T, V) = kappa * T^2 * exp(-beta / T) * (V / v_ref)

    with ``T`` in kelvin.  ``kappa`` has units of W/K^2 at ``v_ref``.
    """

    kappa_w_per_k2: float
    beta_k: float
    v_ref: float = 1.0

    def __post_init__(self) -> None:
        if self.kappa_w_per_k2 < 0.0:
            raise ConfigurationError("leakage kappa must be non-negative")
        if self.beta_k <= 0.0:
            raise ConfigurationError("leakage beta must be positive")
        if self.v_ref <= 0.0:
            raise ConfigurationError("leakage v_ref must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous CPU cluster (e.g. the four Cortex-A57 'big' cores).

    ``ceff_w_per_v2hz`` is the effective switched capacitance of one core:
    a fully busy core at frequency f and voltage V dissipates
    ``ceff * V^2 * f`` watts of dynamic power.
    """

    name: str
    core_type: str
    n_cores: int
    opps: OppTable
    ceff_w_per_v2hz: float
    leakage: LeakageParams
    idle_power_w: float = 0.0
    thermal_node: str = ""
    rail: str = ""
    is_big: bool = False
    is_little: bool = False
    ipc: float = 1.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"cluster {self.name!r} needs >= 1 core")
        if self.ceff_w_per_v2hz <= 0.0:
            raise ConfigurationError(f"cluster {self.name!r}: ceff must be positive")
        if self.idle_power_w < 0.0:
            raise ConfigurationError(f"cluster {self.name!r}: idle power must be >= 0")
        if self.ipc <= 0.0:
            raise ConfigurationError(f"cluster {self.name!r}: ipc must be positive")
        if self.is_big and self.is_little:
            raise ConfigurationError(
                f"cluster {self.name!r} cannot be both big and LITTLE"
            )
        object.__setattr__(self, "thermal_node", self.thermal_node or self.name)
        object.__setattr__(self, "rail", self.rail or self.name)

    def capacity_cycles(self, freq_hz: float, dt_s: float) -> float:
        """Effective work capacity (instruction-weighted cycles) of the whole
        cluster over ``dt_s`` at ``freq_hz``."""
        return self.ipc * freq_hz * self.n_cores * dt_s

    def peak_core_dynamic_power_w(self) -> float:
        """Dynamic power of one fully-busy core at the top OPP.

        The platform layer uses this to pick the low-power (LITTLE) cluster
        when no cluster carries an explicit ``is_little`` flag.
        """
        top = self.opps[len(self.opps) - 1]
        return self.ceff_w_per_v2hz * top.voltage_v**2 * top.freq_hz


@dataclass(frozen=True)
class GpuSpec:
    """A GPU treated as a single schedulable device with its own OPPs."""

    name: str
    gpu_type: str
    opps: OppTable
    ceff_w_per_v2hz: float
    leakage: LeakageParams
    idle_power_w: float = 0.0
    thermal_node: str = ""
    rail: str = ""

    def __post_init__(self) -> None:
        if self.ceff_w_per_v2hz <= 0.0:
            raise ConfigurationError(f"gpu {self.name!r}: ceff must be positive")
        if self.idle_power_w < 0.0:
            raise ConfigurationError(f"gpu {self.name!r}: idle power must be >= 0")
        object.__setattr__(self, "thermal_node", self.thermal_node or self.name)
        object.__setattr__(self, "rail", self.rail or self.name)

    def capacity_cycles(self, freq_hz: float, dt_s: float) -> float:
        """Render capacity (cycles) of the GPU over ``dt_s`` at ``freq_hz``."""
        return freq_hz * dt_s


@dataclass(frozen=True)
class MemorySpec:
    """DRAM + memory controller, modelled as base power plus an activity term.

    ``activity_power_w`` is the extra power at 100% memory-side activity;
    the engine derives activity from aggregate CPU/GPU utilisation.
    """

    name: str = "mem"
    base_power_w: float = 0.1
    activity_power_w: float = 0.4
    leakage: LeakageParams = field(
        default_factory=lambda: LeakageParams(kappa_w_per_k2=0.0, beta_k=1000.0)
    )
    thermal_node: str = ""
    rail: str = ""

    def __post_init__(self) -> None:
        if self.base_power_w < 0.0 or self.activity_power_w < 0.0:
            raise ConfigurationError("memory power terms must be non-negative")
        object.__setattr__(self, "thermal_node", self.thermal_node or self.name)
        object.__setattr__(self, "rail", self.rail or self.name)
