"""Platform registry: the single resolver from platform names to devices.

Every layer that used to branch on platform-name strings (scenario runner,
campaign grids, lint's sysfs authority, the CLI) looks platforms up here
instead.  The registry maps a name to its :class:`PlatformDef`; specs are
compiled on demand with :func:`build`, so registering a new definition —
pure data, no code branches — makes the device available everywhere at
once: ``run_scenario``, campaign axes, ``repro platforms``, lint.

The built-in definitions (Nexus 6P, Odroid-XU3 with and without fan,
Pixel XL) self-register when their modules import; the module-level
helpers load them lazily so direct imports of this module see the full
catalogue.  Definitions registered at runtime (e.g. from a test or a
notebook) live in the same default registry; note that campaign *worker
processes* re-import from scratch, so a platform swept with ``--jobs > 1``
must be registered at import time, not ad hoc.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.soc.defs import PlatformDef
from repro.soc.platform import PlatformSpec


class PlatformRegistry:
    """A mutable name -> :class:`PlatformDef` catalogue."""

    def __init__(self) -> None:
        self._defs: dict[str, PlatformDef] = {}

    def register(
        self, platform_def: PlatformDef, replace: bool = False
    ) -> PlatformDef:
        """Add a definition; compiles it once so bad data fails fast.

        Returns the definition, so modules can write
        ``MY_DEF = REGISTRY.register(PlatformDef(...))``.
        """
        if not isinstance(platform_def, PlatformDef):
            raise ConfigurationError(
                f"can only register PlatformDef, got {type(platform_def).__name__}"
            )
        name = platform_def.name
        if name in self._defs and not replace:
            raise ConfigurationError(
                f"platform {name!r} is already registered "
                "(pass replace=True to override)"
            )
        platform_def.compile()
        self._defs[name] = platform_def
        return platform_def

    def unregister(self, name: str) -> PlatformDef:
        """Remove and return a definition; raises on unknown names."""
        try:
            return self._defs.pop(name)
        except KeyError:
            raise ConfigurationError(
                f"platform {name!r} is not registered; have {self.names()}"
            ) from None

    def get(self, name: str) -> PlatformDef:
        """Definition by name; raises listing the registered names."""
        try:
            return self._defs[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown platform {name!r}; have {self.names()}"
            ) from None

    def build(self, name: str) -> PlatformSpec:
        """Compile the named definition into a fresh :class:`PlatformSpec`."""
        return self.get(name).compile()

    def names(self) -> tuple[str, ...]:
        """Registered platform names, sorted."""
        return tuple(sorted(self._defs))

    def __contains__(self, name: object) -> bool:
        return name in self._defs

    def __len__(self) -> int:
        return len(self._defs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The default registry all layers resolve through.
REGISTRY = PlatformRegistry()

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in definition modules (they self-register)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.soc.exynos5422    # noqa: F401  (registers odroid-xu3[-fan])
    import repro.soc.snapdragon810  # noqa: F401  (registers nexus6p)
    import repro.soc.snapdragon821  # noqa: F401  (registers pixel-xl)
    import repro.soc.snapdragon_modern  # noqa: F401  (registers snapdragon-modern)


def register(platform_def: PlatformDef, replace: bool = False) -> PlatformDef:
    """Register a definition with the default registry."""
    _ensure_builtins()
    return REGISTRY.register(platform_def, replace=replace)


def unregister(name: str) -> PlatformDef:
    """Remove a definition from the default registry."""
    _ensure_builtins()
    return REGISTRY.unregister(name)


def get(name: str) -> PlatformDef:
    """Look up a definition in the default registry."""
    _ensure_builtins()
    return REGISTRY.get(name)


def build(name: str) -> PlatformSpec:
    """Compile a platform from the default registry."""
    _ensure_builtins()
    return REGISTRY.build(name)


def platform_names() -> tuple[str, ...]:
    """All names registered with the default registry, sorted."""
    _ensure_builtins()
    return REGISTRY.names()


def is_registered(name: str) -> bool:
    """Whether the default registry knows ``name``."""
    _ensure_builtins()
    return name in REGISTRY
