"""Snapdragon-modern platform definition: the calibration pipeline's output.

Unlike every other built-in, this definition is not hand-written.  The JSON
it loads (``soc/data/snapdragon_modern.json``) is a build artifact of
``repro platforms fit``: the generating ground truth lives in
:mod:`repro.calib.reference`, which excites it through the standard
harness, bundles the trace (``soc/data/snapdragon_modern_trace.json``) and
fits this definition from that trace alone.  Regenerate both files with
``python -m repro.calib.reference``.

Registering pipeline output exercises the registry's core promise from the
consuming side: scenarios, campaigns, chaos and lint pick this platform up
with zero code branches, exactly as they do the hand-written ones.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.soc.defs import PlatformDef
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY

#: Registry name of the device (import this instead of quoting the string).
SNAPDRAGON_MODERN = "snapdragon-modern"

#: Bundled artifact the registered definition is loaded from.
SNAPDRAGON_MODERN_DEF_PATH = (
    Path(__file__).resolve().parent / "data" / "snapdragon_modern.json"
)


def _load() -> PlatformDef:
    data = json.loads(SNAPDRAGON_MODERN_DEF_PATH.read_text())
    return PlatformDef.from_dict(data)


SNAPDRAGON_MODERN_DEF = REGISTRY.register(_load())


def snapdragon_modern() -> PlatformSpec:
    """Build the snapdragon-modern spec (compiles the registered def)."""
    return SNAPDRAGON_MODERN_DEF.compile()
