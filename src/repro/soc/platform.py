"""Platform descriptor: one object tying together a SoC's components,
thermal network, sensors and board-level constants.

A :class:`PlatformSpec` is everything the simulation engine needs to
instantiate a device — the software side (kernel configuration, apps,
governors) is configured separately per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.soc.components import ClusterSpec, GpuSpec, MemorySpec
from repro.soc.power_model import SocPowerModel
from repro.thermal.rc_network import ThermalNetworkSpec
from repro.thermal.sensors import SensorSpec
from repro.units import celsius_to_kelvin

BOARD_RAIL = "board"


@dataclass(frozen=True)
class PlatformSpec:
    """Full description of a simulated device.

    ``board_power_w`` is the rest-of-platform power (display, regulators,
    radios) that contributes to battery drain and board heating but is not
    under DVFS control.
    """

    name: str
    clusters: Sequence[ClusterSpec]
    gpu: GpuSpec
    memory: MemorySpec
    thermal: ThermalNetworkSpec
    sensors: Sequence[SensorSpec]
    board_power_w: float = 0.0
    default_ambient_c: float = 25.0
    initial_temp_c: float | None = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigurationError(f"platform {self.name!r}: no CPU clusters")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cluster names: {names}")
        flagged_little = [c.name for c in self.clusters if c.is_little]
        if len(flagged_little) > 1:
            raise ConfigurationError(
                f"platform {self.name!r} flags multiple LITTLE clusters: "
                f"{flagged_little}"
            )
        nodes = set(self.thermal.node_names)
        for spec in (*self.clusters, self.gpu, self.memory):
            if spec.thermal_node not in nodes:
                raise ConfigurationError(
                    f"{spec.name!r} maps to unknown thermal node "
                    f"{spec.thermal_node!r}"
                )
        rails = set(self.thermal.rail_names)
        expected = {c.rail for c in self.clusters} | {self.gpu.rail, self.memory.rail}
        if self.board_power_w > 0.0:
            expected.add(BOARD_RAIL)
        missing = expected - rails
        if missing:
            raise ConfigurationError(
                f"thermal network lacks power splits for rails {sorted(missing)}"
            )
        sensor_names = [s.name for s in self.sensors]
        if len(set(sensor_names)) != len(sensor_names):
            raise ConfigurationError(f"duplicate sensor names: {sensor_names}")
        for sensor in self.sensors:
            if sensor.node not in nodes:
                raise ConfigurationError(
                    f"sensor {sensor.name!r} placed on unknown node {sensor.node!r}"
                )
        if self.board_power_w < 0.0:
            raise ConfigurationError("board power must be non-negative")

    def cluster(self, name: str) -> ClusterSpec:
        """Cluster spec by name; raises on unknown names."""
        for spec in self.clusters:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"no cluster {name!r} on {self.name!r}; "
            f"have {[c.name for c in self.clusters]}"
        )

    @property
    def big_cluster(self) -> ClusterSpec:
        """The high-performance cluster (exactly one must be flagged big)."""
        bigs = [c for c in self.clusters if c.is_big]
        if len(bigs) != 1:
            raise ConfigurationError(
                f"platform {self.name!r} must flag exactly one big cluster"
            )
        return bigs[0]

    @property
    def little_cluster(self) -> ClusterSpec:
        """The low-power cluster.

        An explicit ``is_little`` flag wins (at most one cluster may carry
        it); without a flag, the non-big cluster with the lowest per-core
        dynamic power at its top OPP is the LITTLE one — so the selection
        never depends on cluster declaration order.
        """
        flagged = [c for c in self.clusters if c.is_little]
        if flagged:
            return flagged[0]
        littles = [c for c in self.clusters if not c.is_big]
        if not littles:
            raise ConfigurationError(f"platform {self.name!r} has no LITTLE cluster")
        return min(littles, key=lambda c: c.peak_core_dynamic_power_w())

    @property
    def default_ambient_k(self) -> float:
        """Default ambient temperature in kelvin."""
        return celsius_to_kelvin(self.default_ambient_c)

    @property
    def initial_temp_k(self) -> float:
        """Initial device temperature in kelvin (ambient if unspecified)."""
        if self.initial_temp_c is None:
            return self.default_ambient_k
        return celsius_to_kelvin(self.initial_temp_c)

    def power_model(self) -> SocPowerModel:
        """Construct the power model for this platform."""
        return SocPowerModel(
            {c.name: c for c in self.clusters}, self.gpu, self.memory
        )

    def sensor(self, name: str) -> SensorSpec:
        """Sensor spec by name."""
        for spec in self.sensors:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"no sensor {name!r} on {self.name!r}")
