"""Nexus 6P platform definition: Qualcomm Snapdragon 810 in a phone chassis.

Frequency ladders follow the shipped device (the paper quotes the Adreno 430
steps 180/305/390/450/510/600 MHz and the A57 points 384 and 960 MHz, all of
which appear below).  Power and thermal constants are calibrated so that the
popular-app scenarios of Section III reproduce the paper's observations:
package temperature reaching ~50 degC after ~140 s of gaming with throttling
disabled, and the stock thermal governor holding ~40 degC at the cost of the
top GPU frequencies (Figs. 1-6, Table I).

The Snapdragon 810 (20 nm) was famously leaky; the leakage constants reflect
that.

The platform is *data*: a registered :class:`~repro.soc.defs.PlatformDef`
(including the software defaults — the stock MSM-style trip governor and
the proposed governor's 41 degC limit).  :func:`nexus6p` remains as a thin
compatibility shim that compiles the registered definition.
"""

from __future__ import annotations

from repro.soc.defs import PlatformDef
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY

LEAKAGE_BETA_K = 1650.0

#: Registry name of the device (import this instead of quoting the string).
NEXUS6P = "nexus6p"

A57_FREQS_MHZ = (
    384, 480, 633, 768, 864, 960, 1248, 1344, 1440, 1536, 1632, 1689, 1824, 1958,
)
A53_FREQS_MHZ = (384, 480, 600, 672, 768, 864, 960, 1248, 1344, 1478, 1555)
ADRENO430_FREQS_MHZ = (180, 305, 390, 450, 510, 600)

NEXUS6P_DEF = REGISTRY.register(PlatformDef(
    name=NEXUS6P,
    clusters=(
        {
            "name": "a53",
            "core_type": "Cortex-A53",
            "n_cores": 4,
            "opps": {"freqs_mhz": list(A53_FREQS_MHZ),
                     "v_min": 0.75, "v_max": 1.05},
            "ceff_w_per_v2hz": 6.0e-11,
            "leakage": {"kappa_w_per_k2": 1.0e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.03,
            "thermal_node": "soc",
            "rail": "a53",
            "is_little": True,
            "ipc": 1.0,
        },
        {
            "name": "a57",
            "core_type": "Cortex-A57",
            "n_cores": 4,
            "opps": {"freqs_mhz": list(A57_FREQS_MHZ),
                     "v_min": 0.80, "v_max": 1.25},
            "ceff_w_per_v2hz": 3.7e-10,
            "leakage": {"kappa_w_per_k2": 7.0e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.08,
            "thermal_node": "soc",
            "rail": "a57",
            "is_big": True,
            "ipc": 1.6,
        },
    ),
    gpu={
        "name": "adreno430",
        "gpu_type": "Adreno 430",
        "opps": {"freqs_mhz": list(ADRENO430_FREQS_MHZ),
                 "v_min": 0.80, "v_max": 1.10},
        "ceff_w_per_v2hz": 3.4e-9,
        "leakage": {"kappa_w_per_k2": 4.0e-4, "beta_k": LEAKAGE_BETA_K},
        "idle_power_w": 0.05,
        "thermal_node": "soc",
        "rail": "gpu",
    },
    memory={
        "name": "mem",
        "base_power_w": 0.12,
        "activity_power_w": 0.45,
        "leakage": {"kappa_w_per_k2": 5.0e-5, "beta_k": LEAKAGE_BETA_K},
        "thermal_node": "pcb",
        "rail": "mem",
    },
    thermal={
        "nodes": [
            {"name": "soc", "capacitance_j_per_k": 2.5},
            {"name": "pcb", "capacitance_j_per_k": 15.0},
            {"name": "skin", "capacitance_j_per_k": 45.0},
        ],
        "links": [
            {"a": "soc", "b": "pcb", "conductance_w_per_k": 0.90},
            {"a": "pcb", "b": "skin", "conductance_w_per_k": 0.55},
            {"a": "skin", "b": "ambient", "conductance_w_per_k": 0.30},
            {"a": "soc", "b": "ambient", "conductance_w_per_k": 0.02},
        ],
        "power_split": {
            "a57": {"soc": 1.0},
            "a53": {"soc": 1.0},
            "gpu": {"soc": 1.0},
            "mem": {"pcb": 1.0},
            "board": {"pcb": 0.7, "skin": 0.3},
        },
    },
    sensors=(
        # Package sensor used by the stock thermal governor (tsens: 0.1 degC).
        {"name": "pkg", "node": "soc", "noise_std_c": 0.1,
         "quantization_c": 0.1},
        {"name": "skin", "node": "skin", "noise_std_c": 0.1,
         "quantization_c": 0.1},
    ),
    board_power_w=1.2,
    default_ambient_c=25.0,
    initial_temp_c=35.0,
    extras={"soc": "Snapdragon 810", "os": "Android 7"},
    software={
        # The stock phone policy: step-wise trips on the package sensor,
        # cooling both CPU clusters and the GPU (what MSM thermal does on
        # the real device).
        "thermal": {
            "kind": "step_wise",
            "sensor": "pkg",
            "cooled": ["a57", "a53", "gpu"],
            "trips": [{"temp_c": 40.0, "hyst_c": 1.5}],
            "polling_s": 0.1,
        },
        "t_limit_c": 41.0,
    },
))


def nexus6p() -> PlatformSpec:
    """Build the Nexus 6P platform spec (compiles the registered def)."""
    return NEXUS6P_DEF.compile()
