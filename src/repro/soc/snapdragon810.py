"""Nexus 6P platform model: Qualcomm Snapdragon 810 in a phone chassis.

Frequency ladders follow the shipped device (the paper quotes the Adreno 430
steps 180/305/390/450/510/600 MHz and the A57 points 384 and 960 MHz, all of
which appear below).  Power and thermal constants are calibrated so that the
popular-app scenarios of Section III reproduce the paper's observations:
package temperature reaching ~50 degC after ~140 s of gaming with throttling
disabled, and the stock thermal governor holding ~40 degC at the cost of the
top GPU frequencies (Figs. 1-6, Table I).

The Snapdragon 810 (20 nm) was famously leaky; the leakage constants reflect
that.
"""

from __future__ import annotations

from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.opp import OppTable
from repro.soc.platform import PlatformSpec
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec
from repro.units import mhz

LEAKAGE_BETA_K = 1650.0

A57_FREQS_MHZ = (
    384, 480, 633, 768, 864, 960, 1248, 1344, 1440, 1536, 1632, 1689, 1824, 1958,
)
A53_FREQS_MHZ = (384, 480, 600, 672, 768, 864, 960, 1248, 1344, 1478, 1555)
ADRENO430_FREQS_MHZ = (180, 305, 390, 450, 510, 600)


def _voltage_ladder(
    freqs_mhz: tuple[int, ...], v_min: float, v_max: float
) -> OppTable:
    """Linear voltage/frequency ladder between the table's endpoints."""
    lo, hi = freqs_mhz[0], freqs_mhz[-1]
    pairs = []
    for f in freqs_mhz:
        volt = v_min + (v_max - v_min) * (f - lo) / (hi - lo)
        pairs.append((mhz(f), round(volt, 4)))
    return OppTable.from_pairs(pairs)


def nexus6p() -> PlatformSpec:
    """Build the Nexus 6P platform spec."""
    big = ClusterSpec(
        name="a57",
        core_type="Cortex-A57",
        n_cores=4,
        opps=_voltage_ladder(A57_FREQS_MHZ, 0.80, 1.25),
        ceff_w_per_v2hz=3.7e-10,
        leakage=LeakageParams(kappa_w_per_k2=7.0e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.08,
        thermal_node="soc",
        rail="a57",
        is_big=True,
        ipc=1.6,
    )
    little = ClusterSpec(
        name="a53",
        core_type="Cortex-A53",
        n_cores=4,
        opps=_voltage_ladder(A53_FREQS_MHZ, 0.75, 1.05),
        ceff_w_per_v2hz=6.0e-11,
        leakage=LeakageParams(kappa_w_per_k2=1.0e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.03,
        thermal_node="soc",
        rail="a53",
        ipc=1.0,
    )
    gpu = GpuSpec(
        name="adreno430",
        gpu_type="Adreno 430",
        opps=_voltage_ladder(ADRENO430_FREQS_MHZ, 0.80, 1.10),
        ceff_w_per_v2hz=3.4e-9,
        leakage=LeakageParams(kappa_w_per_k2=4.0e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.05,
        thermal_node="soc",
        rail="gpu",
    )
    memory = MemorySpec(
        name="mem",
        base_power_w=0.12,
        activity_power_w=0.45,
        leakage=LeakageParams(kappa_w_per_k2=5.0e-5, beta_k=LEAKAGE_BETA_K),
        thermal_node="pcb",
        rail="mem",
    )
    thermal = ThermalNetworkSpec(
        nodes=(
            ThermalNodeSpec("soc", capacitance_j_per_k=2.5),
            ThermalNodeSpec("pcb", capacitance_j_per_k=15.0),
            ThermalNodeSpec("skin", capacitance_j_per_k=45.0),
        ),
        links=(
            ThermalLinkSpec("soc", "pcb", conductance_w_per_k=0.90),
            ThermalLinkSpec("pcb", "skin", conductance_w_per_k=0.55),
            ThermalLinkSpec("skin", AMBIENT, conductance_w_per_k=0.30),
            ThermalLinkSpec("soc", AMBIENT, conductance_w_per_k=0.02),
        ),
        power_split={
            "a57": {"soc": 1.0},
            "a53": {"soc": 1.0},
            "gpu": {"soc": 1.0},
            "mem": {"pcb": 1.0},
            "board": {"pcb": 0.7, "skin": 0.3},
        },
    )
    sensors = (
        # Package sensor used by the stock thermal governor (tsens: 0.1 degC).
        SensorSpec("pkg", node="soc", noise_std_c=0.1, quantization_c=0.1),
        SensorSpec("skin", node="skin", noise_std_c=0.1, quantization_c=0.1),
    )
    return PlatformSpec(
        name="nexus6p",
        clusters=(little, big),
        gpu=gpu,
        memory=memory,
        thermal=thermal,
        sensors=sensors,
        board_power_w=1.2,
        default_ambient_c=25.0,
        initial_temp_c=35.0,
        extras={"soc": "Snapdragon 810", "os": "Android 7"},
    )
