"""Odroid-XU3 platform model: Samsung Exynos 5422 on the open dev board.

The board exposes per-rail INA231 current sensors (big/A15, LITTLE/A7, GPU,
memory), which is exactly what the paper's proposed governor consumes.  The
thermal constants model the board with the fan *disabled*, as in the paper's
Section IV.C experiments — this makes the effective junction-to-ambient
resistance large and pushes the power-temperature critical power down to
~5.5 W, matching the fixed-point plots of Fig. 7.
"""

from __future__ import annotations

from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.opp import OppTable
from repro.soc.platform import PlatformSpec
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec
from repro.units import mhz

LEAKAGE_BETA_K = 1650.0

A15_FREQS_MHZ = tuple(range(200, 2001, 100))
A7_FREQS_MHZ = tuple(range(200, 1401, 100))
MALI_T628_FREQS_MHZ = (177, 266, 350, 420, 480, 543, 600)

# INA231 I2C addresses on the real board, used for the sysfs power nodes.
INA231_ADDRESSES = {
    "a15": "4-0040",
    "mem": "4-0041",
    "gpu": "4-0044",
    "a7": "4-0045",
}


def _voltage_ladder(
    freqs_mhz: tuple[int, ...], v_min: float, v_max: float
) -> OppTable:
    """Linear voltage/frequency ladder between the table's endpoints."""
    lo, hi = freqs_mhz[0], freqs_mhz[-1]
    pairs = []
    for f in freqs_mhz:
        volt = v_min + (v_max - v_min) * (f - lo) / (hi - lo)
        pairs.append((mhz(f), round(volt, 4)))
    return OppTable.from_pairs(pairs)


def odroid_xu3(fan: bool = False) -> PlatformSpec:
    """Build the Odroid-XU3 platform spec.

    The paper's Section IV.C experiments disable the fan ("since it is not
    feasible for mobile platforms"), which is the default here.  ``fan=True``
    models the stock actively-cooled board: the heatsink-to-ambient
    conductance grows ~6x, lifting the critical power far beyond any
    realistic workload.
    """
    big = ClusterSpec(
        name="a15",
        core_type="Cortex-A15",
        n_cores=4,
        opps=_voltage_ladder(A15_FREQS_MHZ, 0.9125, 1.3625),
        ceff_w_per_v2hz=4.5e-10,
        leakage=LeakageParams(kappa_w_per_k2=4.8e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.06,
        thermal_node="big",
        rail="a15",
        is_big=True,
        ipc=1.8,
    )
    little = ClusterSpec(
        name="a7",
        core_type="Cortex-A7",
        n_cores=4,
        opps=_voltage_ladder(A7_FREQS_MHZ, 0.90, 1.25),
        ceff_w_per_v2hz=8.0e-11,
        leakage=LeakageParams(kappa_w_per_k2=1.05e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.025,
        thermal_node="little",
        rail="a7",
        ipc=1.0,
    )
    gpu = GpuSpec(
        name="mali_t628",
        gpu_type="Mali T628 MP6",
        opps=_voltage_ladder(MALI_T628_FREQS_MHZ, 0.85, 1.075),
        ceff_w_per_v2hz=1.5e-9,
        leakage=LeakageParams(kappa_w_per_k2=2.2e-4, beta_k=LEAKAGE_BETA_K),
        idle_power_w=0.05,
        thermal_node="gpu",
        rail="gpu",
    )
    memory = MemorySpec(
        name="mem",
        base_power_w=0.10,
        activity_power_w=0.35,
        leakage=LeakageParams(kappa_w_per_k2=7.0e-5, beta_k=LEAKAGE_BETA_K),
        thermal_node="mem",
        rail="mem",
    )
    thermal = ThermalNetworkSpec(
        nodes=(
            ThermalNodeSpec("big", capacitance_j_per_k=0.8),
            ThermalNodeSpec("little", capacitance_j_per_k=0.5),
            ThermalNodeSpec("gpu", capacitance_j_per_k=0.8),
            ThermalNodeSpec("mem", capacitance_j_per_k=0.8),
            ThermalNodeSpec("board", capacitance_j_per_k=3.2),
        ),
        links=(
            ThermalLinkSpec("big", "board", conductance_w_per_k=1.0),
            ThermalLinkSpec("little", "board", conductance_w_per_k=1.2),
            ThermalLinkSpec("gpu", "board", conductance_w_per_k=1.0),
            ThermalLinkSpec("mem", "board", conductance_w_per_k=1.5),
            ThermalLinkSpec("big", "gpu", conductance_w_per_k=0.4),
            ThermalLinkSpec("big", "little", conductance_w_per_k=0.4),
            # Fan off: weak natural convection; fan on: forced airflow.
            ThermalLinkSpec(
                "board", AMBIENT, conductance_w_per_k=0.5 if fan else 0.08
            ),
        ),
        power_split={
            "a15": {"big": 1.0},
            "a7": {"little": 1.0},
            "gpu": {"gpu": 1.0},
            "mem": {"mem": 1.0},
            "board": {"board": 1.0},
        },
    )
    sensors = (
        # Exynos TMU sensors quantise to whole degrees.
        SensorSpec("soc_big", node="big", noise_std_c=0.4, quantization_c=1.0),
        SensorSpec("soc_gpu", node="gpu", noise_std_c=0.4, quantization_c=1.0),
        SensorSpec("board", node="board", noise_std_c=0.2, quantization_c=0.5),
    )
    return PlatformSpec(
        name="odroid-xu3",
        clusters=(little, big),
        gpu=gpu,
        memory=memory,
        thermal=thermal,
        sensors=sensors,
        board_power_w=0.5,
        default_ambient_c=27.0,
        initial_temp_c=50.0,
        extras={
            "soc": "Exynos 5422",
            "os": "Android 7.1 / Linux 3.10.9",
            "ina231": dict(INA231_ADDRESSES),
            "fan": "enabled" if fan else "disabled",
        },
    )
