"""Odroid-XU3 platform definition: Samsung Exynos 5422 on the open dev board.

The board exposes per-rail INA231 current sensors (big/A15, LITTLE/A7, GPU,
memory), which is exactly what the paper's proposed governor consumes.  The
thermal constants model the board with the fan *disabled*, as in the paper's
Section IV.C experiments — this makes the effective junction-to-ambient
resistance large and pushes the power-temperature critical power down to
~5.5 W, matching the fixed-point plots of Fig. 7.

Two :class:`~repro.soc.defs.PlatformDef` variants register here: the
fanless board the paper studies, and an ``odroid-xu3-fan`` variant derived
from the same definition purely as a data patch (the stock actively-cooled
board: the heatsink-to-ambient conductance grows ~6x, lifting the critical
power far beyond any realistic workload).  :func:`odroid_xu3` remains as a
thin compatibility shim over the two registered definitions.
"""

from __future__ import annotations

from repro.soc.defs import PlatformDef
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY

LEAKAGE_BETA_K = 1650.0

#: Registry names of the two variants (import these, don't quote strings).
ODROID_XU3 = "odroid-xu3"
ODROID_XU3_FAN = "odroid-xu3-fan"

A15_FREQS_MHZ = tuple(range(200, 2001, 100))
A7_FREQS_MHZ = tuple(range(200, 1401, 100))
MALI_T628_FREQS_MHZ = (177, 266, 350, 420, 480, 543, 600)

# INA231 I2C addresses on the real board, used for the sysfs power nodes.
INA231_ADDRESSES = {
    "a15": "4-0040",
    "mem": "4-0041",
    "gpu": "4-0044",
    "a7": "4-0045",
}

ODROID_XU3_DEF = REGISTRY.register(PlatformDef(
    name=ODROID_XU3,
    clusters=(
        {
            "name": "a7",
            "core_type": "Cortex-A7",
            "n_cores": 4,
            "opps": {"freqs_mhz": list(A7_FREQS_MHZ),
                     "v_min": 0.90, "v_max": 1.25},
            "ceff_w_per_v2hz": 8.0e-11,
            "leakage": {"kappa_w_per_k2": 1.05e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.025,
            "thermal_node": "little",
            "rail": "a7",
            "is_little": True,
            "ipc": 1.0,
        },
        {
            "name": "a15",
            "core_type": "Cortex-A15",
            "n_cores": 4,
            "opps": {"freqs_mhz": list(A15_FREQS_MHZ),
                     "v_min": 0.9125, "v_max": 1.3625},
            "ceff_w_per_v2hz": 4.5e-10,
            "leakage": {"kappa_w_per_k2": 4.8e-4, "beta_k": LEAKAGE_BETA_K},
            "idle_power_w": 0.06,
            "thermal_node": "big",
            "rail": "a15",
            "is_big": True,
            "ipc": 1.8,
        },
    ),
    gpu={
        "name": "mali_t628",
        "gpu_type": "Mali T628 MP6",
        "opps": {"freqs_mhz": list(MALI_T628_FREQS_MHZ),
                 "v_min": 0.85, "v_max": 1.075},
        "ceff_w_per_v2hz": 1.5e-9,
        "leakage": {"kappa_w_per_k2": 2.2e-4, "beta_k": LEAKAGE_BETA_K},
        "idle_power_w": 0.05,
        "thermal_node": "gpu",
        "rail": "gpu",
    },
    memory={
        "name": "mem",
        "base_power_w": 0.10,
        "activity_power_w": 0.35,
        "leakage": {"kappa_w_per_k2": 7.0e-5, "beta_k": LEAKAGE_BETA_K},
        "thermal_node": "mem",
        "rail": "mem",
    },
    thermal={
        "nodes": [
            {"name": "big", "capacitance_j_per_k": 0.8},
            {"name": "little", "capacitance_j_per_k": 0.5},
            {"name": "gpu", "capacitance_j_per_k": 0.8},
            {"name": "mem", "capacitance_j_per_k": 0.8},
            {"name": "board", "capacitance_j_per_k": 3.2},
        ],
        "links": [
            {"a": "big", "b": "board", "conductance_w_per_k": 1.0},
            {"a": "little", "b": "board", "conductance_w_per_k": 1.2},
            {"a": "gpu", "b": "board", "conductance_w_per_k": 1.0},
            {"a": "mem", "b": "board", "conductance_w_per_k": 1.5},
            {"a": "big", "b": "gpu", "conductance_w_per_k": 0.4},
            {"a": "big", "b": "little", "conductance_w_per_k": 0.4},
            # Fan off: weak natural convection (the fan variant patches this).
            {"a": "board", "b": "ambient", "conductance_w_per_k": 0.08},
        ],
        "power_split": {
            "a15": {"big": 1.0},
            "a7": {"little": 1.0},
            "gpu": {"gpu": 1.0},
            "mem": {"mem": 1.0},
            "board": {"board": 1.0},
        },
    },
    sensors=(
        # Exynos TMU sensors quantise to whole degrees.
        {"name": "soc_big", "node": "big", "noise_std_c": 0.4,
         "quantization_c": 1.0},
        {"name": "soc_gpu", "node": "gpu", "noise_std_c": 0.4,
         "quantization_c": 1.0},
        {"name": "board", "node": "board", "noise_std_c": 0.2,
         "quantization_c": 0.5},
    ),
    board_power_w=0.5,
    default_ambient_c=27.0,
    initial_temp_c=50.0,
    extras={
        "soc": "Exynos 5422",
        "os": "Android 7.1 / Linux 3.10.9",
        "ina231": dict(INA231_ADDRESSES),
        "fan": "disabled",
    },
    software={
        # The stock Linux policy on the board: IPA on the big-core sensor.
        "thermal": {
            "kind": "ipa",
            "sensor": "soc_big",
            "cooled": ["a15", "a7", "gpu"],
            "sustainable_power_w": 2.5,
            "switch_on_temp_c": 70.0,
            "control_temp_c": 90.0,
        },
        "t_limit_c": 85.0,
    },
))

# The actively-cooled variant is the same definition patched as data:
# forced airflow multiplies the board-to-ambient conductance and flips the
# ``fan`` extra.  No code branches — this is the registry's variant idiom.
_fan_data = ODROID_XU3_DEF.to_dict()
_fan_data["name"] = ODROID_XU3_FAN
_fan_data["thermal"]["links"][-1]["conductance_w_per_k"] = 0.5
_fan_data["extras"]["fan"] = "enabled"
ODROID_XU3_FAN_DEF = REGISTRY.register(PlatformDef.from_dict(_fan_data))
del _fan_data


def odroid_xu3(fan: bool = False) -> PlatformSpec:
    """Build the Odroid-XU3 platform spec (compiles a registered def).

    The paper's Section IV.C experiments disable the fan ("since it is not
    feasible for mobile platforms"), which is the default here; ``fan=True``
    compiles the ``odroid-xu3-fan`` variant instead.
    """
    return (ODROID_XU3_FAN_DEF if fan else ODROID_XU3_DEF).compile()
