"""Application abstraction.

An :class:`Application` is attached to a simulation, spawns kernel tasks,
enqueues CPU/GPU work every step, and receives completion callbacks routed by
work-item tags of the form ``(app_name, ...)``.  Concrete workloads live in
:mod:`repro.apps.frames` (frame pipelines), :mod:`repro.apps.mibench`
(batch), and :mod:`repro.apps.gfxbench` (benchmark apps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.kernel.kernel import Kernel


@dataclass
class AppContext:
    """What an application gets at attach time."""

    kernel: Kernel
    rng: np.random.Generator


class Application:
    """Base class for all simulated workloads."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._ctx: AppContext | None = None

    @property
    def ctx(self) -> AppContext:
        """The attach-time context; raises if the app is not attached."""
        if self._ctx is None:
            raise SimulationError(f"app {self.name!r} is not attached")
        return self._ctx

    @property
    def attached(self) -> bool:
        """Whether the app has been attached to a simulation."""
        return self._ctx is not None

    def attach(self, ctx: AppContext) -> None:
        """Bind to a simulation; spawn tasks here."""
        if self._ctx is not None:
            raise SimulationError(f"app {self.name!r} is already attached")
        self._ctx = ctx
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclasses: spawn tasks, initialise state."""

    def step(self, now_s: float, dt_s: float) -> None:
        """Called once per simulation tick, before the kernel runs."""

    def steady(self) -> bool:
        """True when every future :meth:`step` is a guaranteed no-op.

        :class:`repro.sim.batch.BatchSimulation` only promotes a scenario
        onto its vectorized fast path when all of its apps are steady —
        i.e. the workload is a constant demand the scheduler has already
        settled into.  The conservative default is ``False``; overriding it
        incorrectly breaks batch/scalar byte-identity.
        """
        return False

    def on_cpu_complete(self, tag: tuple, now_s: float) -> None:
        """A tagged CPU work item of this app finished."""

    def on_gpu_complete(self, tag: tuple, now_s: float) -> None:
        """A tagged GPU job of this app finished."""

    def pids(self) -> list[int]:
        """Pids of the tasks this app owns (for registration/affinity)."""
        return []

    def metrics(self) -> dict:
        """Summary metrics at the end of a run (fps, progress, score...)."""
        return {}
