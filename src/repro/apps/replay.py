"""Trace-driven workloads: replay recorded per-frame demand.

For users who have profiled a real app (e.g. with systrace/gfxinfo), a
:class:`ReplayApp` replays a recorded sequence of per-frame CPU and GPU
costs instead of drawing them from a stochastic model.  Traces are plain
CSV: ``start_offset_s, cpu_cycles, gpu_cycles`` per frame, relative to app
start; the app issues each frame at its recorded offset (subject to the
pipeline-depth limit) and measures achieved FPS like any other frame app.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass
from typing import Sequence

from repro.apps.base import Application
from repro.apps.frames import FpsMeter
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrameRecord:
    """One recorded frame."""

    start_offset_s: float
    cpu_cycles: float
    gpu_cycles: float

    def __post_init__(self) -> None:
        if self.start_offset_s < 0.0:
            raise ConfigurationError("frame offsets must be non-negative")
        if self.cpu_cycles <= 0.0 or self.gpu_cycles <= 0.0:
            raise ConfigurationError("frame cycle counts must be positive")


def load_trace(path: str | pathlib.Path) -> tuple[FrameRecord, ...]:
    """Read a frame trace CSV (header optional)."""
    records = []
    with pathlib.Path(path).open() as handle:
        for row in csv.reader(handle):
            if not row or row[0].strip().lower().startswith(("start", "#")):
                continue
            if len(row) != 3:
                raise ConfigurationError(f"malformed trace row: {row}")
            records.append(
                FrameRecord(float(row[0]), float(row[1]), float(row[2]))
            )
    if not records:
        raise ConfigurationError(f"empty frame trace: {path}")
    offsets = [r.start_offset_s for r in records]
    if offsets != sorted(offsets):
        raise ConfigurationError("frame offsets must be non-decreasing")
    return tuple(records)


class ReplayApp(Application):
    """Replays a recorded frame trace through the CPU->GPU pipeline."""

    def __init__(
        self,
        name: str,
        frames: Sequence[FrameRecord],
        cluster: str | None = None,
        pipeline_depth: int = 2,
        loop: bool = False,
    ) -> None:
        super().__init__(name)
        if not frames:
            raise ConfigurationError("replay needs at least one frame")
        if pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        self._frames = tuple(frames)
        self._cluster = cluster
        self._depth = pipeline_depth
        self._loop = loop
        self.fps = FpsMeter()
        self._task = None
        self._cursor = 0
        self._loop_offset_s = 0.0
        self._in_flight = 0
        self._frame_id = 0

    @classmethod
    def from_csv(cls, name: str, path, **kwargs) -> "ReplayApp":
        """Build directly from a trace file."""
        return cls(name, load_trace(path), **kwargs)

    def on_attach(self) -> None:
        kernel = self.ctx.kernel
        cluster = self._cluster or kernel.platform.big_cluster.name
        self._task = kernel.spawn(self.name, cluster=cluster)

    def pids(self) -> list[int]:
        return [self._task.pid] if self._task is not None else []

    @property
    def finished(self) -> bool:
        """Whether the (non-looping) trace has been fully issued."""
        return not self._loop and self._cursor >= len(self._frames)

    def step(self, now_s: float, dt_s: float) -> None:
        while self._in_flight < self._depth:
            if self._cursor >= len(self._frames):
                if not self._loop:
                    return
                trace_span = self._frames[-1].start_offset_s
                self._loop_offset_s += trace_span + 1e-3
                self._cursor = 0
            record = self._frames[self._cursor]
            if record.start_offset_s + self._loop_offset_s > now_s:
                return
            self._cursor += 1
            self._frame_id += 1
            self._in_flight += 1
            self._task.add_work(
                record.cpu_cycles, tag=(self.name, self._frame_id, record.gpu_cycles)
            )

    def on_cpu_complete(self, tag: tuple, now_s: float) -> None:
        _, frame_id, gpu_cycles = tag
        self.ctx.kernel.gpu.submit(
            self.name, gpu_cycles, tag=(self.name, frame_id)
        )

    def on_gpu_complete(self, tag: tuple, now_s: float) -> None:
        self._in_flight -= 1
        self.fps.record(now_s)

    def metrics(self) -> dict:
        return {
            "frames": self.fps.frame_count,
            "issued": self._frame_id,
            "finished": self.finished,
        }
