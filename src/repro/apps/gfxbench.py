"""GPU benchmark applications: 3DMark (GT1/GT2) and Nenamark3 models.

These drive the Odroid-XU3 experiments of Section IV.C:

* :class:`ThreeDMarkApp` — two back-to-back graphics tests rendered
  off-screen (uncapped frame rate).  GT2 frames cost roughly twice GT1
  frames, reproducing the paper's 97 vs 51 FPS split.
* :class:`NenamarkApp` — a benchmark whose difficulty ramps continuously;
  it terminates once the achieved frame rate falls below a threshold, and
  its score is the number of *levels* survived (the paper reports 3.5 / 3.4
  / 3.5 levels).
"""

from __future__ import annotations

from repro.apps.frames import FrameApp, FrameWorkload
from repro.errors import AnalysisError, ConfigurationError


class ThreeDMarkApp(FrameApp):
    """3DMark model: Graphics Test 1 then Graphics Test 2."""

    def __init__(
        self,
        name: str = "3dmark",
        gt1_duration_s: float = 120.0,
        gt2_duration_s: float = 120.0,
        gt1_gpu_cycles: float = 6.1e6,
        gt2_gpu_cycles: float = 11.6e6,
        gt1_cpu_cycles: float = 16.0e6,
        gt2_cpu_cycles: float = 18.0e6,
    ) -> None:
        if gt1_duration_s <= 0.0 or gt2_duration_s <= 0.0:
            raise ConfigurationError("test durations must be positive")
        workload = FrameWorkload(
            cpu_cycles_per_frame=gt1_cpu_cycles,
            gpu_cycles_per_frame=gt1_gpu_cycles,
            target_fps=1000.0,  # off-screen rendering: effectively uncapped
            sigma=0.08,
            pipeline_depth=3,
        )
        super().__init__(name, workload)
        self.gt1_duration_s = gt1_duration_s
        self.gt2_duration_s = gt2_duration_s
        self._gt1 = (gt1_cpu_cycles, gt1_gpu_cycles)
        self._gt2 = (gt2_cpu_cycles, gt2_gpu_cycles)

    @property
    def total_duration_s(self) -> float:
        """Length of the full benchmark."""
        return self.gt1_duration_s + self.gt2_duration_s

    def _mean_cycles(self, now_s: float) -> tuple[float, float]:
        if now_s < self.gt1_duration_s:
            return self._gt1
        return self._gt2

    def gt1_fps(self, settle_s: float = 10.0) -> float:
        """Median FPS of Graphics Test 1 (skipping the cold start)."""
        return self.fps.median_fps(start_s=settle_s, end_s=self.gt1_duration_s)

    def gt2_fps(self, settle_s: float = 10.0) -> float:
        """Median FPS of Graphics Test 2."""
        return self.fps.median_fps(
            start_s=self.gt1_duration_s + settle_s, end_s=self.total_duration_s
        )

    def metrics(self) -> dict:
        out = {"frames": self.fps.frame_count}
        try:
            out["gt1_fps"] = self.gt1_fps()
            out["gt2_fps"] = self.gt2_fps()
        except AnalysisError:
            pass
        return out


class NenamarkApp(FrameApp):
    """Nenamark model: ramping difficulty until the frame rate collapses.

    Difficulty (in *levels*) grows linearly with time; the per-frame GPU
    cost grows with difficulty.  When the rolling one-second frame rate
    drops below ``threshold_fps``, the benchmark terminates and the score
    is the difficulty reached, in levels.
    """

    def __init__(
        self,
        name: str = "nenamark",
        base_gpu_cycles: float = 6.0e6,
        cpu_cycles: float = 8.0e6,
        slope_per_level: float = 0.175,
        level_duration_s: float = 40.0,
        threshold_fps: float = 60.0,
        max_levels: float = 8.0,
    ) -> None:
        if slope_per_level <= 0.0 or level_duration_s <= 0.0:
            raise ConfigurationError("slope and level duration must be positive")
        workload = FrameWorkload(
            cpu_cycles_per_frame=cpu_cycles,
            gpu_cycles_per_frame=base_gpu_cycles,
            target_fps=1000.0,  # rendered uncapped; the score is the level
            sigma=0.05,
            pipeline_depth=3,
        )
        super().__init__(name, workload)
        self.base_gpu_cycles = base_gpu_cycles
        self.slope_per_level = slope_per_level
        self.level_duration_s = level_duration_s
        self.threshold_fps = threshold_fps
        self.max_levels = max_levels
        self._terminated = False
        self._score_levels: float | None = None
        self._next_check_s = 6.0  # cold-start grace: devfreq must ramp first
        self._below_count = 0

    def difficulty_levels(self, now_s: float) -> float:
        """Difficulty (levels started) at ``now_s``."""
        return min(now_s / self.level_duration_s, self.max_levels)

    def _mean_cycles(self, now_s: float) -> tuple[float, float]:
        scale = 1.0 + self.slope_per_level * self.difficulty_levels(now_s)
        return (
            self.workload.cpu_cycles_per_frame,
            self.base_gpu_cycles * scale,
        )

    @property
    def finished(self) -> bool:
        """Whether the benchmark has terminated."""
        return self._terminated

    @property
    def score_levels(self) -> float:
        """Levels survived (0.1 granularity, as the paper reports)."""
        if self._score_levels is None:
            raise AnalysisError("nenamark has not terminated yet")
        return round(self._score_levels, 1)

    def step(self, now_s: float, dt_s: float) -> None:
        if self._terminated:
            return
        if now_s >= self._next_check_s:
            self._next_check_s = now_s + 1.0
            _, fps = self.fps.fps_series(start_s=max(now_s - 1.0, 0.0), end_s=now_s)
            if fps.size and float(fps[-1]) < self.threshold_fps:
                self._below_count += 1
            else:
                self._below_count = 0
            if self._below_count >= 2:  # two consecutive slow seconds
                self._terminated = True
                self._score_levels = self.difficulty_levels(now_s)
                return
            if self.difficulty_levels(now_s) >= self.max_levels:
                self._terminated = True
                self._score_levels = self.max_levels
                return
        super().step(now_s, dt_s)

    def metrics(self) -> dict:
        out = {"frames": self.fps.frame_count, "finished": self._terminated}
        if self._score_levels is not None:
            out["score_levels"] = self.score_levels
        return out
