"""Markov phase models for application demand.

The default :class:`~repro.apps.frames.FrameWorkload` modulates demand with
a sinusoid.  Real apps switch between discrete behavioural phases — menu,
gameplay, cutscene; browsing, scrolling, idle — with roughly exponential
dwell times.  :class:`MarkovPhaseModel` provides that alternative: a
continuous-time Markov chain over named phases, each scaling the mean
per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Phase:
    """One behavioural phase: a demand multiplier and a mean dwell time."""

    name: str
    demand_factor: float
    mean_dwell_s: float

    def __post_init__(self) -> None:
        if self.demand_factor <= 0.0:
            raise ConfigurationError(f"phase {self.name!r}: factor must be > 0")
        if self.mean_dwell_s <= 0.0:
            raise ConfigurationError(f"phase {self.name!r}: dwell must be > 0")


class MarkovPhaseModel:
    """Continuous-time Markov chain over phases (uniform jump distribution).

    Deterministic given its RNG stream; time only moves forward (``factor``
    must be called with non-decreasing ``now_s``).
    """

    def __init__(self, phases: Sequence[Phase], rng: np.random.Generator) -> None:
        if not phases:
            raise ConfigurationError("need at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate phase names: {names}")
        self._phases = tuple(phases)
        self._rng = rng
        self._current = 0
        self._next_switch_s = self._draw_dwell(0.0)

    def _draw_dwell(self, now_s: float) -> float:
        return now_s + self._rng.exponential(
            self._phases[self._current].mean_dwell_s
        )

    @property
    def current_phase(self) -> Phase:
        """The phase active at the last queried time."""
        return self._phases[self._current]

    def factor(self, now_s: float) -> float:
        """Demand multiplier at ``now_s`` (advances the chain as needed)."""
        while now_s >= self._next_switch_s and len(self._phases) > 1:
            choices = [i for i in range(len(self._phases)) if i != self._current]
            self._current = int(self._rng.choice(choices))
            self._next_switch_s = self._draw_dwell(self._next_switch_s)
        return self._phases[self._current].demand_factor


#: A ready-made gaming profile: menus, normal play, heavy action scenes.
GAME_PHASES = (
    Phase("menu", demand_factor=0.35, mean_dwell_s=6.0),
    Phase("play", demand_factor=1.0, mean_dwell_s=18.0),
    Phase("action", demand_factor=1.6, mean_dwell_s=8.0),
)

#: A browsing profile: idle reading, scroll bursts.
BROWSE_PHASES = (
    Phase("read", demand_factor=0.3, mean_dwell_s=8.0),
    Phase("scroll", demand_factor=1.5, mean_dwell_s=3.0),
)
