"""Frame-pipeline workloads and FPS measurement.

The dominant mobile workload is a render loop: per frame, a CPU stage
(game logic, layout) followed by a GPU stage (rendering), pipelined so the
CPU prepares frame *n+1* while the GPU draws frame *n*.  Achieved FPS is the
completion rate, capped by vsync.

Per-frame cost is stochastic — a lognormal factor models frame-to-frame
scene variation, and a slow sinusoidal *phase* models scene changes (menus
vs. heavy action).  This variation is what spreads the DVFS residencies that
the paper's Figures 2/4/6 report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application
from repro.errors import AnalysisError, ConfigurationError


class FpsMeter:
    """Counts frame completions and reports FPS statistics."""

    def __init__(self, bucket_s: float = 1.0) -> None:
        if bucket_s <= 0.0:
            raise ConfigurationError("FPS bucket must be positive")
        self._bucket_s = bucket_s
        self._completions: list[float] = []

    def record(self, now_s: float) -> None:
        """Register one completed frame."""
        self._completions.append(now_s)

    @property
    def frame_count(self) -> int:
        """Total frames completed."""
        return len(self._completions)

    def fps_series(
        self, start_s: float = 0.0, end_s: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bucket FPS ``(bucket_start_times, fps)``."""
        times = np.asarray(self._completions)
        if end_s is None:
            end_s = float(times[-1]) if times.size else start_s
        # The epsilon keeps float dust (start=1e-6, end=start+1) from
        # collapsing an exact whole bucket into none.
        n_buckets = int(math.floor((end_s - start_s) / self._bucket_s + 1e-9))
        if n_buckets <= 0:
            return np.empty(0), np.empty(0)
        edges = start_s + self._bucket_s * np.arange(n_buckets + 1)
        counts, _ = np.histogram(times, bins=edges)
        return edges[:-1], counts / self._bucket_s

    def median_fps(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Median of the per-second FPS — the statistic of the paper's Table I."""
        _, fps = self.fps_series(start_s, end_s)
        if fps.size == 0:
            raise AnalysisError("no complete FPS buckets in the window")
        return float(np.median(fps))

    def mean_fps(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Mean of the per-second FPS."""
        _, fps = self.fps_series(start_s, end_s)
        if fps.size == 0:
            raise AnalysisError("no complete FPS buckets in the window")
        return float(fps.mean())

    def percentile_fps(
        self, percentile: float, start_s: float = 0.0,
        end_s: float | None = None,
    ) -> float:
        """A low percentile of the per-second FPS (p5 is the jank floor)."""
        if not 0.0 <= percentile <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100]: {percentile}")
        _, fps = self.fps_series(start_s, end_s)
        if fps.size == 0:
            raise AnalysisError("no complete FPS buckets in the window")
        return float(np.percentile(fps, percentile))

    def jank_ratio(
        self, start_s: float = 0.0, end_s: float | None = None,
        threshold: float = 0.8,
    ) -> float:
        """Fraction of seconds below ``threshold`` x the median FPS.

        A smoothness metric: two runs with equal medians can feel very
        different if one of them stalls every few seconds.
        """
        _, fps = self.fps_series(start_s, end_s)
        if fps.size == 0:
            raise AnalysisError("no complete FPS buckets in the window")
        floor = threshold * float(np.median(fps))
        return float((fps < floor).mean())


@dataclass(frozen=True)
class FrameWorkload:
    """Static demand description of a frame-pipeline app.

    Cycle counts are instruction-weighted (they divide by ``ipc * freq`` on
    the CPU side).  ``phase_amp``/``phase_period_s`` modulate the mean cost
    sinusoidally; ``sigma`` is the lognormal per-frame spread.
    """

    cpu_cycles_per_frame: float
    gpu_cycles_per_frame: float
    target_fps: float = 60.0
    sigma: float = 0.25
    phase_amp: float = 0.0
    phase_period_s: float = 30.0
    pipeline_depth: int = 2
    touch_rate_hz: float = 0.0
    cpu_threads: int = 1

    def __post_init__(self) -> None:
        if self.cpu_cycles_per_frame <= 0.0 or self.gpu_cycles_per_frame <= 0.0:
            raise ConfigurationError("frame cycle counts must be positive")
        if self.target_fps <= 0.0:
            raise ConfigurationError("target_fps must be positive")
        if not 0.0 <= self.phase_amp < 1.0:
            raise ConfigurationError("phase_amp must be in [0, 1)")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.sigma < 0.0:
            raise ConfigurationError("sigma must be non-negative")


class FrameApp(Application):
    """A render-loop application driven by a :class:`FrameWorkload`."""

    def __init__(
        self,
        name: str,
        workload: FrameWorkload,
        cluster: str | None = None,
        phases=None,
    ) -> None:
        super().__init__(name)
        self.workload = workload
        self._cluster = cluster
        self._phase_spec = tuple(phases) if phases is not None else None
        self._phase_model = None
        self.fps = FpsMeter()
        self._task = None
        self._frame_id = 0
        self._in_flight = 0
        self._next_start_s = 0.0
        self._started = False
        self._frame_start_s: dict[int, float] = {}
        self._m_started = None
        self._m_completed = None
        self._m_frame_time = None

    def on_attach(self) -> None:
        kernel = self.ctx.kernel
        cluster = self._cluster or kernel.platform.big_cluster.name
        self._task = kernel.spawn(
            self.name, cluster=cluster, n_threads=self.workload.cpu_threads
        )
        metrics = getattr(kernel, "metrics", None)
        if metrics is not None:
            from repro.obs.metrics import FRAME_TIME_BUCKETS_S

            labels = {"app": self.name}
            self._m_started = metrics.counter(
                "repro_frames_started_total", "Frames entered the pipeline",
                labels=labels,
            )
            self._m_completed = metrics.counter(
                "repro_frames_completed_total", "Frames fully rendered",
                labels=labels,
            )
            self._m_frame_time = metrics.histogram(
                "repro_frame_time_seconds",
                "Simulated start-to-present latency of one frame",
                buckets=FRAME_TIME_BUCKETS_S,
                labels=labels,
            )
        if self._phase_spec is not None:
            from repro.apps.phases import MarkovPhaseModel

            self._phase_model = MarkovPhaseModel(self._phase_spec, self.ctx.rng)

    def pids(self) -> list[int]:
        return [self._task.pid] if self._task is not None else []

    # ------------------------------------------------------------ dynamics

    def _phase_factor(self, now_s: float) -> float:
        if self._phase_model is not None:
            return self._phase_model.factor(now_s)
        w = self.workload
        if w.phase_amp <= 0.0:
            return 1.0
        return 1.0 + w.phase_amp * math.sin(2.0 * math.pi * now_s / w.phase_period_s)

    def _draw_cost(self, mean_cycles: float, now_s: float) -> float:
        w = self.workload
        factor = self._phase_factor(now_s)
        if w.sigma > 0.0:
            # Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
            factor *= float(
                np.exp(self.ctx.rng.normal(-0.5 * w.sigma**2, w.sigma))
            )
        return mean_cycles * factor

    def _mean_cycles(self, now_s: float) -> tuple[float, float]:
        """Mean (cpu, gpu) cycles per frame right now; phases may override."""
        return (
            self.workload.cpu_cycles_per_frame,
            self.workload.gpu_cycles_per_frame,
        )

    def _begin_frame(self, now_s: float) -> None:
        self._frame_id += 1
        self._in_flight += 1
        self._frame_start_s[self._frame_id] = now_s
        if self._m_started is not None:
            self._m_started.inc()
        cpu_mean, _ = self._mean_cycles(now_s)
        cost = self._draw_cost(cpu_mean, now_s)
        self._task.add_work(cost, tag=(self.name, self._frame_id, "cpu"))

    def step(self, now_s: float, dt_s: float) -> None:
        w = self.workload
        if not self._started:
            self._started = True
            self._next_start_s = now_s
        if w.touch_rate_hz > 0.0:
            if self.ctx.rng.random() < w.touch_rate_hz * dt_s:
                self.ctx.kernel.input_event(now_s)
        interval = 1.0 / w.target_fps
        while self._next_start_s <= now_s and self._in_flight < w.pipeline_depth:
            self._begin_frame(now_s)
            # Vsync pacing without catch-up bursts after a stall.
            self._next_start_s = max(self._next_start_s + interval, now_s - interval)

    def on_cpu_complete(self, tag: tuple, now_s: float) -> None:
        _, frame_id, stage = tag
        if stage != "cpu":
            return
        _, gpu_mean = self._mean_cycles(now_s)
        cost = self._draw_cost(gpu_mean, now_s)
        self.ctx.kernel.gpu.submit(self.name, cost, tag=(self.name, frame_id, "gpu"))

    def on_gpu_complete(self, tag: tuple, now_s: float) -> None:
        self._in_flight -= 1
        self.fps.record(now_s)
        started_s = self._frame_start_s.pop(tag[1], None)
        if self._m_completed is not None:
            self._m_completed.inc()
            if started_s is not None:
                self._m_frame_time.observe(now_s - started_s)

    def metrics(self) -> dict:
        out = {"frames": self.fps.frame_count}
        try:
            out["median_fps"] = self.fps.median_fps(start_s=5.0)
            out["mean_fps"] = self.fps.mean_fps(start_s=5.0)
        except AnalysisError:
            pass
        return out
