"""Workload models: frame pipelines, Play-Store apps, benchmarks, batch."""

from repro.apps.base import AppContext, Application
from repro.apps.catalog import CATALOG, CatalogEntry, make_app, popular_app_names
from repro.apps.frames import FpsMeter, FrameApp, FrameWorkload
from repro.apps.gfxbench import NenamarkApp, ThreeDMarkApp
from repro.apps.mibench import (
    MIBENCH_SUITE,
    BatchApp,
    basicmath_large,
    dijkstra_large,
    fft_large,
    qsort_large,
    susan_corners,
)
from repro.apps.phases import BROWSE_PHASES, GAME_PHASES, MarkovPhaseModel, Phase
from repro.apps.replay import FrameRecord, ReplayApp, load_trace

__all__ = [
    "CATALOG",
    "MIBENCH_SUITE",
    "AppContext",
    "Application",
    "BROWSE_PHASES",
    "BatchApp",
    "CatalogEntry",
    "FpsMeter",
    "FrameApp",
    "FrameRecord",
    "FrameWorkload",
    "GAME_PHASES",
    "MarkovPhaseModel",
    "NenamarkApp",
    "Phase",
    "ReplayApp",
    "ThreeDMarkApp",
    "basicmath_large",
    "dijkstra_large",
    "fft_large",
    "qsort_large",
    "susan_corners",
    "load_trace",
    "make_app",
    "popular_app_names",
]
