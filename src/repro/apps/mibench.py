"""MiBench batch workloads — the paper's background offender and friends.

The paper runs ``basicmath large`` (BML) from MiBench (Guthaus et al.,
WWC 2001) in the background while 3DMark runs in the foreground.  BML is a
single-threaded, CPU-bound, cache-light arithmetic kernel: the model is an
unbounded task that always wants one core and reports its progress in
retired (instruction-weighted) gigacycles.

A small catalog of further MiBench kernels is provided for experiments that
need background diversity.  Compute-bound kernels are unbounded tasks;
memory-bound kernels are modelled as *rate-limited* demand (their cores
stall on DRAM, so they retire fewer instruction-weighted cycles per second
than the cluster could issue).
"""

from __future__ import annotations

from repro.apps.base import Application
from repro.errors import ConfigurationError


class BatchApp(Application):
    """A CPU batch job: unbounded, or rate-limited for memory-bound kernels.

    ``rate_gcycles_per_s`` caps the demand the job generates (None =
    compute-bound, always wants its ``n_threads`` cores).
    """

    def __init__(
        self,
        name: str,
        cluster: str | None = None,
        n_threads: int = 1,
        rate_gcycles_per_s: float | None = None,
    ) -> None:
        super().__init__(name)
        if rate_gcycles_per_s is not None and rate_gcycles_per_s <= 0.0:
            raise ConfigurationError(
                f"batch app {name!r}: rate must be positive"
            )
        self._cluster = cluster
        self._n_threads = n_threads
        self._rate = rate_gcycles_per_s
        self._task = None

    def on_attach(self) -> None:
        kernel = self.ctx.kernel
        cluster = self._cluster or kernel.platform.big_cluster.name
        self._task = kernel.spawn(
            self.name,
            cluster=cluster,
            n_threads=self._n_threads,
            unbounded=self._rate is None,
        )

    def step(self, now_s: float, dt_s: float) -> None:
        if self._rate is None:
            return
        # Rate-limited demand: inject exactly the work the (stalling) kernel
        # can retire, bounding the backlog so pauses do not cause bursts.
        backlog_cap = self._rate * 1e9 * 0.1  # at most 100 ms of work queued
        if self._task.backlog_cycles < backlog_cap:
            self._task.add_work(self._rate * 1e9 * dt_s)

    def steady(self) -> bool:
        # Unbounded batch work never steps: demand is a constant the
        # scheduler expresses through the task's `unbounded` flag.
        return self._rate is None

    def pids(self) -> list[int]:
        return [self._task.pid] if self._task is not None else []

    @property
    def pid(self) -> int:
        """Pid of the batch task."""
        return self._task.pid

    def progress_gigacycles(self) -> float:
        """Instruction-weighted work retired so far, in Gcycles."""
        return sum(self._task.cycles_by_cluster.values()) / 1e9

    def metrics(self) -> dict:
        return {
            "progress_gcycles": self.progress_gigacycles(),
            "migrations": self._task.migrations,
            "cluster": self._task.cluster,
        }


def basicmath_large(cluster: str | None = None) -> BatchApp:
    """The BML background application of Section IV.C."""
    return BatchApp("bml", cluster=cluster)


def qsort_large(cluster: str | None = None) -> BatchApp:
    """MiBench qsort: compute-bound single-threaded sorting."""
    return BatchApp("qsort", cluster=cluster)


def susan_corners(cluster: str | None = None) -> BatchApp:
    """MiBench susan (image corners): compute-bound, parallelises well."""
    return BatchApp("susan", cluster=cluster, n_threads=2)


def fft_large(cluster: str | None = None) -> BatchApp:
    """MiBench FFT: mildly memory-bound; retires ~1.6 Gcycles/s."""
    return BatchApp("fft", cluster=cluster, rate_gcycles_per_s=1.6)


def dijkstra_large(cluster: str | None = None) -> BatchApp:
    """MiBench dijkstra: pointer-chasing, heavily memory-bound."""
    return BatchApp("dijkstra", cluster=cluster, rate_gcycles_per_s=0.8)


#: Name -> factory for the modelled MiBench kernels.
MIBENCH_SUITE = {
    "bml": basicmath_large,
    "qsort": qsort_large,
    "susan": susan_corners,
    "fft": fft_large,
    "dijkstra": dijkstra_large,
}
