"""The five popular Play-Store applications of the paper's Section III.

The paper picks five of the top-30 Google Play apps: two games (Paper.io,
Stickman Hook), one shopping app (Amazon), one video-conferencing app
(Google Hangouts) and one social-media app (Facebook).  Each is modelled as
a frame pipeline whose demand statistics were calibrated on the simulated
Nexus 6P so that the *unthrottled* median frame rates match the paper's
Table I; the throttled rates then *emerge* from the simulated stock thermal
governor rather than being dialled in.

Games are GPU-dominated (their residency figures are GPU frequencies);
Amazon/Hangouts/Facebook are CPU-dominated (Figure 6 shows big-core
frequencies for Amazon).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.frames import FrameApp, FrameWorkload


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog app: its store category and calibrated demand."""

    name: str
    category: str
    kind: str  # "gpu" for games, "cpu" for UI-driven apps
    workload: FrameWorkload
    paper_fps_without: float
    paper_fps_with: float


PAPERIO = CatalogEntry(
    name="paperio",
    category="game",
    kind="gpu",
    workload=FrameWorkload(
        cpu_cycles_per_frame=8.0e6,
        gpu_cycles_per_frame=15.0e6,
        target_fps=60.0,
        sigma=0.30,
        phase_amp=0.60,
        phase_period_s=20.0,
        pipeline_depth=2,
        touch_rate_hz=1.0,
    ),
    paper_fps_without=35.0,
    paper_fps_with=23.0,
)

STICKMAN_HOOK = CatalogEntry(
    name="stickman",
    category="game",
    kind="gpu",
    workload=FrameWorkload(
        cpu_cycles_per_frame=6.0e6,
        gpu_cycles_per_frame=7.5e6,
        target_fps=60.0,
        sigma=0.22,
        phase_amp=0.38,
        phase_period_s=15.0,
        pipeline_depth=2,
        touch_rate_hz=3.0,
    ),
    paper_fps_without=59.0,
    paper_fps_with=40.0,
)

AMAZON = CatalogEntry(
    name="amazon",
    category="shopping",
    kind="cpu",
    workload=FrameWorkload(
        cpu_cycles_per_frame=88.0e6,
        gpu_cycles_per_frame=2.5e6,
        target_fps=60.0,
        sigma=0.80,
        phase_amp=0.60,
        phase_period_s=10.0,
        pipeline_depth=3,
        touch_rate_hz=0.3,
    ),
    paper_fps_without=35.0,
    paper_fps_with=28.0,
)

GOOGLE_HANGOUTS = CatalogEntry(
    name="hangouts",
    category="video-conferencing",
    kind="cpu",
    workload=FrameWorkload(
        cpu_cycles_per_frame=60.0e6,
        gpu_cycles_per_frame=4.0e6,
        target_fps=42.0,
        sigma=0.15,
        phase_amp=0.20,
        phase_period_s=25.0,
        pipeline_depth=3,
        touch_rate_hz=0.2,
    ),
    paper_fps_without=42.0,
    paper_fps_with=38.0,
)

FACEBOOK = CatalogEntry(
    name="facebook",
    category="social-media",
    kind="cpu",
    workload=FrameWorkload(
        cpu_cycles_per_frame=80.0e6,
        gpu_cycles_per_frame=8.0e6,
        target_fps=60.0,
        sigma=0.50,
        phase_amp=0.55,
        phase_period_s=12.0,
        pipeline_depth=3,
        touch_rate_hz=0.5,
    ),
    paper_fps_without=35.0,
    paper_fps_with=24.0,
)

CATALOG: dict[str, CatalogEntry] = {
    entry.name: entry
    for entry in (PAPERIO, STICKMAN_HOOK, AMAZON, GOOGLE_HANGOUTS, FACEBOOK)
}


def make_app(name: str, cluster: str | None = None) -> FrameApp:
    """Instantiate a catalog app by name, optionally pinned to a cluster."""
    entry = CATALOG[name]
    return FrameApp(entry.name, entry.workload, cluster=cluster)


def popular_app_names() -> tuple[str, ...]:
    """The five apps in the paper's Table I order."""
    return ("paperio", "stickman", "amazon", "hangouts", "facebook")
