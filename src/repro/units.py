"""Unit conventions and conversion helpers.

Internal conventions used throughout the library:

* time        — seconds (float)
* frequency   — hertz (float); OPP tables also expose kilohertz for sysfs
* voltage     — volts
* power       — watts
* energy      — joules
* temperature — kelvin inside models and analyses

The Linux-facing layers (sysfs, sensors) use the units the real kernel uses:
kilohertz for ``cpufreq`` and millidegrees Celsius for thermal zones.  The
helpers below are the only sanctioned conversion points, so unit bugs cannot
hide in ad-hoc arithmetic.
"""

from __future__ import annotations

ZERO_CELSIUS_IN_KELVIN = 273.15

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_IN_KELVIN


def kelvin_to_millicelsius(temp_k: float) -> int:
    """Convert kelvin to the integer millidegrees Celsius used by sysfs."""
    return int(round(kelvin_to_celsius(temp_k) * 1000.0))


def millicelsius_to_kelvin(temp_mc: float) -> float:
    """Convert sysfs millidegrees Celsius back to kelvin."""
    return celsius_to_kelvin(temp_mc / 1000.0)


def celsius_to_millicelsius(temp_c: float) -> int:
    """Convert degrees Celsius to the integer millidegrees used by sysfs."""
    return int(round(temp_c * 1000.0))


def millicelsius_to_celsius(temp_mc: float) -> float:
    """Convert sysfs millidegrees Celsius back to degrees Celsius."""
    return float(temp_mc) / 1000.0


def hz_to_khz(freq_hz: float) -> int:
    """Convert hertz to the integer kilohertz used by cpufreq sysfs nodes."""
    return int(round(freq_hz / KHZ))


def khz_to_hz(freq_khz: float) -> float:
    """Convert cpufreq kilohertz back to hertz."""
    return float(freq_khz) * KHZ


def mhz(value: float) -> float:
    """Express ``value`` megahertz in hertz (readable OPP-table literals)."""
    return value * MHZ


def hz_to_mhz(freq_hz: float) -> float:
    """Convert hertz to megahertz (display/debug helper)."""
    return freq_hz / MHZ


def khz_to_mhz(freq_khz: float) -> float:
    """Convert cpufreq kilohertz to megahertz (display helper)."""
    return float(freq_khz) / 1e3


def seconds_to_milliseconds(t_s: float) -> float:
    """Convert seconds to milliseconds (``/proc`` runtime fields)."""
    return t_s * 1000.0


def milliseconds_to_seconds(t_ms: float) -> float:
    """Convert milliseconds back to seconds."""
    return t_ms / 1000.0


def seconds_to_microseconds(t_s: float) -> float:
    """Convert seconds to microseconds (cpuidle/span durations)."""
    return t_s * 1e6


def microseconds_to_seconds(t_us: float) -> float:
    """Convert microseconds back to seconds."""
    return t_us / 1e6


def watts_to_microwatts(p_w: float) -> float:
    """Convert watts to the microwatts used by power-capping sysfs nodes."""
    return p_w * 1e6


def microwatts_to_watts(p_uw: float) -> float:
    """Convert microwatts back to watts."""
    return p_uw / 1e6


def joules_to_millijoules(e_j: float) -> float:
    """Convert joules to millijoules (per-frame energy figures)."""
    return e_j * 1000.0


def millijoules_to_joules(e_mj: float) -> float:
    """Convert millijoules back to joules."""
    return e_mj / 1000.0
