"""Unit conventions and conversion helpers.

Internal conventions used throughout the library:

* time        — seconds (float)
* frequency   — hertz (float); OPP tables also expose kilohertz for sysfs
* voltage     — volts
* power       — watts
* energy      — joules
* temperature — kelvin inside models and analyses

The Linux-facing layers (sysfs, sensors) use the units the real kernel uses:
kilohertz for ``cpufreq`` and millidegrees Celsius for thermal zones.  The
helpers below are the only sanctioned conversion points, so unit bugs cannot
hide in ad-hoc arithmetic.
"""

from __future__ import annotations

ZERO_CELSIUS_IN_KELVIN = 273.15

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_IN_KELVIN


def kelvin_to_millicelsius(temp_k: float) -> int:
    """Convert kelvin to the integer millidegrees Celsius used by sysfs."""
    return int(round(kelvin_to_celsius(temp_k) * 1000.0))


def millicelsius_to_kelvin(temp_mc: float) -> float:
    """Convert sysfs millidegrees Celsius back to kelvin."""
    return celsius_to_kelvin(temp_mc / 1000.0)


def hz_to_khz(freq_hz: float) -> int:
    """Convert hertz to the integer kilohertz used by cpufreq sysfs nodes."""
    return int(round(freq_hz / KHZ))


def khz_to_hz(freq_khz: float) -> float:
    """Convert cpufreq kilohertz back to hertz."""
    return float(freq_khz) * KHZ


def mhz(value: float) -> float:
    """Express ``value`` megahertz in hertz (readable OPP-table literals)."""
    return value * MHZ
