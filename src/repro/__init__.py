"""repro — reproduction of "Power and Thermal Analysis of Commercial Mobile
Platforms: Experiments and Case Studies" (Bhat, Gumussoy, Ogras; DATE 2019).

Public API layers:

* ``repro.core``     — the paper's contribution: power-temperature stability
  analysis and the application-aware thermal governor.
* ``repro.soc``      — SoC models (Snapdragon 810 / Nexus 6P, Exynos 5422 /
  Odroid-XU3, Snapdragon 821 / Pixel XL): OPP tables, power model, and the
  data-driven platform registry (see docs/PLATFORMS.md).
* ``repro.thermal``  — RC thermal networks and sensors.
* ``repro.kernel``   — Linux-like substrate: scheduler, cpufreq/devfreq
  governors, thermal zones (step_wise, IPA), virtual sysfs/procfs.
* ``repro.apps``     — workload models (Play-Store apps, 3DMark, Nenamark,
  MiBench BML).
* ``repro.sim``      — the simulation engine tying it all together.
* ``repro.analysis`` — residency/FPS/power-breakdown analysis.
* ``repro.obs``      — observability: metrics registry, span tracing,
  step profiler, run manifests and exporters (see docs/OBSERVABILITY.md).
* ``repro.experiments`` — one module per paper table/figure.

Quick start::

    from repro import Simulation, odroid_xu3
    from repro.apps import ThreeDMarkApp, basicmath_large
    from repro.core import ApplicationAwareGovernor

    sim = Simulation(odroid_xu3(), [ThreeDMarkApp(), basicmath_large()])
    governor = ApplicationAwareGovernor.for_simulation(sim)
    governor.install(sim.kernel)
    sim.run(250.0)
"""

from repro.core.fixed_point import StabilityClass, analyze, critical_power_w
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.core.stability import ODROID_XU3_LUMPED, LumpedThermalParams
from repro.errors import ReproError
from repro.kernel.kernel import Kernel, KernelConfig, ThermalConfig
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    StepProfiler,
    build_manifest,
    export_simulation,
    prometheus_text,
)
from repro.sim.engine import Simulation
from repro.soc.defs import PlatformDef
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.registry import (
    REGISTRY,
    PlatformRegistry,
    build as build_platform,
    platform_names,
)
from repro.soc.snapdragon810 import nexus6p
from repro.soc.snapdragon821 import pixel_xl

__version__ = "1.1.0"

__all__ = [
    "ODROID_XU3_LUMPED",
    "ApplicationAwareGovernor",
    "GovernorConfig",
    "Kernel",
    "KernelConfig",
    "LumpedThermalParams",
    "MetricsRegistry",
    "PlatformDef",
    "PlatformRegistry",
    "REGISTRY",
    "ReproError",
    "Simulation",
    "SpanTracer",
    "StabilityClass",
    "StepProfiler",
    "ThermalConfig",
    "analyze",
    "build_manifest",
    "build_platform",
    "critical_power_w",
    "export_simulation",
    "nexus6p",
    "odroid_xu3",
    "pixel_xl",
    "platform_names",
    "prometheus_text",
    "__version__",
]
