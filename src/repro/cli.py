"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artefacts or run one-off analyses:

* ``table1`` / ``table2`` — the paper's tables;
* ``fig7`` / ``fig8`` / ``fig9`` — the analysis/odroid figures (as text);
* ``stability --power P`` — classify one operating point;
* ``budget --limit C`` — safe dynamic power for a thermal limit;
* ``critical`` — the critical power of the Odroid-XU3 lumped model;
* ``advise --app A`` — profile a catalog app and print tuning advice;
* ``describe --platform P`` — dump a platform's thermal RC network;
* ``platforms list|describe|validate`` — inspect the platform registry:
  the device catalogue, one definition's full data (``--format json`` is
  the round-trippable PlatformDef schema of ``docs/PLATFORMS.md``), or a
  validation pass over every registered definition (``validate --file``
  checks an out-of-tree JSON definition instead);
* ``platforms excite|degrade|fit`` — the auto-calibration pipeline: record
  an identification-grade excitation trace of a registered platform,
  degrade it with a declarative sensor-pathology model (quantization,
  noise, drops, spikes, jitter), or fit a registrable PlatformDef from a
  trace alone (``docs/CALIBRATION.md``).  ``fit`` exits 2 on an unusable
  trace and 3 when the fit completed but had to demote stages;
* ``metrics --app A`` — run an app and print its Prometheus metrics
  (``--format json`` prints the canonical registry snapshot instead);
* ``trace --app A`` — run an app and print its span/ftrace event log
  (``--format json`` prints the merged event records as a JSON array);
* ``obs check`` — evaluate a declarative SLO spec (built-in name or JSON
  file, see ``docs/OBSERVABILITY.md``) against a campaign's stored fleet
  aggregate; exits non-zero on any breached rule;
* ``lint`` — domain-aware static analysis over ``src/repro`` (unit
  discipline, determinism, sysfs contract, float hygiene); exits non-zero
  on findings that are neither suppressed nor baselined.  See
  ``docs/STATIC_ANALYSIS.md``.
* ``campaign run|status|results|watch`` — expand a declarative scenario
  grid (``--spec`` JSON file or built-in ``--preset``), fan the cache
  misses out over ``--jobs`` worker processes into a content-addressed
  result store, and report per-run outcomes.  Completed runs are cached
  by scenario content, so re-running executes only the missing work and
  ``--resume`` continues an interrupted campaign.  ``run --watch`` shows
  a live in-terminal dashboard (``--no-tty`` for plain deterministic
  lines), ``run --slo`` gates the exit code on an SLO spec, and
  ``watch`` renders the dashboard for a store populated earlier.  See
  ``docs/CAMPAIGNS.md``.
* ``chaos`` — run the built-in fault-injection grid (every fault plan x
  policy x platform) and print the resilience report comparing how the
  stock and hardened proposed governors ride out each plan; exits
  non-zero if any run fails or the hardened governor overshoots the
  thermal limit by more than stock anywhere.  See ``docs/FAULTS.md``.

``table1``/``table2``/``fig8``/``fig9`` accept ``--export-dir DIR`` to dump
each underlying run's full observability bundle — ``manifest.json``,
``metrics.prom``, ``events.jsonl`` and per-channel trace CSVs (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.tables import render_table
from repro.core.budget import safe_power_budget_w
from repro.core.fixed_point import analyze, critical_power_w
from repro.core.stability import ODROID_XU3_LUMPED
from repro.soc.snapdragon810 import NEXUS6P
from repro.units import celsius_to_kelvin, hz_to_mhz, kelvin_to_celsius


def _maybe_export(args: argparse.Namespace, command: str, runs_fn) -> str:
    """Export the command's run set if ``--export-dir`` was given."""
    export_dir = getattr(args, "export_dir", None)
    if not export_dir:
        return ""
    from repro.obs.exporters import export_run_set

    export_run_set(runs_fn(args.seed), export_dir,
                   command=command, seed=args.seed)
    return f"\n\nObservability bundle exported to {export_dir}"


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.nexus import table1, table1_runs

    rows = table1(seed=args.seed)
    out = render_table(
        ["App", "FPS w/o", "FPS w/", "Reduction %", "paper w/o", "paper w/"],
        [[r.app, r.fps_without, r.fps_with, r.reduction_pct,
          r.paper_fps_without, r.paper_fps_with] for r in rows],
        title="Table I",
    )
    return out + _maybe_export(args, "table1", table1_runs)


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.odroid import table2, table2_runs

    rows = table2(seed=args.seed)
    out = render_table(
        ["Test", "Alone", "+BML", "+BML proposed", "unit"],
        [[r.test, r.alone, r.with_bml, r.with_proposed, r.unit] for r in rows],
        title="Table II",
    )
    return out + _maybe_export(args, "table2", table2_runs)


def _cmd_fig7(args: argparse.Namespace) -> str:
    from repro.experiments.fig7 import figure7

    lines = ["Figure 7: fixed-point analysis"]
    for curve in figure7():
        report = curve.report
        if report.stable_temp_k is None:
            lines.append(
                f"  P_dyn={curve.p_dyn_w:.1f} W: {report.classification.value}"
            )
        else:
            lines.append(
                f"  P_dyn={curve.p_dyn_w:.1f} W: {report.classification.value}, "
                f"T_stable={kelvin_to_celsius(report.stable_temp_k):.1f} degC "
                f"(x={report.stable_aux:.2f})"
            )
    return "\n".join(lines)


def _cmd_fig8(args: argparse.Namespace) -> str:
    from repro.experiments.odroid import figure8, figure89_runs

    lines = ["Figure 8: max temperature (degC)"]
    for scenario, series in figure8(seed=args.seed).items():
        lines.append(
            f"  {scenario:13s}: t=50s {series.at(50):5.1f}  "
            f"t=150s {series.at(150):5.1f}  end {series.final():5.1f}"
        )
    return "\n".join(lines) + _maybe_export(args, "fig8", figure89_runs)


def _cmd_fig9(args: argparse.Namespace) -> str:
    from repro.experiments.odroid import INA_RAILS, figure9, figure89_runs

    lines = ["Figure 9: power distribution"]
    for scenario, pie in figure9(seed=args.seed).items():
        shares = "  ".join(
            f"{rail}={pie.share_pct(rail):4.1f}%" for rail in INA_RAILS
        )
        lines.append(f"  {scenario:13s}: {pie.total_w:4.2f} W   {shares}")
    return "\n".join(lines) + _maybe_export(args, "fig9", figure89_runs)


def _cmd_stability(args: argparse.Namespace) -> str:
    report = analyze(ODROID_XU3_LUMPED, args.power)
    if report.stable_temp_k is None:
        return (
            f"P_dyn = {args.power:.2f} W: {report.classification.value} "
            f"(no fixed point — thermal runaway)"
        )
    return (
        f"P_dyn = {args.power:.2f} W: {report.classification.value}, "
        f"stable fixed point at {kelvin_to_celsius(report.stable_temp_k):.1f} "
        f"degC (aux x = {report.stable_aux:.3f})"
    )


def _cmd_budget(args: argparse.Namespace) -> str:
    budget = safe_power_budget_w(
        ODROID_XU3_LUMPED, celsius_to_kelvin(args.limit)
    )
    return (
        f"Safe dynamic power for a {args.limit:.1f} degC limit: {budget:.2f} W"
    )


def _build_platform(name: str):
    """Resolve a platform name through the registry, exiting nicely."""
    from repro.errors import ConfigurationError
    from repro.soc import registry as platform_registry

    try:
        return platform_registry.build(name)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_advise(args: argparse.Namespace) -> str:
    from repro.apps.catalog import CATALOG, make_app
    from repro.core.advisor import advise, render_advice
    from repro.kernel.kernel import KernelConfig
    from repro.sim.engine import Simulation

    if args.app not in CATALOG:
        raise SystemExit(f"unknown app {args.app!r}; have {sorted(CATALOG)}")
    sim = Simulation(
        _build_platform(args.platform), [make_app(args.app)],
        kernel_config=KernelConfig(), seed=args.seed,
    )
    sim.run(args.profile_s)
    return render_advice(advise(sim, args.app, t_limit_c=args.limit))


def _cmd_describe(args: argparse.Namespace) -> str:
    from repro.thermal.describe import describe_network

    return describe_network(_build_platform(args.platform).thermal)


def _run_catalog_app(args: argparse.Namespace):
    """Run one catalog app on a platform model for the obs commands."""
    from repro.apps.catalog import CATALOG, make_app
    from repro.kernel.kernel import KernelConfig
    from repro.sim.engine import Simulation

    if args.app not in CATALOG:
        raise SystemExit(f"unknown app {args.app!r}; have {sorted(CATALOG)}")
    sim = Simulation(
        _build_platform(args.platform), [make_app(args.app)],
        kernel_config=KernelConfig(), seed=args.seed, profile=args.profile,
    )
    sim.run(args.duration)
    return sim


def _cmd_metrics(args: argparse.Namespace) -> str:
    from repro.obs.exporters import prometheus_text

    sim = _run_catalog_app(args)
    if args.format == "json":
        # The canonical registry snapshot: sorted keys, sorted children —
        # the machine-readable twin of the Prometheus exposition.
        return json.dumps(
            sim.metrics.snapshot(as_of_s=sim.clock.now),
            indent=2, sort_keys=True,
        )
    out = prometheus_text(sim.metrics)
    if args.profile:
        out += "\n" + sim.profiler.report().render()
    return out


def _cmd_trace(args: argparse.Namespace) -> str:
    sim = _run_catalog_app(args)
    if args.format == "json":
        from repro.obs.exporters import iter_event_dicts

        records = list(iter_event_dicts(sim.spans, sim.kernel.tracer))
        if args.limit is not None:
            records = records[-args.limit:]
        return json.dumps(records, indent=2, sort_keys=True)
    sections = []
    spans = sim.spans.render(limit=args.limit)
    if spans:
        sections.append(f"# spans (last {args.limit})\n{spans}")
    events = sim.kernel.tracer.render()
    if events:
        sections.append(f"# kernel events\n{events}")
    if args.profile:
        sections.append(sim.profiler.report().render())
    return "\n\n".join(sections) if sections else "(no spans or events)"


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, run_lint, update_baseline
    from repro.lint.cache import default_cache_path

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"      {rule.rationale}")
        return 0
    cache_path = (
        default_cache_path() if args.cache == "" else args.cache
    )
    report = run_lint(
        targets=args.paths or None,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
        jobs=args.jobs,
        cache_path=cache_path,
    )
    if args.update_baseline:
        count = update_baseline(report, baseline_path=args.baseline)
        print(f"baseline updated: {count} entr(ies)")
        return 0
    if args.format == "sarif":
        print(report.render_sarif(), end="")
    elif args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    # Exit-code contract (docs/STATIC_ANALYSIS.md): 0 clean, 1 new
    # findings, 2 only-stale-baseline (prune with --update-baseline).
    return report.exit_code


def _load_campaign_spec(args: argparse.Namespace):
    """Resolve ``--spec FILE`` / ``--preset NAME`` into a CampaignSpec."""
    from repro.campaign import PRESETS, CampaignSpec

    if bool(args.spec) == bool(args.preset):
        raise SystemExit(
            "campaign: give exactly one of --spec FILE or --preset NAME"
        )
    if args.preset:
        try:
            return PRESETS[args.preset]()
        except KeyError:
            raise SystemExit(
                f"unknown preset {args.preset!r}; have {sorted(PRESETS)}"
            ) from None
    try:
        with open(args.spec) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"campaign: cannot read spec: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"campaign: malformed spec JSON: {exc}") from None
    return CampaignSpec.from_dict(data)


def _campaign_runner(args: argparse.Namespace, jobs: int = 1,
                     timeout_s: float | None = None, observer=None,
                     batch: bool = False):
    from repro.campaign import CampaignRunner, ResultStore

    spec = _load_campaign_spec(args)
    store = ResultStore(args.store)
    return CampaignRunner(
        spec, store, jobs=jobs, timeout_s=timeout_s, observer=observer,
        batch=batch,
    )


def _resolve_slo_arg(ref):
    """Resolve an ``--slo`` value, exiting nicely on a bad reference."""
    from repro.errors import ConfigurationError
    from repro.obs.telemetry import resolve_slo

    if ref is None:
        return None
    try:
        return resolve_slo(ref)
    except ConfigurationError as exc:
        raise SystemExit(f"slo: {exc}") from None


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    slo = _resolve_slo_arg(args.slo)
    observer = None
    if args.watch:
        from repro.obs.telemetry import WatchView

        observer = WatchView(
            tty=False if args.no_tty else None, slo=slo
        )
    runner = _campaign_runner(
        args, jobs=args.jobs, timeout_s=args.timeout, observer=observer,
        batch=args.batch,
    )
    if args.resume and runner.store.load_campaign_manifest(runner.spec.name) is None:
        raise SystemExit(
            f"campaign: nothing to resume — no manifest for "
            f"{runner.spec.name!r} under {args.store}"
        )
    report = runner.run()
    print(report.render_json() if args.format == "json"
          else report.render_text())
    slo_ok = True
    if slo is not None and runner.last_aggregate is not None:
        verdict = slo.evaluate(runner.last_aggregate)
        slo_ok = verdict.ok
        print(verdict.render_text())
    return 0 if report.ok and slo_ok else 1


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import aggregate_block

    slo = _resolve_slo_arg(args.slo)
    runner = _campaign_runner(args)
    aggregate = runner.aggregate()
    if args.format == "json":
        payload = aggregate.to_dict()
        payload.pop("snapshot", None)  # bulky; `telemetry.json` has it
        if slo is not None:
            payload["slo"] = slo.evaluate(aggregate).to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    total = len(aggregate.samples)
    pending = int(aggregate.scalar("runs_pending"))
    lines = [f"campaign {runner.spec.name}: {total - pending}/{total} resolved"]
    lines += aggregate_block(aggregate, slo=slo, stragglers=False)
    print("\n".join(lines))
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    runner = _campaign_runner(args)
    report = runner.status()
    print(report.render_json() if args.format == "json"
          else report.render_text())
    return 0


def _cmd_campaign_results(args: argparse.Namespace) -> int:
    runner = _campaign_runner(args)
    results = runner.results()
    missing = [run.run_id for run in runner.runs if run.run_id not in results]
    if args.format == "json":
        payload = {
            "name": runner.spec.name,
            "results": {rid: res.to_dict() for rid, res in results.items()},
            "missing": missing,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for run in runner.runs:
        result = results.get(run.run_id)
        if result is None:
            continue
        fps = "  ".join(f"{app}={val:.1f}" for app, val in sorted(result.fps.items()))
        faults = "-"
        if result.fault_plan is not None:
            faults = f"{result.fault_plan} ({len(result.faults_injected)})"
        rows.append([
            run.run_id, result.policy, f"{result.peak_temp_c:.1f}",
            f"{result.end_temp_c:.1f}", f"{result.mean_power_w:.2f}", fps,
            faults,
        ])
    out = render_table(
        ["run", "policy", "peak degC", "end degC", "mean W", "median FPS",
         "faults"],
        rows, title=f"Campaign {runner.spec.name}: cached results",
    )
    if missing:
        out += f"\n{len(missing)} run(s) not cached yet: " + ", ".join(missing)
    print(out)
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore
    from repro.errors import ConfigurationError
    from repro.obs.telemetry import CampaignAggregate

    slo = _resolve_slo_arg(args.slo)
    store = ResultStore(args.store)
    data = store.load_aggregate(args.campaign)
    if data is None:
        raise SystemExit(
            f"obs check: no aggregate for campaign {args.campaign!r} under "
            f"{args.store} — run `repro campaign run` first"
        )
    try:
        aggregate = CampaignAggregate.from_dict(data)
    except ConfigurationError as exc:
        raise SystemExit(f"obs check: {exc}") from None
    report = slo.evaluate(aggregate)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True)
          if args.format == "json" else report.render_text())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner, ResultStore
    from repro.campaign.presets import chaos_campaign
    from repro.faults.report import resilience_report

    spec = chaos_campaign(duration_s=args.duration, seed=args.seed)
    runner = CampaignRunner(
        spec, ResultStore(args.store), jobs=args.jobs, timeout_s=args.timeout
    )
    campaign = runner.run()
    resilience = resilience_report(runner.runs, runner.results())
    if args.format == "json":
        payload = {
            "campaign": campaign.to_dict(),
            "resilience": resilience.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(campaign.render_text())
        print()
        print(resilience.render_text())
    return 0 if campaign.ok and not resilience.hardening_regressions() else 1


def _cmd_platforms_list(args: argparse.Namespace) -> str:
    from repro.soc import registry as platform_registry

    if args.format == "json":
        payload = {
            name: platform_registry.get(name).to_dict()
            for name in platform_registry.platform_names()
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    rows = []
    for name in platform_registry.platform_names():
        pdef = platform_registry.get(name)
        spec = pdef.compile()
        thermal = pdef.stock_thermal_config()
        rows.append([
            name,
            str(spec.extras.get("soc", "?")),
            "+".join(c.name for c in spec.clusters),
            str(len(spec.thermal.nodes)),
            thermal.kind,
            f"{pdef.default_t_limit_c:.0f}",
        ])
    return render_table(
        ["platform", "soc", "clusters", "nodes", "stock policy", "limit degC"],
        rows, title="Registered platforms",
    )


def _cmd_platforms_describe(args: argparse.Namespace) -> str:
    from repro.errors import ConfigurationError
    from repro.soc import registry as platform_registry
    from repro.thermal.describe import describe_network

    try:
        pdef = platform_registry.get(args.platform)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    if args.format == "json":
        return json.dumps(pdef.to_dict(), indent=2, sort_keys=True)
    spec = pdef.compile()
    thermal = pdef.stock_thermal_config()
    lines = [f"{pdef.name}: " + ", ".join(
        f"{k}={v}" for k, v in sorted(spec.extras.items())
        if isinstance(v, str)
    )]
    for cluster in spec.clusters:
        role = "LITTLE" if cluster.is_little else ("big" if cluster.is_big else "mid")
        lines.append(
            f"  cluster {cluster.name} ({cluster.core_type}, {role}): "
            f"{cluster.n_cores}x {hz_to_mhz(cluster.opps.min_freq_hz):.0f}-"
            f"{hz_to_mhz(cluster.opps.max_freq_hz):.0f} MHz"
        )
    lines.append(
        f"  gpu {spec.gpu.name} ({spec.gpu.gpu_type}): "
        f"{hz_to_mhz(spec.gpu.opps.min_freq_hz):.0f}-"
        f"{hz_to_mhz(spec.gpu.opps.max_freq_hz):.0f} MHz"
    )
    lines.append(
        f"  sensors: " + ", ".join(s.name for s in spec.sensors)
    )
    lines.append(
        f"  stock policy: {thermal.kind} on {thermal.sensor}, "
        f"limit {pdef.default_t_limit_c:.1f} degC"
    )
    lines.append("")
    lines.append(describe_network(spec.thermal))
    return "\n".join(lines)


def _cmd_platforms_validate(args: argparse.Namespace) -> str:
    from repro.errors import ConfigurationError
    from repro.soc import registry as platform_registry
    from repro.soc.defs import PlatformDef

    if args.file:
        try:
            with open(args.file) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SystemExit(f"platforms: cannot read {args.file}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SystemExit(f"platforms: malformed JSON: {exc}") from None
        try:
            pdef = PlatformDef.from_dict(data)
            pdef.validate()
        except ConfigurationError as exc:
            raise SystemExit(f"platforms: invalid definition: {exc}") from None
        return f"{pdef.name}: OK"
    lines = []
    for name in platform_registry.platform_names():
        try:
            platform_registry.get(name).validate()
        except ConfigurationError as exc:
            raise SystemExit(f"platforms: {name}: {exc}") from None
        lines.append(f"{name}: OK")
    lines.append(f"{len(lines)} platform definition(s) valid")
    return "\n".join(lines)


def _cmd_platforms_excite(args: argparse.Namespace) -> str:
    from repro.calib import ExcitationConfig, run_excitation
    from repro.errors import ConfigurationError

    try:
        config = ExcitationConfig(
            dwell_s=args.dwell_s,
            max_opps_per_domain=args.max_opps,
            soak_s=args.soak_s,
            cooldown_s=args.cooldown_s,
        )
        trace = run_excitation(args.platform, seed=args.seed, config=config)
    except ConfigurationError as exc:
        raise SystemExit(f"platforms: {exc}") from None
    text = trace.to_json(indent=None) + "\n"
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            raise SystemExit(f"platforms: cannot write {args.out}: {exc}") from None
        return (
            f"{args.platform}: excitation trace "
            f"({trace.duration_s():.1f} s, {len(trace.names())} channels) "
            f"-> {args.out}"
        )
    return text.rstrip("\n")


#: Exit code for an unusable trace or degradation model (unreadable file,
#: malformed/truncated JSON, wrong wire format, absent channels).
EXIT_TRACE_ERROR = 2

#: Exit code for a fit that completed but demoted at least one stage
#: (``unfitted``/``low_confidence`` verdicts in the report).
EXIT_DEGRADED_FIT = 3


def _cmd_platforms_degrade(args: argparse.Namespace):
    from repro.calib import load_trace_file, resolve_model
    from repro.errors import CalibrationError, ConfigurationError

    try:
        trace = load_trace_file(args.trace)
        model = resolve_model(args.model)
        degraded = model.apply(trace, seed=args.seed)
    except (CalibrationError, ConfigurationError) as exc:
        print(f"platforms: {exc}", file=sys.stderr)
        return EXIT_TRACE_ERROR
    text = degraded.to_json(indent=None) + "\n"
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            raise SystemExit(
                f"platforms: cannot write {args.out}: {exc}"
            ) from None
        return (
            f"{args.trace}: degraded with {args.model!r} "
            f"(seed {args.seed}) -> {args.out}"
        )
    return text.rstrip("\n")


def _cmd_platforms_fit(args: argparse.Namespace):
    from repro.calib import fit_platform, load_trace_file
    from repro.errors import CalibrationError, ConfigurationError
    from repro.soc import registry as platform_registry

    try:
        trace = load_trace_file(args.trace)
    except CalibrationError as exc:
        print(f"platforms: bad trace: {exc}", file=sys.stderr)
        return EXIT_TRACE_ERROR
    try:
        pdef, report = fit_platform(trace, name=args.name, robust=args.robust)
    except CalibrationError as exc:
        # Only robust="off" lets stage errors propagate this far; a trace
        # defect is a trace problem, so it shares the trace exit code.
        print(f"platforms: fit failed: {exc}", file=sys.stderr)
        return EXIT_TRACE_ERROR
    except ConfigurationError as exc:
        raise SystemExit(f"platforms: fit failed: {exc}") from None
    lines = []
    if args.out:
        try:
            with open(args.out, "w") as handle:
                json.dump(pdef.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            raise SystemExit(f"platforms: cannot write {args.out}: {exc}") from None
        lines.append(f"{pdef.name}: fitted definition -> {args.out}")
    if args.register:
        try:
            platform_registry.register(pdef)
        except ConfigurationError as exc:
            raise SystemExit(f"platforms: cannot register: {exc}") from None
        lines.append(f"{pdef.name}: registered (this process)")
    if args.format == "json":
        output = json.dumps(
            {"platform": pdef.to_dict(), "report": report.to_dict()},
            indent=2, sort_keys=True,
        )
    else:
        lines.append(report.summary())
        output = "\n".join(lines)
    degraded = report.degraded()
    if degraded:
        print(output)
        names = ", ".join(f"{s.stage}={s.verdict}" for s in degraded)
        print(
            f"platforms: degraded fit ({names}); "
            f"exit {EXIT_DEGRADED_FIT}",
            file=sys.stderr,
        )
        return EXIT_DEGRADED_FIT
    return output


def _cmd_critical(args: argparse.Namespace) -> str:
    return (
        f"Critical power (Odroid-XU3, fan off): "
        f"{critical_power_w(ODROID_XU3_LUMPED):.2f} W"
    )


_EPILOG = """\
commands:
  table1     Table I: app FPS with/without thermal throttling (Nexus 6P)
  table2     Table II: benchmark scores under background load (Odroid-XU3)
  fig7       Figure 7: fixed-point stability analysis
  fig8       Figure 8: maximum temperature traces (3DMark scenarios)
  fig9       Figure 9: power distribution pies (3DMark scenarios)
  stability  classify one dynamic-power operating point
  budget     safe dynamic power for a thermal limit
  critical   critical power of the Odroid-XU3 lumped model
  advise     profile a catalog app and print tuning advice
  describe   dump a platform's thermal RC network
  platforms  list/describe/validate the registered platform definitions,
             excite one for calibration, degrade a trace with a sensor
             model, or fit a definition from a trace
  metrics    run a catalog app, print its Prometheus metrics
  trace      run a catalog app, print its span/ftrace event log
  lint       static analysis: units, determinism, sysfs paths, float ==
  campaign   run/status/results/watch of a parallel, cached campaign
  obs        check: evaluate an SLO spec against a campaign aggregate
  chaos      fault-injection grid + resilience report (docs/FAULTS.md)
"""


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, needs_seed in (
        ("table1", _cmd_table1, True),
        ("table2", _cmd_table2, True),
        ("fig7", _cmd_fig7, False),
        ("fig8", _cmd_fig8, True),
        ("fig9", _cmd_fig9, True),
        ("critical", _cmd_critical, False),
    ):
        cmd = sub.add_parser(name)
        cmd.set_defaults(fn=fn)
        if needs_seed:
            cmd.add_argument("--seed", type=int, default=3)
            cmd.add_argument(
                "--export-dir", dest="export_dir", default=None,
                help="write manifest/metrics/events/trace CSVs per run here",
            )

    stab = sub.add_parser("stability")
    stab.add_argument("--power", type=float, required=True,
                      help="dynamic power in watts")
    stab.set_defaults(fn=_cmd_stability)

    budget = sub.add_parser("budget")
    budget.add_argument("--limit", type=float, required=True,
                        help="thermal limit in degC")
    budget.set_defaults(fn=_cmd_budget)

    advise_cmd = sub.add_parser("advise")
    advise_cmd.add_argument("--app", required=True,
                            help="catalog app to profile")
    advise_cmd.add_argument("--platform", default=NEXUS6P,
                            help="registered platform to profile on")
    advise_cmd.add_argument("--limit", type=float, default=40.0,
                            help="thermal limit in degC")
    advise_cmd.add_argument("--profile-s", type=float, default=60.0,
                            dest="profile_s")
    advise_cmd.add_argument("--seed", type=int, default=3)
    advise_cmd.set_defaults(fn=_cmd_advise)

    lint_cmd = sub.add_parser("lint")
    lint_cmd.add_argument("paths", nargs="*",
                          help="files/dirs to lint (default: the repro "
                               "package)")
    lint_cmd.add_argument("--format", choices=("text", "json", "sarif"),
                          default="text")
    lint_cmd.add_argument("--baseline", default=None,
                          help="baseline file (default: the checked-in "
                               "src/repro/lint/baseline.json)")
    lint_cmd.add_argument("--no-baseline", action="store_true",
                          help="report every finding, ignoring the baseline")
    lint_cmd.add_argument("--update-baseline", action="store_true",
                          help="grandfather the current findings and exit 0")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="print the rule catalogue and exit")
    lint_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="lint files on N worker processes "
                               "(byte-identical to serial; default 1)")
    lint_cmd.add_argument("--cache", nargs="?", const="", default=None,
                          metavar="PATH",
                          help="enable the incremental cache, optionally at "
                               "PATH (bare --cache uses "
                               "~/.cache/repro-lint/cache.json; omitted = "
                               "cold run)")
    lint_cmd.set_defaults(fn=_cmd_lint)

    campaign_cmd = sub.add_parser("campaign")
    campaign_sub = campaign_cmd.add_subparsers(dest="action", required=True)
    for action, fn in (
        ("run", _cmd_campaign_run),
        ("status", _cmd_campaign_status),
        ("results", _cmd_campaign_results),
        ("watch", _cmd_campaign_watch),
    ):
        cmd = campaign_sub.add_parser(action)
        cmd.add_argument("--spec", default=None,
                         help="campaign spec JSON file (docs/CAMPAIGNS.md)")
        cmd.add_argument("--preset", default=None,
                         help="built-in campaign (chaos, fan-stop, smoke, "
                              "governor-horizon, platform-matrix, "
                              "table1-seeds)")
        cmd.add_argument("--store", default="campaign-store",
                         help="result-store directory (created on demand)")
        cmd.add_argument("--format", choices=("text", "json"), default="text")
        if action in ("run", "watch"):
            cmd.add_argument("--slo", default=None,
                             help="SLO spec: a built-in name or a JSON file "
                                  "(docs/OBSERVABILITY.md); run exits "
                                  "non-zero on breach")
        if action == "run":
            cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes (1 = run in-process)")
            cmd.add_argument("--batch", action="store_true",
                             help="stack same-platform runs into one "
                                  "vectorized stepper per worker "
                                  "(byte-identical to the scalar path)")
            cmd.add_argument("--timeout", type=float, default=None,
                             help="per-run wall-clock timeout in seconds")
            cmd.add_argument("--resume", action="store_true",
                             help="continue an interrupted campaign; errors "
                                  "if it was never started")
            cmd.add_argument("--watch", action="store_true",
                             help="show a live progress dashboard while "
                                  "the campaign runs")
            cmd.add_argument("--no-tty", action="store_true", dest="no_tty",
                             help="plain deterministic watch output (no "
                                  "escape codes; for CI logs and pipes)")
        cmd.set_defaults(fn=fn)

    obs_cmd = sub.add_parser("obs")
    obs_sub = obs_cmd.add_subparsers(dest="action", required=True)
    ocheck = obs_sub.add_parser("check")
    ocheck.add_argument("--slo", required=True,
                        help="SLO spec: a built-in name (chaos-hardening, "
                             "fps-protection) or a JSON file")
    ocheck.add_argument("--campaign", required=True,
                        help="campaign name whose aggregate to evaluate")
    ocheck.add_argument("--store", default="campaign-store",
                        help="result-store directory holding the campaign")
    ocheck.add_argument("--format", choices=("text", "json"), default="text")
    ocheck.set_defaults(fn=_cmd_obs_check)

    chaos_cmd = sub.add_parser("chaos")
    chaos_cmd.add_argument("--duration", type=float, default=25.0,
                           help="simulated seconds per run")
    chaos_cmd.add_argument("--seed", type=int, default=3)
    chaos_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes (1 = run in-process)")
    chaos_cmd.add_argument("--timeout", type=float, default=None,
                           help="per-run wall-clock timeout in seconds")
    chaos_cmd.add_argument("--store", default="campaign-store",
                           help="result-store directory (created on demand)")
    chaos_cmd.add_argument("--format", choices=("text", "json"),
                           default="text")
    chaos_cmd.set_defaults(fn=_cmd_chaos)

    describe_cmd = sub.add_parser("describe")
    describe_cmd.add_argument("--platform", required=True,
                              help="a registered platform name "
                                   "(see `repro platforms list`)")
    describe_cmd.set_defaults(fn=_cmd_describe)

    platforms_cmd = sub.add_parser("platforms")
    platforms_sub = platforms_cmd.add_subparsers(dest="action", required=True)
    plist = platforms_sub.add_parser("list")
    plist.add_argument("--format", choices=("text", "json"), default="text")
    plist.set_defaults(fn=_cmd_platforms_list)
    pdesc = platforms_sub.add_parser("describe")
    pdesc.add_argument("--platform", required=True,
                       help="a registered platform name")
    pdesc.add_argument("--format", choices=("text", "json"), default="text")
    pdesc.set_defaults(fn=_cmd_platforms_describe)
    pval = platforms_sub.add_parser("validate")
    pval.add_argument("--file", default=None,
                      help="validate this PlatformDef JSON file instead of "
                           "the registry")
    pval.set_defaults(fn=_cmd_platforms_validate)
    pexc = platforms_sub.add_parser("excite")
    pexc.add_argument("--platform", required=True,
                      help="registered platform to excite")
    pexc.add_argument("--seed", type=int, default=0,
                      help="RNG seed of the excitation run")
    pexc.add_argument("--out", default=None,
                      help="write the CalibTrace JSON here (default: stdout)")
    pexc.add_argument("--dwell-s", type=float, default=1.2,
                      help="nominal hold time per OPP step")
    pexc.add_argument("--soak-s", type=float, default=12.0,
                      help="all-out heat soak duration")
    pexc.add_argument("--cooldown-s", type=float, default=25.0,
                      help="parked cooldown duration")
    pexc.add_argument("--max-opps", type=int, default=8,
                      help="max OPPs per staircase (endpoints always kept)")
    pexc.set_defaults(fn=_cmd_platforms_excite)
    pdeg = platforms_sub.add_parser("degrade")
    pdeg.add_argument("--trace", required=True,
                      help="CalibTrace JSON file to degrade")
    pdeg.add_argument("--model", required=True,
                      help="built-in degradation model name (sysfs, "
                           "noisy-sysfs, harsh) or a DegradationModel "
                           "JSON file")
    pdeg.add_argument("--seed", type=int, default=0,
                      help="RNG seed of the degradation draws")
    pdeg.add_argument("--out", default=None,
                      help="write the degraded CalibTrace JSON here "
                           "(default: stdout)")
    pdeg.set_defaults(fn=_cmd_platforms_degrade)
    pfit = platforms_sub.add_parser("fit")
    pfit.add_argument("--trace", required=True,
                      help="CalibTrace JSON file to fit from")
    pfit.add_argument("--name", default=None,
                      help="name the fitted definition (default: from trace)")
    pfit.add_argument("--out", default=None,
                      help="write the fitted PlatformDef JSON here")
    pfit.add_argument("--register", action="store_true",
                      help="register the fitted definition in this process "
                           "(proves it compiles and does not collide)")
    pfit.add_argument("--robust", choices=("auto", "on", "off"),
                      default="auto",
                      help="fit path: auto picks robust estimators only "
                           "for degraded/misaligned traces; off restores "
                           "strict clean-trace fitting")
    pfit.add_argument("--format", choices=("text", "json"), default="text")
    pfit.set_defaults(fn=_cmd_platforms_fit)

    for name, fn in (("metrics", _cmd_metrics), ("trace", _cmd_trace)):
        cmd = sub.add_parser(name)
        cmd.add_argument("--app", default="hangouts",
                         help="catalog app to run")
        cmd.add_argument("--platform", default=NEXUS6P,
                         help="registered platform to run on")
        cmd.add_argument("--duration", type=float, default=30.0,
                         help="simulated seconds to run")
        cmd.add_argument("--seed", type=int, default=3)
        cmd.add_argument("--profile", action="store_true",
                         help="also print the step-phase wall-clock profile")
        cmd.add_argument("--format", choices=("text", "json"), default="text",
                         help="json: machine-readable output with stable "
                              "key order")
        if name == "trace":
            cmd.add_argument("--limit", type=int, default=200,
                             help="max spans to print (newest only)")
        cmd.set_defaults(fn=fn)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Command functions either return the text to print (exit code 0) or —
    for commands with meaningful exit codes, like ``lint`` — print their
    own output and return the code as an int.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    result = args.fn(args)
    if isinstance(result, int):
        return result
    print(result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
