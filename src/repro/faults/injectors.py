"""Injectors: replay a :class:`~repro.faults.plan.FaultPlan` against a sim.

A :class:`FaultController` attaches to a running
:class:`~repro.sim.engine.Simulation` as a kernel daemon ticking at the
simulation step, opening and closing each event's fault window at the
declared sim times.  All probabilistic behaviour draws from dedicated
``faults.<plan>.<index>`` streams of the scenario's
:class:`~repro.sim.rng.RngRegistry`, so a fault run is byte-reproducible at
a fixed seed and independent of how many other streams exist.

Injection mechanics per kind (see :mod:`repro.faults.plan` for semantics):

* sensor kinds wrap the targeted thermal zones' ``sensor`` attribute with
  the wrappers of :mod:`repro.faults.sensors` — which also covers the
  zones' sysfs ``temp`` nodes — and restore the original sensor when the
  window closes;
* ``sysfs_eio`` installs a :meth:`VirtualFs.add_read_fault` hook raising
  :class:`~repro.errors.SysfsError` on matching reads;
* ``governor_stall`` wraps the target daemon via
  :meth:`~repro.kernel.kernel.Kernel.wrap_daemon`;
* ``cooling_stuck`` freezes the bound cooling devices;
* ``fan_stop`` scales the thermal network's ambient conductances.

An injector whose target does not exist in the scenario (a governor stall
under the ``stock`` policy, a cooling fault under ``proposed``) arms as a
no-op: the plan still runs, nothing is injected, and the controller's
summary records zero injections for it.
"""

from __future__ import annotations

from repro.errors import FaultInjectionError, SysfsError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.sensors import DroppingSensor, SpikySensor, StuckSensor
from repro.obs.metrics import DETECTION_LATENCY_BUCKETS_S

#: Default sysfs prefix hit by ``sysfs_eio`` events without a target.
DEFAULT_EIO_PREFIX = "/sys/class/thermal"

#: Default daemon stalled by ``governor_stall`` events without a target.
DEFAULT_STALL_TARGET = "app-aware-governor"


class _Injector:
    """One event's actuator: open/close its fault window."""

    def __init__(self, event: FaultEvent, sim, rng) -> None:
        self.event = event
        self.active = False
        self._sim = sim
        self._rng = rng

    def prepare(self) -> None:
        """One-time hookup before the simulation runs (optional)."""

    def activate(self, now_s: float) -> bool:
        """Open the window; returns whether anything was actually armed."""
        raise NotImplementedError

    def deactivate(self, now_s: float) -> None:
        """Close the window and restore the pre-fault state."""
        raise NotImplementedError


class _SensorInjector(_Injector):
    """sensor_stuck / sensor_spike / sensor_dropout on thermal zones."""

    def __init__(self, event: FaultEvent, sim, rng) -> None:
        super().__init__(event, sim, rng)
        zones = sim.kernel.zones
        if event.target is not None:
            if event.target not in zones:
                raise FaultInjectionError(
                    f"{event.kind}: no thermal zone named {event.target!r}; "
                    f"have {sorted(zones)}"
                )
            self._zones = [zones[event.target]]
        else:
            self._zones = list(zones.values())
        self._saved: list[tuple[object, object]] = []

    def _wrap(self, inner):
        ev = self.event
        if ev.kind == "sensor_stuck":
            wrapper = StuckSensor(inner)
            wrapper.trigger()
            return wrapper
        if ev.kind == "sensor_spike":
            return SpikySensor(
                inner, self._rng,
                spike_probability=ev.probability,
                spike_magnitude_c=ev.magnitude_c,
            )
        return DroppingSensor(inner, self._rng, drop_probability=ev.probability)

    def activate(self, now_s: float) -> bool:
        self._saved = [(zone, zone.sensor) for zone in self._zones]
        for zone in self._zones:
            zone.sensor = self._wrap(zone.sensor)
        return True

    def deactivate(self, now_s: float) -> None:
        for zone, sensor in self._saved:
            zone.sensor = sensor
        self._saved = []


class _SysfsEioInjector(_Injector):
    """Transient -EIO on userspace reads under a path prefix."""

    def __init__(self, event: FaultEvent, sim, rng) -> None:
        super().__init__(event, sim, rng)
        self._prefix = (event.target or DEFAULT_EIO_PREFIX).rstrip("/")
        self._remove = None

    def activate(self, now_s: float) -> bool:
        prefix = self._prefix
        subtree = prefix + "/"
        probability = self.event.probability
        rng = self._rng

        def hook(path: str) -> None:
            if path == prefix or path.startswith(subtree):
                if rng.random() < probability:
                    raise SysfsError(f"[Errno 5] I/O error: {path}")

        self._remove = self._sim.kernel.fs.add_read_fault(hook)
        return True

    def deactivate(self, now_s: float) -> None:
        if self._remove is not None:
            self._remove()
            self._remove = None


class _GovernorStallInjector(_Injector):
    """The target daemon misses every tick inside the window."""

    def __init__(self, event: FaultEvent, sim, rng) -> None:
        super().__init__(event, sim, rng)
        self._target = event.target or DEFAULT_STALL_TARGET
        self._wrapped = False
        self.missed_ticks = 0

    def prepare(self) -> None:
        kernel = self._sim.kernel
        if self._target not in kernel.daemon_names():
            return  # no such daemon in this scenario: the event is inert

        def wrap(fn):
            def stalled(now_s: float) -> None:
                if self.active:
                    self.missed_ticks += 1
                    return
                fn(now_s)

            return stalled

        kernel.wrap_daemon(self._target, wrap)
        self._wrapped = True

    def activate(self, now_s: float) -> bool:
        return self._wrapped

    def deactivate(self, now_s: float) -> None:
        pass  # the wrapper keys off ``self.active``; nothing to restore


class _CoolingStuckInjector(_Injector):
    """Freeze cooling devices at their current state."""

    def __init__(self, event: FaultEvent, sim, rng) -> None:
        super().__init__(event, sim, rng)
        devices = sim.kernel.cooling_devices
        if event.target is not None:
            self._devices = [d for d in devices if d.name == event.target]
        else:
            self._devices = list(devices)

    def activate(self, now_s: float) -> bool:
        for device in self._devices:
            device.freeze()
        return bool(self._devices)

    def deactivate(self, now_s: float) -> None:
        for device in self._devices:
            device.unfreeze()


class _FanStopInjector(_Injector):
    """Degrade every node-to-ambient heat path by the event's scale."""

    def activate(self, now_s: float) -> bool:
        self._sim.thermal.set_ambient_conductance_scale(self.event.scale)
        return True

    def deactivate(self, now_s: float) -> None:
        self._sim.thermal.set_ambient_conductance_scale(1.0)


_INJECTORS = {
    "sensor_stuck": _SensorInjector,
    "sensor_spike": _SensorInjector,
    "sensor_dropout": _SensorInjector,
    "sysfs_eio": _SysfsEioInjector,
    "governor_stall": _GovernorStallInjector,
    "cooling_stuck": _CoolingStuckInjector,
    "fan_stop": _FanStopInjector,
}


class FaultController:
    """Drives a plan's fault windows from the simulation clock.

    Parameters
    ----------
    plan:
        The fault plan to replay.
    sim:
        The simulation to attach to (before ``sim.run``).
    governor:
        The scenario's :class:`~repro.core.governor.ApplicationAwareGovernor`
        when one is installed; used after the run to compute detection
        latencies from its :attr:`detections` log.
    """

    def __init__(self, plan: FaultPlan, sim, governor=None) -> None:
        self.plan = plan
        self._sim = sim
        self._governor = governor
        self._injectors = [
            _INJECTORS[event.kind](
                event, sim, sim.rng.stream(f"faults.{plan.name}.{index}")
            )
            for index, event in enumerate(plan.events)
        ]
        #: (activation sim time, kind) of every armed event, in order.
        self.injected: list[tuple[float, str]] = []
        #: Sim-seconds from each armed activation to the governor's first
        #: subsequent detection (filled by :meth:`finalize`).
        self.detection_latencies_s: list[float] = []
        self._metrics = sim.metrics
        self._m_latency = sim.metrics.histogram(
            "repro_fault_detection_latency_seconds",
            "Sim-time from fault activation to first governor detection",
            buckets=DETECTION_LATENCY_BUCKETS_S,
        )

    def attach(self) -> None:
        """Register the controller daemon; call before ``sim.run``."""
        for injector in self._injectors:
            injector.prepare()
        self._sim.kernel.register_daemon(
            "fault-controller", self._sim.clock.dt, self._tick
        )

    def _tick(self, now_s: float) -> None:
        for injector in self._injectors:
            event = injector.event
            if not injector.active and event.start_s <= now_s < event.end_s:
                armed = injector.activate(now_s)
                injector.active = True
                if armed:
                    self.injected.append((now_s, event.kind))
                    self._metrics.counter(
                        "repro_faults_injected_total",
                        "Fault-plan events activated by the fault controller",
                        labels={"kind": event.kind},
                    ).inc()
            elif injector.active and now_s >= event.end_s:
                injector.deactivate(now_s)
                injector.active = False

    def finalize(self, now_s: float) -> None:
        """Close any still-open windows and compute detection latencies."""
        for injector in self._injectors:
            if injector.active:
                injector.deactivate(now_s)
                injector.active = False
        if self._governor is None:
            return
        detections = self._governor.detections
        for start_s, _kind in self.injected:
            first = next(
                (d.time_s for d in detections if d.time_s >= start_s), None
            )
            if first is not None:
                latency = first - start_s
                self.detection_latencies_s.append(latency)
                self._m_latency.observe(latency)

    def summary(self) -> dict:
        """Post-run facts for :class:`~repro.sim.experiment.ScenarioResult`."""
        return {
            "fault_plan": self.plan.name,
            "faults_injected": tuple(self.injected),
        }
