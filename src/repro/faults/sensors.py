"""Faulty-sensor wrappers.

Thermal governors live or die by their sensors; real TMUs glitch, stick and
drop samples.  These wrappers decorate a :class:`TemperatureSensor` with
fault behaviours so the robustness of governors can be tested:

* :class:`StuckSensor` — freezes at the value read at the fault time;
* :class:`SpikySensor` — injects occasional large positive spikes;
* :class:`DroppingSensor` — intermittently repeats the last good reading
  (sample drops on the I2C/ADC path).

All wrappers expose the same ``read_c`` / ``read_millicelsius`` interface,
so they slot anywhere a sensor is used — in particular as a thermal zone's
``sensor`` attribute, which also covers the zone's sysfs ``temp`` node.

The probabilistic wrappers take an explicit :class:`numpy.random.Generator`;
the :class:`~repro.faults.injectors.FaultController` threads a
:class:`~repro.sim.rng.RngRegistry` stream through so fault runs are
byte-reproducible at a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.sensors import TemperatureSensor
from repro.units import celsius_to_millicelsius


class _SensorWrapper:
    """Delegating base: behaves like the wrapped sensor."""

    def __init__(self, inner: TemperatureSensor) -> None:
        self._inner = inner

    @property
    def name(self) -> str:
        """Name of the underlying sensor."""
        return self._inner.name

    @property
    def node(self) -> str:
        """Observed thermal node of the underlying sensor."""
        return self._inner.node

    @property
    def inner(self) -> TemperatureSensor:
        """The wrapped sensor (for un-wrapping when a fault window closes)."""
        return self._inner

    def read_c(self) -> float:
        raise NotImplementedError

    def read_millicelsius(self) -> int:
        """Reading in the sysfs millidegree unit."""
        return celsius_to_millicelsius(self.read_c())


class StuckSensor(_SensorWrapper):
    """Returns live values until ``trigger()``, then freezes."""

    def __init__(self, inner: TemperatureSensor) -> None:
        super().__init__(inner)
        self._stuck_at: float | None = None

    def trigger(self) -> None:
        """Freeze at the next reading."""
        self._stuck_at = self._inner.read_c()

    @property
    def stuck(self) -> bool:
        """Whether the fault is active."""
        return self._stuck_at is not None

    def clear(self) -> None:
        """Remove the fault."""
        self._stuck_at = None

    def read_c(self) -> float:
        if self._stuck_at is not None:
            return self._stuck_at
        return self._inner.read_c()


class SpikySensor(_SensorWrapper):
    """Injects positive spikes with a given probability per read."""

    def __init__(
        self,
        inner: TemperatureSensor,
        rng: np.random.Generator,
        spike_probability: float = 0.01,
        spike_magnitude_c: float = 25.0,
    ) -> None:
        super().__init__(inner)
        if not 0.0 <= spike_probability <= 1.0:
            raise ConfigurationError("spike probability must be in [0, 1]")
        if spike_magnitude_c < 0.0:
            raise ConfigurationError("spike magnitude must be non-negative")
        self._rng = rng
        self.spike_probability = spike_probability
        self.spike_magnitude_c = spike_magnitude_c
        self.spikes_emitted = 0

    def read_c(self) -> float:
        value = self._inner.read_c()
        if self._rng.random() < self.spike_probability:
            self.spikes_emitted += 1
            value += self.spike_magnitude_c
        return value


class SeriesSensor:
    """A sensor stand-in that replays a recorded series, one value per read.

    The fault wrappers above were built for live thermal-zone sensors; this
    adapter lets already-recorded arrays (a :class:`~repro.calib.trace.
    CalibTrace` channel, in :mod:`repro.calib.degrade`) flow through the
    exact same spike/drop code paths instead of reimplementing them.
    Reading past the end of the series raises ``StopIteration``.
    """

    def __init__(self, name: str, values) -> None:
        self._name = str(name)
        self._values = iter(np.asarray(values, dtype=float))

    @property
    def name(self) -> str:
        """Channel name the series came from."""
        return self._name

    @property
    def node(self) -> str:
        """Thermal-node alias: the channel name (no zone backs a replay)."""
        return self._name

    def read_c(self) -> float:
        return float(next(self._values))

    def read_millicelsius(self) -> int:
        """Reading in the sysfs millidegree unit."""
        return celsius_to_millicelsius(self.read_c())


class DroppingSensor(_SensorWrapper):
    """Repeats the last good reading with a given probability per read."""

    def __init__(
        self,
        inner: TemperatureSensor,
        rng: np.random.Generator,
        drop_probability: float = 0.2,
    ) -> None:
        super().__init__(inner)
        if not 0.0 <= drop_probability <= 1.0:
            raise ConfigurationError("drop probability must be in [0, 1]")
        self._rng = rng
        self.drop_probability = drop_probability
        self._last_good: float | None = None
        self.drops = 0

    def read_c(self) -> float:
        if self._last_good is not None and self._rng.random() < self.drop_probability:
            self.drops += 1
            return self._last_good
        self._last_good = self._inner.read_c()
        return self._last_good
