"""Resilience report: how each policy rides out each fault plan.

Consumes the results of the ``chaos`` campaign preset (any campaign with a
``faults.plan`` axis works) and groups them into per-(platform, plan) cells
comparing the stock and hardened proposed policies on:

* peak temperature and its *excess* over the platform's thermal limit —
  the quantity the hardening acceptance property bounds;
* the worst foreground frame rate (how much performance the fault cost);
* time spent in failsafe mode and the number of fault events that armed.

:func:`resilience_report` builds the structured report;
:meth:`ResilienceReport.hardening_regressions` lists the cells where the
hardened governor overshot the limit by *more* than stock did — the set
the ``chaos`` acceptance test requires to be empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.campaign.spec import CampaignRun
from repro.sim.experiment import ScenarioResult
from repro.soc import registry as platform_registry

#: Tolerance on the excess comparison: transient sensor noise may move the
#: peak by a fraction of a degree between otherwise identical runs.
EXCESS_TOLERANCE_C = 0.25


@dataclass(frozen=True)
class ResilienceRow:
    """One campaign run viewed through the resilience lens."""

    platform: str
    fault_plan: str
    policy: str
    t_limit_c: float
    peak_temp_c: float
    excess_c: float
    min_fps: float | None
    failsafe_s: float
    faults_injected: int

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "platform": self.platform,
            "fault_plan": self.fault_plan,
            "policy": self.policy,
            "t_limit_c": self.t_limit_c,
            "peak_temp_c": self.peak_temp_c,
            "excess_c": self.excess_c,
            "min_fps": self.min_fps,
            "failsafe_s": self.failsafe_s,
            "faults_injected": self.faults_injected,
        }


@dataclass(frozen=True)
class ResilienceReport:
    """All resilience rows of one campaign, in grid order."""

    rows: tuple[ResilienceRow, ...]

    def hardening_regressions(
        self, tolerance_c: float = EXCESS_TOLERANCE_C
    ) -> list[tuple[str, str, float, float]]:
        """Cells where 'proposed' overshot the limit by more than 'stock'.

        Returns ``(platform, fault_plan, stock_excess_c, proposed_excess_c)``
        for every (platform, plan) cell with both policies present where
        the hardened governor's excess beats stock's by over ``tolerance_c``.
        An empty list is the acceptance property holding.
        """
        by_cell: dict[tuple[str, str], dict[str, ResilienceRow]] = {}
        for row in self.rows:
            by_cell.setdefault((row.platform, row.fault_plan), {})[
                row.policy
            ] = row
        regressions = []
        for (platform, plan), cell in sorted(by_cell.items()):
            stock = cell.get("stock")
            proposed = cell.get("proposed")
            if stock is None or proposed is None:
                continue
            if proposed.excess_c > stock.excess_c + tolerance_c:
                regressions.append(
                    (platform, plan, stock.excess_c, proposed.excess_c)
                )
        return regressions

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CLI's ``--format json`` payload)."""
        return {
            "rows": [row.to_dict() for row in self.rows],
            "hardening_regressions": [
                list(r) for r in self.hardening_regressions()
            ],
        }

    def render_json(self) -> str:
        """Pretty-printed JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Aligned table plus the acceptance-property verdict."""
        from repro.analysis.tables import render_table

        table_rows = []
        for row in self.rows:
            table_rows.append([
                row.platform,
                row.fault_plan,
                row.policy,
                f"{row.peak_temp_c:.2f}",
                f"{row.excess_c:.2f}",
                "-" if row.min_fps is None else f"{row.min_fps:.1f}",
                f"{row.failsafe_s:.1f}",
                row.faults_injected,
            ])
        table = render_table(
            [
                "platform", "fault plan", "policy", "peak C", "excess C",
                "min fps", "failsafe s", "injected",
            ],
            table_rows,
            title="Resilience report",
        )
        regressions = self.hardening_regressions()
        if not regressions:
            verdict = (
                "hardening property holds: proposed never exceeds the limit "
                "by more than stock"
            )
        else:
            cells = ", ".join(
                f"{platform}/{plan} (stock {stock:.2f} C vs "
                f"proposed {proposed:.2f} C)"
                for platform, plan, stock, proposed in regressions
            )
            verdict = f"hardening REGRESSION in {cells}"
        return f"{table}\n{verdict}"


def resilience_report(
    runs: Sequence[CampaignRun],
    results: Mapping[str, ScenarioResult],
) -> ResilienceReport:
    """Build the report from expanded runs and their cached results.

    ``runs`` comes from :meth:`CampaignSpec.expand` (or
    :attr:`CampaignRunner.runs`); ``results`` maps run ids to results as
    returned by :meth:`CampaignRunner.results`.  Runs without a result
    (failed or not yet executed) and runs without a fault plan are skipped.
    """
    rows = []
    for run in runs:
        result = results.get(run.run_id)
        if result is None or result.fault_plan is None:
            continue
        scenario = run.scenario
        limit_c = (
            scenario.t_limit_c
            if scenario.t_limit_c is not None
            else platform_registry.get(scenario.platform).default_t_limit_c
        )
        rows.append(
            ResilienceRow(
                platform=scenario.platform,
                fault_plan=result.fault_plan,
                policy=scenario.policy,
                t_limit_c=limit_c,
                peak_temp_c=result.peak_temp_c,
                excess_c=max(0.0, result.peak_temp_c - limit_c),
                min_fps=min(result.fps.values()) if result.fps else None,
                failsafe_s=result.failsafe_s,
                faults_injected=len(result.faults_injected),
            )
        )
    return ResilienceReport(rows=tuple(rows))
