"""Fault injection: declarative, seed-deterministic chaos for the simulator.

The package splits into:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` /
  :class:`FaultEvent` schema (JSON round-trip, validated at construction)
  and the built-in plan library;
* :mod:`repro.faults.sensors` — faulty-sensor wrappers (stuck, spiky,
  dropping) layered over any :class:`~repro.thermal.sensors.ThermalSensor`;
* :mod:`repro.faults.injectors` — the :class:`FaultController` daemon that
  replays a plan against a live simulation;
* :mod:`repro.faults.report` — the resilience report comparing policies
  across fault plans.

The hardened governor side (watchdog, plausibility filter, retry/backoff,
failsafe mode) lives in :mod:`repro.core.governor`; the degradation ladder
is documented in ``docs/FAULTS.md``.
"""

from repro.faults.injectors import FaultController
from repro.faults.plan import (
    BUILTIN_PLANS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    builtin_plan_names,
    get_plan,
    resolve_plan,
)
from repro.faults.sensors import (
    DroppingSensor,
    SeriesSensor,
    SpikySensor,
    StuckSensor,
)

__all__ = [
    "BUILTIN_PLANS",
    "FAULT_KINDS",
    "DroppingSensor",
    "SeriesSensor",
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "SpikySensor",
    "StuckSensor",
    "builtin_plan_names",
    "get_plan",
    "resolve_plan",
]
