"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a named list of :class:`FaultEvent` windows that a
:class:`~repro.faults.injectors.FaultController` replays against a running
simulation.  Plans are pure data: they validate at construction, round-trip
through JSON (:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`) and
therefore participate in the campaign store's content-addressed cache keys.
All randomness an active fault consumes comes from the scenario's
:class:`~repro.sim.rng.RngRegistry` streams, so a fault run is byte-
reproducible at a fixed seed.

Fault kinds
-----------

``sensor_stuck``
    The targeted thermal zone's sensor freezes at the value read when the
    window opens (a latched TMU register).
``sensor_spike``
    Occasional large positive spikes (``probability`` per read,
    ``magnitude_c`` degrees) — ESD glitches on the sense line.
``sensor_dropout``
    The sensor repeats its last good reading with ``probability`` per read
    (sample drops on the I2C/ADC path).
``sysfs_eio``
    Userspace reads of any node under ``target`` (a path prefix, default
    ``/sys/class/thermal``) fail with an I/O error with ``probability`` per
    read — a flaky hwmon bus.  Kernel-internal consumers are unaffected,
    exactly as on real hardware.
``governor_stall``
    The userspace daemon named ``target`` (default ``app-aware-governor``)
    misses every tick inside the window — scheduler starvation of the
    control loop.
``cooling_stuck``
    The cooling device named ``target`` (default: all bound devices) stops
    accepting state changes and stays at its current state.
``fan_stop``
    Every node-to-ambient conductance is scaled by ``scale`` (default 0.2,
    the Odroid-XU3's fan-off/fan-on ratio) — the fan stops, or the case
    vents are blocked.
"""

from __future__ import annotations

import dataclasses
import math
import re
from dataclasses import dataclass
from typing import Mapping

from repro.errors import FaultInjectionError

#: Every fault kind an event may carry, in documentation order.
FAULT_KINDS = (
    "sensor_stuck",
    "sensor_spike",
    "sensor_dropout",
    "sysfs_eio",
    "governor_stall",
    "cooling_stuck",
    "fan_stop",
)

#: Kinds whose ``probability`` field is consulted per read.
_PROBABILISTIC_KINDS = ("sensor_spike", "sensor_dropout", "sysfs_eio")

_PLAN_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

#: An ``end_s`` at or beyond this means "until the run ends".
OPEN_END_S = 1.0e6


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: a kind, a time span and its parameters."""

    kind: str
    start_s: float
    end_s: float
    #: Kind-specific target: a zone/sensor name, a sysfs path prefix, a
    #: daemon name or a cooling-device name.  ``None`` selects the kind's
    #: documented default.
    target: str | None = None
    #: Per-read fault probability (spike/dropout/eio kinds).
    probability: float = 1.0
    #: Spike amplitude in degrees Celsius (``sensor_spike``).
    magnitude_c: float = 25.0
    #: Ambient-conductance multiplier while a ``fan_stop`` window is open.
    scale: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}"
            )
        if not math.isfinite(self.start_s) or self.start_s < 0.0:
            raise FaultInjectionError(
                f"{self.kind}: start_s must be finite and non-negative, "
                f"got {self.start_s}"
            )
        if not math.isfinite(self.end_s) or self.end_s <= self.start_s:
            raise FaultInjectionError(
                f"{self.kind}: end_s must be finite and after start_s "
                f"({self.start_s}), got {self.end_s}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultInjectionError(
                f"{self.kind}: probability must be in (0, 1], "
                f"got {self.probability}"
            )
        if self.magnitude_c < 0.0:
            raise FaultInjectionError(
                f"{self.kind}: magnitude_c must be non-negative, "
                f"got {self.magnitude_c}"
            )
        if not 0.0 < self.scale <= 1.0:
            raise FaultInjectionError(
                f"{self.kind}: scale must be in (0, 1], got {self.scale}"
            )
        if self.target is not None and (
            not isinstance(self.target, str) or not self.target
        ):
            raise FaultInjectionError(
                f"{self.kind}: target must be a non-empty string or None"
            )
        if self.kind == "sysfs_eio" and self.target is not None:
            if not self.target.startswith(("/sys", "/proc")):
                raise FaultInjectionError(
                    f"sysfs_eio target must be a /sys or /proc path prefix, "
                    f"got {self.target!r}"
                )

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultInjectionError(
                f"unknown FaultEvent field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        for required in ("kind", "start_s", "end_s"):
            if required not in data:
                raise FaultInjectionError(
                    f"FaultEvent needs a {required!r} field"
                )
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered set of fault events."""

    name: str
    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if not _PLAN_NAME_RE.match(self.name):
            raise FaultInjectionError(
                f"fault plan name {self.name!r} must match "
                f"{_PLAN_NAME_RE.pattern}"
            )
        events = tuple(
            ev if isinstance(ev, FaultEvent) else FaultEvent.from_dict(ev)
            for ev in self.events
        )
        if not events:
            raise FaultInjectionError(
                f"fault plan {self.name!r} needs at least one event"
            )
        object.__setattr__(self, "events", events)

    def to_dict(self) -> dict:
        """JSON-serialisable form — what the campaign cache key hashes."""
        return {
            "name": self.name,
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        unknown = set(data) - {"name", "events"}
        if unknown:
            raise FaultInjectionError(
                f"unknown FaultPlan field(s) {sorted(unknown)}"
            )
        if "name" not in data or "events" not in data:
            raise FaultInjectionError("FaultPlan needs 'name' and 'events'")
        return cls(name=data["name"], events=tuple(data["events"]))


def _builtin_plans() -> dict[str, FaultPlan]:
    plans = (
        FaultPlan("stuck-cold", (
            FaultEvent("sensor_stuck", start_s=4.0, end_s=OPEN_END_S),
        )),
        FaultPlan("spike-storm", (
            FaultEvent("sensor_spike", start_s=3.0, end_s=OPEN_END_S,
                       probability=0.1, magnitude_c=25.0),
        )),
        FaultPlan("dropout", (
            FaultEvent("sensor_dropout", start_s=3.0, end_s=OPEN_END_S,
                       probability=0.6),
        )),
        FaultPlan("eio-burst", (
            FaultEvent("sysfs_eio", start_s=4.0, end_s=12.0,
                       target="/sys/class/thermal", probability=1.0),
        )),
        FaultPlan("tick-stall", (
            FaultEvent("governor_stall", start_s=5.0, end_s=10.0),
        )),
        FaultPlan("cooling-stuck", (
            FaultEvent("cooling_stuck", start_s=3.0, end_s=OPEN_END_S),
        )),
        FaultPlan("fan-stop", (
            FaultEvent("fan_stop", start_s=3.0, end_s=OPEN_END_S, scale=0.2),
        )),
    )
    return {plan.name: plan for plan in plans}


#: The built-in catalogue, keyed by plan name (the ``chaos`` preset's axis).
BUILTIN_PLANS = _builtin_plans()


def builtin_plan_names() -> tuple[str, ...]:
    """Names of the built-in plans, in catalogue order."""
    return tuple(BUILTIN_PLANS)


def get_plan(name: str) -> FaultPlan:
    """Look up a built-in plan by name."""
    try:
        return BUILTIN_PLANS[name]
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault plan {name!r}; have {sorted(BUILTIN_PLANS)}"
        ) from None


def resolve_plan(value) -> FaultPlan:
    """Coerce a plan reference (FaultPlan, dict or built-in name)."""
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, Mapping):
        return FaultPlan.from_dict(value)
    if isinstance(value, str):
        return get_plan(value)
    raise FaultInjectionError(
        f"a fault plan must be a FaultPlan, its dict or a built-in name; "
        f"got {value!r}"
    )
