"""Staged estimators: from a :class:`CalibTrace` to fitted model parameters.

The identification is gray-box — the model *structure* (CV^2 f dynamic
power, De Vogeleer-style ``kappa T^2 exp(-beta/T)`` leakage, a linear RC
thermal network) is assumed, and the trace determines the numbers:

* ``dvfs.<domain>`` — per-OPP regression of rail power against
  ``V^2 f busy`` over the staircase samples where the component is active
  (cpuidle keeps the idle scale at 1 there), recovering the effective
  switched capacitance, the idle floor, and the voltage ladder endpoints
  from the regulator-telemetry channel;
* ``leakage.<domain>`` — two-step leakage fit: a non-negative joint fit
  over a beta grid separates the leakage column from the dynamic terms,
  then the *shared* log-linear estimator (:func:`fit_log_linear_leakage`,
  also used by :mod:`repro.core.calibration`) refines (kappa, beta) on the
  temperature-bias-corrected residual;
* ``memory`` — same two-step scheme against the re-derived memory activity
  (the engine's documented ``0.25 * busy/cores + 0.6 * gpu`` mix);
* ``rc`` — one-step state regression over clean record pairs recovers the
  discrete transition matrices; the matrix logarithm maps them back to
  continuous time, and a single non-negative least-squares assembly pins
  capacitances and link conductances to the declared topology;
* ``board`` — the constant rest-of-platform rail.

Each stage reports its parameters, residual, sample count, a *verdict*
and an uncertainty block in a :class:`StageFit`; :func:`fit_trace` runs
all stages and returns the :class:`FitReport` that
:mod:`repro.calib.assemble` turns into a :class:`~repro.soc.defs.
PlatformDef`.

Two fit paths share this module.  The *clean* path is the original PR 8
numerics, bit-for-bit — it runs whenever the trace is sample-aligned,
uniform and undegraded, so clean-trace fits stay byte-identical.  The
*robust* path (``robust="on"``, or ``"auto"`` on a degraded trace) builds
on :mod:`repro.calib.robust`: gap-aware grid alignment, Hampel despiking,
Huber/IRLS weighting, and per-parameter confidence grades.  Unless
``robust="off"``, a stage whose channels are missing or unusably noisy is
*demoted* to its structural prior with an ``unfitted`` verdict instead of
raising — a degraded trace never tracebacks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np
from scipy.linalg import logm
from scipy.optimize import nnls

from repro.calib import robust as rb
from repro.calib.trace import (
    BUSY_PREFIX,
    FREQ_PREFIX,
    POWER_PREFIX,
    TEMP_PREFIX,
    VOLT_PREFIX,
)
from repro.errors import CalibrationError, StabilityError
from repro.kernel.cpuidle import IDLE_BUSY_THRESHOLD
from repro.soc.power_model import memory_activity_proxy
from repro.units import celsius_to_kelvin, mhz

#: Wire-format version of the fit-report JSON schema.  The robustness
#: extension (``verdict`` / ``uncertainty`` per stage) is additive with
#: defaults, so version 1 reports from older writers still load.
FIT_REPORT_FORMAT = "repro.calib.fit_report/1"

#: Fit-path selector values accepted by :func:`fit_trace`.
ROBUST_MODES = ("auto", "on", "off")

#: Stage verdicts: ``fitted`` (trustworthy numbers), ``low_confidence``
#: (fitted but at least one parameter graded low), ``unfitted`` (stage
#: demoted to its structural prior).
VERDICTS = ("fitted", "low_confidence", "unfitted")

#: Structural-prior fallbacks used when a stage is demoted: deliberately
#: generic order-of-magnitude numbers, never tuned to any platform.
PRIOR_CLUSTER_CEFF = 2e-10
PRIOR_GPU_CEFF = 1e-9
PRIOR_IDLE_W = 0.05
PRIOR_V_MIN = 0.6
PRIOR_V_MAX = 1.0
PRIOR_LEAKAGE = {"kappa_w_per_k2": 0.0, "beta_k": 1000.0}
PRIOR_MEMORY = {"base_power_w": 0.1, "activity_power_w": 0.5}
PRIOR_NODE_CAPACITANCE = 10.0
PRIOR_LINK_CONDUCTANCE = 0.5

#: Search range for the leakage activation temperature (kelvin).
BETA_GRID_K = (600.0, 4000.0)

#: Ladder-regression residual (volts) below which the fitted OPP table is
#: emitted as a compact ``{freqs_mhz, v_min, v_max}`` ladder.
LADDER_RMS_MAX_V = 1e-3

#: Minimum clean samples a per-component regression needs.
MIN_SAMPLES = 8

#: A rail whose recorded power never moves more than this (std, watts) is
#: treated as constant and folded into the RC regression intercept.
CONSTANT_RAIL_STD_W = 1e-6


# --------------------------------------------------------------------------
# shared leakage estimator (also the backend of core.calibration.fit_leakage)
# --------------------------------------------------------------------------


def fit_log_linear_leakage(temps_k, totals_w) -> tuple[float, float]:
    """Fit ``(kappa, beta)`` to leakage totals at the reference voltage.

    Regresses ``log(P / T^2) = log kappa - beta / T`` — the De Vogeleer
    temperature-bias correction: dividing by ``T^2`` before taking logs
    keeps the regression linear in ``1/T`` and unbiased across the
    temperature range.  Raises :class:`~repro.errors.StabilityError` on
    non-positive totals or a non-physical fitted beta, exactly as the
    stability-analysis calibration always has.
    """
    temps_k = np.asarray(temps_k, dtype=float)
    totals = np.asarray(totals_w, dtype=float)
    if np.any(totals <= 0.0):
        raise StabilityError("platform has zero leakage; nothing to fit")
    y = np.log(totals / temps_k**2)
    a = np.column_stack([np.ones_like(temps_k), -1.0 / temps_k])
    coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
    kappa = float(np.exp(coeffs[0]))
    beta = float(coeffs[1])
    if beta <= 0.0:
        raise StabilityError(f"fitted beta is non-physical: {beta}")
    return kappa, beta


# --------------------------------------------------------------------------
# report containers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StageFit:
    """Result of one estimator stage.

    ``params`` holds the fitted quantities in definition-schema shape;
    ``diagnostics`` holds everything else (visited OPPs, time constants,
    condition numbers) that aids debugging but never feeds the assembly.
    ``verdict`` is one of :data:`VERDICTS`; ``uncertainty`` (robust path)
    carries ``residual_mad``, ``n_effective`` and a ``params`` mapping of
    per-parameter confidence grades
    (:data:`~repro.calib.robust.CONFIDENCE_GRADES`).
    """

    stage: str
    params: Mapping
    residual_rms: float
    n_samples: int
    diagnostics: Mapping = field(default_factory=dict)
    verdict: str = "fitted"
    uncertainty: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise CalibrationError(
                f"stage {self.stage!r}: unknown verdict {self.verdict!r}; "
                f"have {VERDICTS}"
            )

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "stage": self.stage,
            "params": dict(self.params),
            "residual_rms": self.residual_rms,
            "n_samples": self.n_samples,
            "diagnostics": dict(self.diagnostics),
            "verdict": self.verdict,
            "uncertainty": dict(self.uncertainty),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StageFit":
        """Inverse of :meth:`to_dict` (``verdict``/``uncertainty`` default
        for reports written before the robustness extension)."""
        return cls(
            stage=data["stage"],
            params=data["params"],
            residual_rms=data["residual_rms"],
            n_samples=data["n_samples"],
            diagnostics=data.get("diagnostics", {}),
            verdict=data.get("verdict", "fitted"),
            uncertainty=data.get("uncertainty", {}),
        )


class FitReport:
    """All stage results of one identification run."""

    def __init__(
        self,
        platform_hint: str = "",
        stages: tuple = (),
        warnings: tuple = (),
    ) -> None:
        self.platform_hint = str(platform_hint)
        self.stages = tuple(stages)
        self.warnings = tuple(str(w) for w in warnings)
        names = [s.stage for s in self.stages]
        if len(set(names)) != len(names):
            raise CalibrationError(f"duplicate stage names in report: {names}")

    def stage_names(self) -> list[str]:
        """Stage names in fit order."""
        return [s.stage for s in self.stages]

    def stage(self, name: str) -> StageFit:
        """Stage result by name; raises listing the available stages."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise CalibrationError(
            f"no stage {name!r} in report; have {self.stage_names()}"
        )

    def verdicts(self) -> dict[str, str]:
        """Mapping of stage name to verdict, in fit order."""
        return {s.stage: s.verdict for s in self.stages}

    def degraded(self) -> tuple[StageFit, ...]:
        """Stages that did not come out fully ``fitted``."""
        return tuple(s for s in self.stages if s.verdict != "fitted")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FitReport):
            return NotImplemented
        return (
            self.platform_hint == other.platform_hint
            and self.warnings == other.warnings
            and [s.to_dict() for s in self.stages]
            == [s.to_dict() for s in other.stages]
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "format": FIT_REPORT_FORMAT,
            "platform_hint": self.platform_hint,
            "stages": [s.to_dict() for s in self.stages],
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FitReport":
        """Inverse of :meth:`to_dict`; checks the wire-format version."""
        fmt = data.get("format")
        if fmt != FIT_REPORT_FORMAT:
            raise CalibrationError(
                f"unsupported fit-report format {fmt!r}; "
                f"this reader speaks {FIT_REPORT_FORMAT!r}"
            )
        return cls(
            platform_hint=data.get("platform_hint", ""),
            stages=tuple(StageFit.from_dict(s) for s in data.get("stages", ())),
            warnings=tuple(data.get("warnings", ())),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FitReport":
        """Parse a report from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"malformed fit-report JSON: {exc}") from None
        if not isinstance(data, dict):
            raise CalibrationError("fit-report JSON must be an object")
        return cls.from_dict(data)

    def summary(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [f"fit report: {self.platform_hint or '(unnamed platform)'}"]
        for s in self.stages:
            keys = ", ".join(
                f"{k}={v:.4g}" for k, v in s.params.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            marker = "" if s.verdict == "fitted" else f" [{s.verdict}]"
            lines.append(
                f"  {s.stage:<18} rms={s.residual_rms:.3e}  "
                f"n={s.n_samples:<5d} {keys}{marker}"
            )
        for w in self.warnings:
            lines.append(f"  warning: {w}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# trace access helpers
# --------------------------------------------------------------------------


def _grid(trace, names) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Values of ``names`` on the shared record grid.

    The staged estimators need sample-aligned channels (power, frequency
    and busy values of the *same* tick); sysfs-style logs with per-channel
    clocks must be resampled before fitting.
    """
    times = None
    values = {}
    for name in names:
        t, v = trace.series(name)
        if times is None:
            times = t
        elif t.shape != times.shape or not np.allclose(t, times):
            raise CalibrationError(
                f"channel {name!r} is not sampled on the shared record grid; "
                "the estimators need aligned channels"
            )
        values[name] = v
    return times, values


def _beta_column(volts, temps_k, beta: float) -> np.ndarray:
    return volts * temps_k**2 * np.exp(-beta / temps_k)


def _two_step_leakage(
    p, dyn_col, volts, temps_k, design_extra, warnings, what: str
) -> tuple[np.ndarray, float, float]:
    """Joint NNLS over a beta grid, then the shared log-linear refinement.

    ``design_extra`` supplies the non-leakage columns (intercept first).
    Returns ``(linear_coeffs, kappa, beta)`` with the leakage evaluated at
    the reference voltage (the ``volts`` column carries the V/v_ref bias).
    """
    def solve_at(beta: float):
        a = np.column_stack([*design_extra, dyn_col, _beta_column(volts, temps_k, beta)])
        coef, rnorm = nnls(a, p)
        return coef, rnorm

    lo, hi = BETA_GRID_K
    grid = np.linspace(lo, hi, 35)
    for _ in range(3):
        scores = [solve_at(b)[1] for b in grid]
        best = int(np.argmin(scores))
        step = grid[1] - grid[0]
        lo = max(BETA_GRID_K[0], grid[best] - step)
        hi = min(BETA_GRID_K[1], grid[best] + step)
        beta = float(grid[best])
        grid = np.linspace(lo, hi, 9)

    coef = solve_at(beta)[0]
    kappa = float(coef[-1])
    # Refinement loop: fix beta, re-solve the linear terms, re-fit
    # (kappa, beta) on the leakage residual with the shared estimator.
    for _ in range(3):
        coef = solve_at(beta)[0]
        linear = np.column_stack([*design_extra, dyn_col]) @ coef[:-1]
        totals = (p - linear) / volts
        valid = totals > 0.0
        if valid.sum() < MIN_SAMPLES:
            kappa, beta = float(coef[-1]), float(beta)
            if kappa > 1e-12:
                warnings.append(
                    f"{what}: too few positive leakage residuals; "
                    "keeping the grid-search (kappa, beta)"
                )
            break
        try:
            kappa, beta = fit_log_linear_leakage(temps_k[valid], totals[valid])
        except StabilityError:
            kappa, beta = float(coef[-1]), float(beta)
            warnings.append(
                f"{what}: leakage refinement failed; "
                "keeping the grid-search (kappa, beta)"
            )
            break
    return coef[:-1], kappa, beta


def _fit_ladder(
    prior_freqs_mhz, f_mhz, volts, warnings, what: str
) -> tuple[dict, float | None]:
    """Recover the OPP table from observed (frequency, voltage) pairs.

    When the observed pairs sit on a linear ladder (within
    :data:`LADDER_RMS_MAX_V`), emit the compact ladder block over the full
    prior frequency list; otherwise fall back to explicit points over the
    visited OPPs.
    """
    pairs = sorted({(round(float(f), 3), float(v)) for f, v in zip(f_mhz, volts)})
    if len(pairs) < 2:
        raise CalibrationError(
            f"{what}: saw {len(pairs)} distinct OPPs; a fit needs >= 2"
        )
    freqs = [p[0] for p in pairs]
    lo, hi = min(prior_freqs_mhz), max(prior_freqs_mhz)
    if abs(freqs[0] - lo) > 1e-3 or abs(freqs[-1] - hi) > 1e-3:
        warnings.append(
            f"{what}: ladder endpoints not visited; emitting explicit points"
        )
        return {"points_mhz_v": [list(p) for p in pairs]}, None
    v_min, v_max = pairs[0][1], pairs[-1][1]
    predicted = np.array([
        round(v_min + (v_max - v_min) * (f - lo) / (hi - lo), 4) for f, _ in pairs
    ])
    observed = np.array([v for _, v in pairs])
    rms = float(np.sqrt(np.mean((predicted - observed) ** 2)))
    if rms >= LADDER_RMS_MAX_V:
        warnings.append(
            f"{what}: voltages deviate from a linear ladder "
            f"(rms {rms:.2e} V); emitting explicit points"
        )
        return {"points_mhz_v": [list(p) for p in pairs]}, rms
    return {
        "freqs_mhz": [float(f) for f in prior_freqs_mhz],
        "v_min": v_min,
        "v_max": v_max,
    }, rms


# --------------------------------------------------------------------------
# per-component stages
# --------------------------------------------------------------------------


def _component_stages(
    trace, domain: str, n_units: float, rail: str, node: str,
    prior_freqs_mhz, warnings,
) -> tuple[StageFit, StageFit]:
    """``dvfs.<domain>`` and ``leakage.<domain>`` for one CPU cluster or GPU."""
    what = f"domain {domain!r}"
    _, chans = _grid(trace, [
        f"power.{rail}", f"freq.{domain}", f"volt.{domain}",
        f"busy.{domain}", f"temp.{node}",
    ])
    p = chans[f"power.{rail}"]
    freq_hz = mhz(chans[f"freq.{domain}"])
    volts = chans[f"volt.{domain}"]
    busy = np.minimum(chans[f"busy.{domain}"], n_units)
    temps_k = celsius_to_kelvin(chans[f"temp.{node}"])

    stable = np.zeros(p.size, dtype=bool)
    stable[1:] = np.abs(np.diff(freq_hz)) < 0.5
    active = busy / n_units > IDLE_BUSY_THRESHOLD
    mask = stable & active
    if mask.sum() < MIN_SAMPLES:
        raise CalibrationError(
            f"{what}: only {int(mask.sum())} clean active samples; "
            "the staircase must dwell longer or record faster"
        )

    dyn_col = (volts**2 * freq_hz * busy)[mask]
    linear, kappa, beta = _two_step_leakage(
        p[mask], dyn_col, volts[mask], temps_k[mask],
        [np.ones(int(mask.sum()))], warnings, what,
    )
    idle_w, ceff = float(linear[0]), float(linear[1])
    model = (
        idle_w + ceff * dyn_col
        + kappa * _beta_column(volts[mask], temps_k[mask], beta)
    )
    rms = float(np.sqrt(np.mean((p[mask] - model) ** 2)))

    opps, ladder_rms = _fit_ladder(
        prior_freqs_mhz, chans[f"freq.{domain}"][mask], volts[mask],
        warnings, what,
    )
    dvfs = StageFit(
        stage=f"dvfs.{domain}",
        params={
            "ceff_w_per_v2hz": ceff,
            "idle_power_w": idle_w,
            "opps": opps,
        },
        residual_rms=rms,
        n_samples=int(mask.sum()),
        diagnostics={
            "ladder_rms_v": ladder_rms,
            "visited_mhz": sorted({round(float(f), 3) for f in chans[f"freq.{domain}"][mask]}),
        },
    )
    leakage = StageFit(
        stage=f"leakage.{domain}",
        params={"kappa_w_per_k2": kappa, "beta_k": beta},
        residual_rms=rms,
        n_samples=int(mask.sum()),
        diagnostics={
            "temp_span_k": [float(temps_k[mask].min()), float(temps_k[mask].max())],
        },
    )
    return dvfs, leakage


def _memory_stage(trace, meta, warnings) -> StageFit:
    """``memory``: base + activity power and leakage of the DRAM rail.

    The memory activity is not logged; it is re-derived from the busy
    channels with the engine's documented mix — a modelling assumption a
    real calibration would replace with DRAM event counters:
    ``act = min(1, 0.25 * sum(busy) / total_cores + 0.6 * busy_gpu)``.
    """
    mem = meta["memory"]
    clusters = meta["clusters"]
    names = [f"busy.{c['name']}" for c in clusters]
    _, chans = _grid(trace, [
        f"power.{mem['rail']}", f"temp.{mem['thermal_node']}", "busy.gpu", *names,
    ])
    total_cores = sum(int(c["n_cores"]) for c in clusters)
    total_busy = np.sum([chans[n] for n in names], axis=0)
    act = memory_activity_proxy(total_busy, total_cores, chans["busy.gpu"])
    p = chans[f"power.{mem['rail']}"]
    temps_k = celsius_to_kelvin(chans[f"temp.{mem['thermal_node']}"])
    ones = np.ones(p.size)

    linear, kappa, beta = _two_step_leakage(
        p, act, ones, temps_k, [ones], warnings, "memory",
    )
    base, act_pw = float(linear[0]), float(linear[1])
    if kappa < 1e-12:
        # The rail shows no measurable temperature dependence; emit the
        # spec default so the definition stays well-formed.
        kappa, beta = 0.0, 1000.0
    model = base + act_pw * act + kappa * _beta_column(ones, temps_k, beta)
    rms = float(np.sqrt(np.mean((p - model) ** 2)))
    return StageFit(
        stage="memory",
        params={
            "base_power_w": base,
            "activity_power_w": act_pw,
            "kappa_w_per_k2": kappa,
            "beta_k": beta,
        },
        residual_rms=rms,
        n_samples=int(p.size),
        diagnostics={"activity_span": [float(act.min()), float(act.max())]},
    )


def _board_stage(trace) -> StageFit:
    """``board``: the constant rest-of-platform power, if the rail exists."""
    if "power.board" not in trace:
        return StageFit(
            stage="board", params={"board_power_w": 0.0},
            residual_rms=0.0, n_samples=0,
        )
    _, p = trace.series("power.board")
    return StageFit(
        stage="board",
        params={"board_power_w": float(np.mean(p))},
        residual_rms=float(np.std(p)),
        n_samples=int(p.size),
    )


# --------------------------------------------------------------------------
# RC-network identification
# --------------------------------------------------------------------------


def _clean_pairs(times, freq_chans, busy_chans, rail_chans) -> np.ndarray:
    """Mask of record pairs ``(k, k+1)`` usable for one-step regression.

    A pair is dirty when the recording cadence breaks, any DVFS domain
    changes frequency, any busy count moves, or any rail power jumps more
    than measurement drift explains (cpuidle gating steps, task churn).
    """
    dt = np.diff(times)
    dt_rec = float(np.median(dt))
    mask = np.abs(dt - dt_rec) < 1e-9
    for chan in freq_chans:
        mask &= np.abs(np.diff(chan)) < 0.5
    for chan in busy_chans:
        mask &= np.abs(np.diff(chan)) < 1e-9
    for chan in rail_chans:
        jump = np.abs(np.diff(chan))
        limit = np.maximum(0.01 * np.abs(chan[:-1]), 0.005)
        mask &= jump <= limit
    return mask


def _rc_stage(trace, meta, warnings) -> StageFit:
    """``rc``: capacitances and link conductances of the declared topology."""
    thermal = meta["thermal"]
    nodes = list(thermal["nodes"])
    links = [tuple(pair) for pair in thermal["links"]]
    split = thermal["power_split"]
    rails = sorted(split)
    cluster_names = [c["name"] for c in meta["clusters"]]
    domains = cluster_names + ["gpu"]

    times, chans = _grid(trace, (
        [f"temp.{n}" for n in nodes]
        + [f"power.{r}" for r in rails]
        + [f"freq.{d}" for d in domains]
        + [f"busy.{d}" for d in domains]
    ))
    temps = np.column_stack([
        celsius_to_kelvin(chans[f"temp.{n}"]) for n in nodes
    ])
    powers = {r: chans[f"power.{r}"] for r in rails}
    varying = [r for r in rails if float(np.std(powers[r])) > CONSTANT_RAIL_STD_W]
    constant = [r for r in rails if r not in varying]

    pair_mask = _clean_pairs(
        times,
        [chans[f"freq.{d}"] for d in domains],
        [chans[f"busy.{d}"] for d in domains],
        [powers[r] for r in varying],
    )
    n_pairs = int(pair_mask.sum())
    n = len(nodes)
    if n_pairs < 10 * (n + len(varying) + 1):
        raise CalibrationError(
            f"rc: only {n_pairs} clean record pairs for "
            f"{n + len(varying) + 1} regressors; record a longer trace"
        )
    dt_rec = float(np.median(np.diff(times)))

    q = np.column_stack([powers[r] for r in varying]) if varying else np.empty((temps.shape[0], 0))
    design = np.column_stack([
        temps[:-1][pair_mask], q[:-1][pair_mask], np.ones(n_pairs),
    ])
    target = temps[1:][pair_mask]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    ad = coeffs[:n, :].T
    bd = coeffs[n:n + len(varying), :].T
    c_int = coeffs[-1, :]

    eigvals = np.linalg.eigvals(ad)
    if np.any(np.abs(eigvals) >= 1.0) or np.any(eigvals.real <= 0.0):
        raise CalibrationError(
            f"rc: estimated transition matrix is not a stable thermal "
            f"propagator (eigenvalues {np.round(eigvals, 4)})"
        )
    a_mat = logm(ad).real / dt_rec
    gain = np.linalg.solve(a_mat, ad - np.eye(n))
    b_mat = np.linalg.solve(gain, bd)
    b_int = np.linalg.solve(gain, c_int)

    t_amb_k = celsius_to_kelvin(trace.ambient_c)
    q_const = {r: float(np.mean(powers[r])) for r in constant}
    caps, conducts, node_index = _assemble_rc_params(
        nodes, links, split, varying, constant,
        a_mat, b_mat, b_int, q_const, t_amb_k,
    )

    pred = design @ coeffs
    rms = float(np.sqrt(np.mean((target - pred) ** 2)))
    taus = sorted((-1.0 / ev.real) for ev in np.linalg.eigvals(a_mat) if ev.real < 0.0)
    return StageFit(
        stage="rc",
        params=_rc_params(nodes, links, caps, conducts, node_index),
        residual_rms=rms,
        n_samples=n_pairs,
        diagnostics={
            "dt_rec_s": dt_rec,
            "time_constants_s": [float(t) for t in taus],
            "constant_rails": constant,
        },
    )


def _rc_params(nodes, links, caps, conducts, node_index) -> dict:
    """Definition-schema ``nodes``/``links`` blocks from the assembly output."""
    return {
        "nodes": [
            {"name": name, "capacitance_j_per_k": float(caps[i])}
            for name, i in node_index.items()
        ],
        "links": [
            {"a": a, "b": b, "conductance_w_per_k": float(conducts[l])}
            for l, (a, b) in enumerate(links)
        ],
    }


def _assemble_rc_params(
    nodes, links, split, varying, constant,
    a_mat, b_mat, b_int, q_const, t_amb_k,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """NNLS assembly pinning capacitances/conductances to the topology.

    Shared by the clean and robust RC stages; the inputs are the
    continuous-time regression results, so the two paths differ only in
    how those were estimated.
    """
    n = len(nodes)
    node_index = {name: i for i, name in enumerate(nodes)}
    rows, rhs = [], []
    n_unknowns = n + len(links)

    def row(caps=(), conducts=(), value=0.0):
        r = np.zeros(n_unknowns)
        for i, coeff in caps:
            r[i] = coeff
        for l, coeff in conducts:
            r[n + l] = coeff
        rows.append(r)
        rhs.append(value)

    # Anchors: a varying rail deposits a known fraction of its watts on a
    # node, so B[i, r] * C_i must equal that fraction.  This fixes the
    # overall scale the homogeneous conductance rows cannot.
    for r_idx, rail in enumerate(varying):
        frac = split[rail]
        for name, i in node_index.items():
            row(caps=[(i, float(b_mat[i, r_idx]))], value=float(frac.get(name, 0.0)))

    link_index: dict[tuple[str, str], int] = {}
    incident: dict[int, list[int]] = {i: [] for i in range(n)}
    ambient_of: dict[int, int] = {}
    for l, (a, b) in enumerate(links):
        link_index[(a, b)] = link_index[(b, a)] = l
        for end in (a, b):
            if end == "ambient":
                continue
            incident[node_index[end]].append(l)
        if "ambient" in (a, b):
            other = b if a == "ambient" else a
            i = node_index[other]
            if i in ambient_of:
                raise CalibrationError(
                    f"rc: node {other!r} has multiple ambient links; "
                    "they are not separately identifiable from one trace"
                )
            ambient_of[i] = l

    # Off-diagonal couplings: C_i * A[i, j] equals the conductance of the
    # (i, j) link, or zero when the topology declares none.
    for name_i, i in node_index.items():
        for name_j, j in node_index.items():
            if i == j:
                continue
            l = link_index.get((name_i, name_j))
            if l is None:
                row(caps=[(i, float(a_mat[i, j]))])
            else:
                row(caps=[(i, float(a_mat[i, j]))], conducts=[(l, -1.0)])

    # Diagonals: every conductance incident on a node (ambient included —
    # it is already in the incidence list) drains it, so
    # C_i * A[i, i] + sum(g) = 0.
    for name_i, i in node_index.items():
        row(
            caps=[(i, float(a_mat[i, i]))],
            conducts=[(l, 1.0) for l in incident[i]],
        )

    # Ambient drive: the regression intercept is w_i * T_amb plus the
    # constant rails' contribution, i.e. C_i * b_int_i = q_const_i +
    # g_ambient_i * T_amb.  This pins the ambient conductances directly.
    for name_i, i in node_index.items():
        q_const_i = sum(
            float(split[r].get(name_i, 0.0)) * q_const[r] for r in constant
        )
        conducts = [(ambient_of[i], -1.0)] if i in ambient_of else []
        row(
            caps=[(i, float(b_int[i]) / t_amb_k)],
            conducts=conducts,
            value=q_const_i / t_amb_k,
        )

    matrix = np.vstack(rows)
    if np.linalg.matrix_rank(matrix) < n_unknowns:
        raise CalibrationError(
            "rc: the declared topology is not identifiable from this trace "
            "(assembly system is rank-deficient)"
        )
    solution, _ = nnls(matrix, np.asarray(rhs))
    return solution[:n], solution[n:], node_index


# --------------------------------------------------------------------------
# robust stage variants (gap-aware, despiked, IRLS-weighted)
# --------------------------------------------------------------------------


def _verdict_from_grades(grades: Mapping) -> str:
    return "low_confidence" if "low" in set(grades.values()) else "fitted"


def _uncertainty(residuals, weights, grades: Mapping) -> dict:
    return {
        "residual_mad": rb.MAD_SCALE * rb.mad(residuals),
        "n_effective": rb.effective_samples(weights),
        "params": dict(grades),
    }


def _fit_ladder_robust(prior_freqs_mhz, f_mhz, volts, warnings, what: str):
    """Per-frequency median voltages, then the clean ladder regression.

    Aggregating first makes quantized/noisy regulator telemetry collapse
    back to one voltage per OPP, so the ladder test sees the same shape a
    clean capture would.
    """
    groups: dict[float, list[float]] = {}
    for f, v in zip(f_mhz, volts):
        groups.setdefault(round(float(f), 3), []).append(float(v))
    freqs = sorted(groups)
    medians = [float(np.median(groups[f])) for f in freqs]
    return _fit_ladder(prior_freqs_mhz, freqs, medians, warnings, what)


def _two_step_leakage_robust(
    p, dyn_col, volts, temps_k, design_extra, warnings, what: str
):
    """IRLS variant of :func:`_two_step_leakage`.

    Same beta grid search, but the refinement loop re-solves the NNLS with
    Huber weights and refits (kappa, beta) with the robust log-linear
    estimator.  Returns ``(linear_coeffs, kappa, beta, weights,
    leak_stderr)`` where ``leak_stderr`` is ``(se_log_kappa, se_beta)``.
    """
    def design_at(beta: float) -> np.ndarray:
        return np.column_stack(
            [*design_extra, dyn_col, _beta_column(volts, temps_k, beta)]
        )

    def solve_at(beta: float, weights=None):
        a = design_at(beta)
        if weights is None:
            return nnls(a, p)
        sw = np.sqrt(weights)
        coef, rnorm = nnls(a * sw[:, None], p * sw)
        return coef, rnorm

    lo, hi = BETA_GRID_K
    grid = np.linspace(lo, hi, 35)
    for _ in range(3):
        scores = [solve_at(b)[1] for b in grid]
        best = int(np.argmin(scores))
        step = grid[1] - grid[0]
        lo = max(BETA_GRID_K[0], grid[best] - step)
        hi = min(BETA_GRID_K[1], grid[best] + step)
        beta = float(grid[best])
        grid = np.linspace(lo, hi, 9)

    coef = solve_at(beta)[0]
    kappa = float(coef[-1])
    weights = np.ones(p.size)
    leak_se = (float("inf"), float("inf"))
    # Huber scale never drops below 0.1% of the typical rail power:
    # residual structure finer than the meter resolves is refinement
    # error, and downweighting it would bias the hottest (most
    # leakage-informative) samples.
    scale_floor = 1e-3 * float(np.median(np.abs(p)))
    for _ in range(3):
        coef = solve_at(beta, weights)[0]
        residuals = p - design_at(beta) @ coef
        scale = max(rb.robust_scale(residuals), scale_floor)
        if scale > 0.0:
            weights = rb.huber_weights(np.abs(residuals), scale)
        linear = np.column_stack([*design_extra, dyn_col]) @ coef[:-1]
        totals = (p - linear) / volts
        valid = totals > 0.0
        if valid.sum() < MIN_SAMPLES:
            kappa = float(coef[-1])
            if kappa > 1e-12:
                warnings.append(
                    f"{what}: too few positive leakage residuals; "
                    "keeping the grid-search (kappa, beta)"
                )
            break
        try:
            kappa, beta, leak_se = rb.fit_log_linear_leakage_robust(
                temps_k[valid], totals[valid]
            )
        except StabilityError:
            kappa = float(coef[-1])
            warnings.append(
                f"{what}: leakage refinement failed; "
                "keeping the grid-search (kappa, beta)"
            )
            break
    return coef[:-1], kappa, beta, weights, leak_se


def _component_stages_robust(
    trace, domain: str, n_units: float, rail: str, node: str,
    prior_freqs_mhz, warnings,
) -> tuple[StageFit, StageFit]:
    """Robust ``dvfs.<domain>`` / ``leakage.<domain>``: gap-aware and IRLS."""
    what = f"domain {domain!r}"
    names = [
        f"power.{rail}", f"freq.{domain}", f"volt.{domain}",
        f"busy.{domain}", f"temp.{node}",
    ]
    grid = rb.align_channels(trace, names)
    p = grid.values[f"power.{rail}"]
    freq_mhz_col = grid.values[f"freq.{domain}"]
    freq_hz = mhz(freq_mhz_col)
    volts = grid.values[f"volt.{domain}"]
    busy = np.minimum(grid.values[f"busy.{domain}"], n_units)
    temps_c, spiky = rb.hampel(grid.values[f"temp.{node}"])
    temps_k = celsius_to_kelvin(temps_c)
    window = (float(grid.times[0]), float(grid.times[-1]))

    present = grid.all_present(names)
    stable = np.zeros(p.size, dtype=bool)
    stable[1:] = present[1:] & present[:-1] & (np.abs(np.diff(freq_hz)) < 0.5)
    active = present & (busy / n_units > IDLE_BUSY_THRESHOLD)
    # Drop spike-flagged records outright: the rolling-median replacement
    # lags true temperature during transients, which biases the leakage
    # column far more than losing the sample does.
    mask = stable & active & ~spiky
    n_used = int(mask.sum())
    if n_used < MIN_SAMPLES:
        raise CalibrationError(
            f"{what}: only {n_used} clean active samples survive the gaps; "
            "the staircase must dwell longer or record faster",
            channel=f"power.{rail}", segment=f"staircase-{domain}",
            window_s=window,
        )

    dyn_col = (volts**2 * freq_hz * busy)[mask]
    linear, kappa, beta, weights, leak_se = _two_step_leakage_robust(
        p[mask], dyn_col, volts[mask], temps_k[mask],
        [np.ones(n_used)], warnings, what,
    )
    idle_w, ceff = float(linear[0]), float(linear[1])
    if ceff <= 0.0:
        raise CalibrationError(
            f"{what}: effective capacitance came out non-positive "
            f"({ceff!r}); the staircase does not separate dynamic power",
            channel=f"power.{rail}", segment=f"staircase-{domain}",
            window_s=window,
        )
    beta_col = _beta_column(volts[mask], temps_k[mask], beta)
    model = idle_w + ceff * dyn_col + kappa * beta_col
    residuals = p[mask] - model
    rms = float(np.sqrt(np.mean(residuals**2)))

    design = np.column_stack([np.ones(n_used), dyn_col, beta_col])
    stderr = rb.lstsq_stderr(
        design, p[mask], np.array([idle_w, ceff, kappa]), weights,
    )
    dvfs_grades = {
        "idle_power_w": rb.grade_param(idle_w, float(stderr[0]), floor=0.005),
        "ceff_w_per_v2hz": rb.grade_param(ceff, float(stderr[1])),
    }
    leak_grades = {
        "kappa_w_per_k2": (
            "high" if kappa <= 1e-12
            else rb.grade_param(1.0, leak_se[0])
        ),
        "beta_k": (
            "high" if kappa <= 1e-12
            else rb.grade_param(beta, leak_se[1])
        ),
    }

    opps, ladder_rms = _fit_ladder_robust(
        prior_freqs_mhz, freq_mhz_col[mask], volts[mask], warnings, what,
    )
    dvfs = StageFit(
        stage=f"dvfs.{domain}",
        params={
            "ceff_w_per_v2hz": ceff,
            "idle_power_w": idle_w,
            "opps": opps,
        },
        residual_rms=rms,
        n_samples=n_used,
        diagnostics={
            "ladder_rms_v": ladder_rms,
            "visited_mhz": sorted({
                round(float(f), 3) for f in freq_mhz_col[mask]
            }),
            "temp_outliers_replaced": int(spiky.sum()),
        },
        verdict=_verdict_from_grades(dvfs_grades),
        uncertainty=_uncertainty(residuals, weights, dvfs_grades),
    )
    leakage = StageFit(
        stage=f"leakage.{domain}",
        params={"kappa_w_per_k2": kappa, "beta_k": beta},
        residual_rms=rms,
        n_samples=n_used,
        diagnostics={
            "temp_span_k": [
                float(temps_k[mask].min()), float(temps_k[mask].max())
            ],
        },
        verdict=_verdict_from_grades(leak_grades),
        uncertainty=_uncertainty(residuals, weights, leak_grades),
    )
    return dvfs, leakage


def _memory_stage_robust(trace, meta, warnings) -> StageFit:
    """Robust ``memory`` stage (see :func:`_memory_stage` for the proxy)."""
    mem = meta["memory"]
    clusters = meta["clusters"]
    busy_names = [f"busy.{c['name']}" for c in clusters]
    names = [
        f"power.{mem['rail']}", f"temp.{mem['thermal_node']}",
        "busy.gpu", *busy_names,
    ]
    grid = rb.align_channels(trace, names)
    temps_all, spiky = rb.hampel(grid.values[f"temp.{mem['thermal_node']}"])
    present = grid.all_present(names) & ~spiky
    n_used = int(present.sum())
    window = (float(grid.times[0]), float(grid.times[-1]))
    if n_used < MIN_SAMPLES:
        raise CalibrationError(
            f"memory: only {n_used} complete records survive the gaps",
            channel=f"power.{mem['rail']}", window_s=window,
        )
    total_cores = sum(int(c["n_cores"]) for c in clusters)
    total_busy = np.sum([grid.values[n][present] for n in busy_names], axis=0)
    act = memory_activity_proxy(
        total_busy, total_cores, grid.values["busy.gpu"][present]
    )
    p = grid.values[f"power.{mem['rail']}"][present]
    temps_k = celsius_to_kelvin(temps_all[present])
    ones = np.ones(n_used)

    linear, kappa, beta, weights, leak_se = _two_step_leakage_robust(
        p, act, ones, temps_k, [ones], warnings, "memory",
    )
    base, act_pw = float(linear[0]), float(linear[1])
    if kappa < 1e-12:
        kappa, beta = 0.0, 1000.0
    model = base + act_pw * act + kappa * _beta_column(ones, temps_k, beta)
    residuals = p - model
    rms = float(np.sqrt(np.mean(residuals**2)))
    design = np.column_stack([ones, act, _beta_column(ones, temps_k, beta)])
    stderr = rb.lstsq_stderr(
        design, p, np.array([base, act_pw, kappa]), weights,
    )
    grades = {
        "base_power_w": rb.grade_param(base, float(stderr[0]), floor=0.005),
        "activity_power_w": rb.grade_param(
            act_pw, float(stderr[1]), floor=0.005
        ),
        "kappa_w_per_k2": (
            "high" if kappa <= 1e-12 else rb.grade_param(1.0, leak_se[0])
        ),
        "beta_k": (
            "high" if kappa <= 1e-12 else rb.grade_param(beta, leak_se[1])
        ),
    }
    return StageFit(
        stage="memory",
        params={
            "base_power_w": base,
            "activity_power_w": act_pw,
            "kappa_w_per_k2": kappa,
            "beta_k": beta,
        },
        residual_rms=rms,
        n_samples=n_used,
        diagnostics={
            "activity_span": [float(act.min()), float(act.max())],
            "temp_outliers_replaced": int(spiky.sum()),
        },
        verdict=_verdict_from_grades(grades),
        uncertainty=_uncertainty(residuals, weights, grades),
    )


def _board_stage_robust(trace) -> StageFit:
    """Robust ``board``: median/MAD of the rest-of-platform rail."""
    if "power.board" not in trace:
        return StageFit(
            stage="board", params={"board_power_w": 0.0},
            residual_rms=0.0, n_samples=0,
        )
    _, p = trace.series("power.board")
    board_w = float(np.median(p))
    residuals = p - board_w
    spread = rb.MAD_SCALE * rb.mad(p)
    grades = {
        "board_power_w": rb.grade_param(
            board_w, spread / np.sqrt(max(p.size, 1)), floor=0.005
        ),
    }
    return StageFit(
        stage="board",
        params={"board_power_w": board_w},
        residual_rms=float(np.std(p)),
        n_samples=int(p.size),
        verdict=_verdict_from_grades(grades),
        uncertainty=_uncertainty(residuals, np.ones(p.size), grades),
    )


RC_WINDOW_RECORDS = 30
RC_MIN_WINDOW_RECORDS = 6


def _rc_windows(present, trans, tile: int, min_recs: int) -> list:
    """Index sets for energy-balance windows: cut at every input transition,
    tile the constant-input runs, keep windows with enough clean records."""
    m = present.size
    bounds = [0] + list(np.flatnonzero(trans)) + [m]
    windows = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        for start in range(lo, hi, tile):
            stop = min(start + tile, hi)
            idx = np.flatnonzero(present[start:stop]) + start
            if idx.size >= min_recs:
                windows.append(idx)
    return windows


def _rc_stage_robust(trace, meta, warnings) -> StageFit:
    """Robust ``rc``: windowed energy-balance NNLS over the declared topology.

    The clean estimator's one-step state regression is quantization-limited:
    a slow node moves only millikelvins per record, so sysfs-grade rounding
    drowns exactly the partial signal that identifies its row.  Integrating
    each node's heat balance over multi-second windows instead makes every
    regressor kelvin- or joule-scale,

        C_i * (T_i(t1) - T_i(t0)) =
            sum_links G_l * int(T_other - T_i) dt + split_i * int(q) dt,

    which is *linear* in all capacitances and conductances jointly, needs
    no matrix logarithm, and tolerates interior sample drops (the trapezoid
    just spans them).  Windows never cross an input transition, so the
    held-input assumption behind the recorded rail powers stays exact.
    """
    thermal = meta["thermal"]
    nodes = list(thermal["nodes"])
    links = [tuple(pair) for pair in thermal["links"]]
    split = thermal["power_split"]
    rails = sorted(split)
    cluster_names = [c["name"] for c in meta["clusters"]]
    domains = cluster_names + ["gpu"]

    names = (
        [f"temp.{n}" for n in nodes]
        + [f"power.{r}" for r in rails]
        + [f"freq.{d}" for d in domains]
        + [f"busy.{d}" for d in domains]
    )
    grid = rb.align_channels(trace, names)
    times = grid.times
    window = (float(times[0]), float(times[-1]))
    despiked = {}
    flagged = np.zeros(times.size, dtype=bool)
    for node in nodes:
        despiked[node], spiky = rb.hampel(grid.values[f"temp.{node}"])
        flagged |= spiky
    outliers = int(flagged.sum())
    temps = {n: celsius_to_kelvin(despiked[n]) for n in nodes}
    powers = {r: grid.values[f"power.{r}"] for r in rails}
    varying = [
        r for r in rails
        if float(np.nanstd(powers[r])) > CONSTANT_RAIL_STD_W
    ]
    constant = [r for r in rails if r not in varying]
    q_const = {r: float(np.nanmedian(powers[r])) for r in constant}

    present = grid.all_present(names) & ~flagged
    trans = np.zeros(times.size, dtype=bool)
    idx = np.flatnonzero(present)
    for d in domains:
        freq = mhz(grid.values[f"freq.{d}"])
        busy = grid.values[f"busy.{d}"]
        changed = (
            (np.abs(np.diff(freq[idx])) >= 0.5)
            | (np.abs(np.diff(busy[idx])) >= 1e-9)
        )
        trans[idx[1:][changed]] = True
    windows = _rc_windows(
        present, trans, RC_WINDOW_RECORDS, RC_MIN_WINDOW_RECORDS
    )
    n = len(nodes)
    n_unknowns = n + len(links)
    if len(windows) * n < 3 * n_unknowns:
        raise CalibrationError(
            f"rc: only {len(windows)} clean energy-balance windows for "
            f"{n_unknowns} unknowns; record a longer trace",
            channel=f"temp.{nodes[0]}", window_s=window,
        )

    node_index = {name: i for i, name in enumerate(nodes)}
    t_amb_k = celsius_to_kelvin(trace.ambient_c)
    rows, rhs = [], []
    for win in windows:
        tt = times[win]
        for name in nodes:
            i = node_index[name]
            temp_i = temps[name][win]
            row = np.zeros(n_unknowns)
            row[i] = temp_i[-1] - temp_i[0]
            for l, (a, b) in enumerate(links):
                if name not in (a, b):
                    continue
                other = b if a == name else a
                temp_o = (
                    np.full(tt.size, t_amb_k) if other == "ambient"
                    else temps[other][win]
                )
                row[n + l] = -np.trapezoid(temp_o - temp_i, tt)
            heat_j = 0.0
            for rail in rails:
                frac = float(split[rail].get(name, 0.0))
                if frac == 0.0:
                    continue
                if rail in varying:
                    heat_j += frac * np.trapezoid(powers[rail][win], tt)
                else:
                    heat_j += frac * q_const[rail] * (tt[-1] - tt[0])
            rows.append(row)
            rhs.append(heat_j)
    design = np.vstack(rows)
    target = np.asarray(rhs)
    if np.linalg.matrix_rank(design) < n_unknowns:
        raise CalibrationError(
            "rc: the declared topology is not identifiable from the "
            "degraded trace (energy-balance system is rank-deficient)",
            channel=f"temp.{nodes[0]}", window_s=window,
        )
    solution, weights = rb.irls_nnls(
        design, target,
        min_scale=1e-3 * float(np.median(np.abs(target))),
    )
    caps, conducts = solution[:n], solution[n:]
    if np.any(caps <= 0.0) or np.any(conducts <= 0.0):
        raise CalibrationError(
            "rc: the energy balance collapsed a capacitance or conductance "
            "to zero; the degraded trace does not excite the topology enough",
            channel=f"temp.{nodes[0]}", window_s=window,
        )

    # Residuals in kelvin: each row's heat mismatch spread over that node's
    # fitted capacitance is the temperature-prediction error per window.
    residuals_j = target - design @ solution
    caps_per_row = np.tile(caps, len(windows))
    residuals_k = residuals_j / caps_per_row
    rms = float(np.sqrt(np.mean(residuals_k**2)))
    stderr = rb.lstsq_stderr(design, target, solution, weights)
    grades = {
        **{
            f"node.{name}.capacitance_j_per_k": rb.grade_param(
                float(caps[i]), float(stderr[i])
            )
            for name, i in node_index.items()
        },
        **{
            f"link.{a}-{b}.conductance_w_per_k": rb.grade_param(
                float(conducts[l]), float(stderr[n + l])
            )
            for l, (a, b) in enumerate(links)
        },
    }

    # Reconstruct the continuous-time propagator from the fitted network
    # for the same time-constant diagnostics the clean stage reports.
    a_mat = np.zeros((n, n))
    for l, (a, b) in enumerate(links):
        if "ambient" in (a, b):
            other = b if a == "ambient" else a
            i = node_index[other]
            a_mat[i, i] -= conducts[l] / caps[i]
            continue
        i, j = node_index[a], node_index[b]
        a_mat[i, j] += conducts[l] / caps[i]
        a_mat[j, i] += conducts[l] / caps[j]
        a_mat[i, i] -= conducts[l] / caps[i]
        a_mat[j, j] -= conducts[l] / caps[j]
    taus = sorted(
        (-1.0 / ev.real)
        for ev in np.linalg.eigvals(a_mat) if ev.real < 0.0
    )
    return StageFit(
        stage="rc",
        params=_rc_params(nodes, links, caps, conducts, node_index),
        residual_rms=rms,
        n_samples=int(design.shape[0]),
        diagnostics={
            "dt_rec_s": grid.dt_s,
            "n_windows": len(windows),
            "time_constants_s": [float(t) for t in taus],
            "constant_rails": constant,
            "temp_outliers_replaced": outliers,
        },
        verdict=_verdict_from_grades(grades),
        uncertainty=_uncertainty(residuals_k, weights, grades),
    )


# --------------------------------------------------------------------------
# structural-prior fallbacks (graceful degradation)
# --------------------------------------------------------------------------


def _prior_uncertainty(param_names) -> dict:
    return {
        "residual_mad": 0.0,
        "n_effective": 0.0,
        "params": {name: "prior" for name in param_names},
    }


def _prior_component_stages(
    domain: str, prior_freqs_mhz, reason: str
) -> tuple[StageFit, StageFit]:
    """``unfitted`` dvfs/leakage stages holding only structural priors."""
    ceff = PRIOR_GPU_CEFF if domain == "gpu" else PRIOR_CLUSTER_CEFF
    dvfs = StageFit(
        stage=f"dvfs.{domain}",
        params={
            "ceff_w_per_v2hz": ceff,
            "idle_power_w": PRIOR_IDLE_W,
            "opps": {
                "freqs_mhz": [float(f) for f in prior_freqs_mhz],
                "v_min": PRIOR_V_MIN,
                "v_max": PRIOR_V_MAX,
            },
        },
        residual_rms=0.0,
        n_samples=0,
        diagnostics={"reason": reason},
        verdict="unfitted",
        uncertainty=_prior_uncertainty(("ceff_w_per_v2hz", "idle_power_w")),
    )
    leakage = StageFit(
        stage=f"leakage.{domain}",
        params=dict(PRIOR_LEAKAGE),
        residual_rms=0.0,
        n_samples=0,
        diagnostics={"reason": reason},
        verdict="unfitted",
        uncertainty=_prior_uncertainty(("kappa_w_per_k2", "beta_k")),
    )
    return dvfs, leakage


def _prior_memory_stage(reason: str) -> StageFit:
    return StageFit(
        stage="memory",
        params={**PRIOR_MEMORY, **PRIOR_LEAKAGE},
        residual_rms=0.0,
        n_samples=0,
        diagnostics={"reason": reason},
        verdict="unfitted",
        uncertainty=_prior_uncertainty(
            ("base_power_w", "activity_power_w", "kappa_w_per_k2", "beta_k")
        ),
    )


def _prior_rc_stage(meta, reason: str) -> StageFit:
    thermal = meta["thermal"]
    nodes = list(thermal["nodes"])
    links = [tuple(pair) for pair in thermal["links"]]
    return StageFit(
        stage="rc",
        params={
            "nodes": [
                {"name": n, "capacitance_j_per_k": PRIOR_NODE_CAPACITANCE}
                for n in nodes
            ],
            "links": [
                {"a": a, "b": b, "conductance_w_per_k": PRIOR_LINK_CONDUCTANCE}
                for a, b in links
            ],
        },
        residual_rms=0.0,
        n_samples=0,
        diagnostics={"reason": reason},
        verdict="unfitted",
        uncertainty=_prior_uncertainty(
            tuple(f"node.{n}.capacitance_j_per_k" for n in nodes)
            + tuple(f"link.{a}-{b}.conductance_w_per_k" for a, b in links)
        ),
    )


# --------------------------------------------------------------------------
# orchestration
# --------------------------------------------------------------------------


def needs_robust(trace) -> bool:
    """Whether ``robust="auto"`` should take the robust path for ``trace``.

    True when the trace carries a ``degradation`` provenance block, when
    the estimator-relevant channels are not sample-aligned, or when the
    shared grid is not uniform — exactly the conditions under which the
    clean estimators would either raise or silently mis-fit.
    """
    if "degradation" in trace.meta:
        return True
    prefixes = (
        POWER_PREFIX, TEMP_PREFIX, FREQ_PREFIX, VOLT_PREFIX, BUSY_PREFIX,
    )
    shared = None
    for name in trace.names():
        if not name.startswith(prefixes):
            continue
        t, _ = trace.series(name)
        if shared is None:
            shared = t
        elif t.shape != shared.shape or not np.array_equal(t, shared):
            return True
    if shared is None or shared.size < 2:
        return False
    gaps = np.diff(shared)
    return bool(np.max(np.abs(gaps - np.median(gaps))) > 1e-9)


def fit_trace(trace, robust: str = "auto") -> FitReport:
    """Run every estimator stage against ``trace`` and collect the report.

    The trace ``meta`` must carry the structural prior written by
    :func:`repro.calib.excite.structural_meta` (cluster inventory, thermal
    topology); everything numeric comes from the channels.

    ``robust`` selects the fit path (:data:`ROBUST_MODES`): ``"off"`` is
    the clean PR 8 numerics (raises on any defect), ``"on"`` forces the
    robust estimators, and ``"auto"`` (default) picks per
    :func:`needs_robust` — so clean traces keep byte-identical results.
    Except under ``"off"``, a stage that cannot be fitted is demoted to
    its structural prior with an ``unfitted`` verdict instead of raising.
    """
    if robust not in ROBUST_MODES:
        raise CalibrationError(
            f"unknown robust mode {robust!r}; have {ROBUST_MODES}"
        )
    meta = trace.meta
    for key in ("clusters", "gpu", "memory", "thermal"):
        if key not in meta:
            raise CalibrationError(
                f"trace meta lacks the structural prior key {key!r}; "
                "capture traces with repro.calib.excite (or supply the "
                "device inventory by hand)"
            )
    use_robust = robust == "on" or (robust == "auto" and needs_robust(trace))
    demote = robust != "off"
    warnings: list[str] = []
    stages: list[StageFit] = []

    def guarded(what, build, fallback):
        try:
            return build()
        except CalibrationError as exc:
            if not demote:
                raise
            warnings.append(f"{what} demoted to structural prior: {exc}")
            return fallback(str(exc))

    component = _component_stages_robust if use_robust else _component_stages
    components = [
        (c["name"], float(c["n_cores"]), c["rail"], c["thermal_node"],
         c["freqs_mhz"])
        for c in meta["clusters"]
    ]
    gpu = meta["gpu"]
    components.append(
        ("gpu", 1.0, gpu["rail"], gpu["thermal_node"], gpu["freqs_mhz"])
    )
    for domain, n_units, rail, node, freqs_mhz in components:
        stages += guarded(
            f"dvfs/leakage.{domain}",
            lambda: component(
                trace, domain, n_units, rail, node, freqs_mhz, warnings
            ),
            lambda reason: _prior_component_stages(domain, freqs_mhz, reason),
        )
    memory = _memory_stage_robust if use_robust else _memory_stage
    stages.append(guarded(
        "memory",
        lambda: memory(trace, meta, warnings),
        _prior_memory_stage,
    ))
    board = _board_stage_robust if use_robust else _board_stage
    stages.append(board(trace))
    rc = _rc_stage_robust if use_robust else _rc_stage
    stages.append(guarded(
        "rc",
        lambda: rc(trace, meta, warnings),
        lambda reason: _prior_rc_stage(meta, reason),
    ))
    return FitReport(
        platform_hint=trace.platform_hint or meta.get("platform", ""),
        stages=tuple(stages),
        warnings=tuple(warnings),
    )
