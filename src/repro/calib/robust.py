"""Robust estimation helpers for fitting degraded calibration traces.

The clean-trace estimators in :mod:`repro.calib.fit` assume sample-aligned
channels, uniform cadence and outlier-free values.  Real captures deliver
none of that, so the robust fit path composes the primitives here:

* :func:`align_channels` — snap per-channel clocks onto one uniform record
  grid, leaving NaN where a sample was dropped (gaps are *never*
  interpolated across; estimators mask them out);
* :func:`hampel` — median-of-window despiking per contiguous run, the
  standard prefilter for TMU glitches;
* :func:`irls_lstsq` / :func:`irls_nnls` — iteratively-reweighted least
  squares with Huber weights, for the CV^2 f / leakage / RC regressions;
* :func:`fit_log_linear_leakage_robust` — the shared De Vogeleer log-linear
  leakage estimator, IRLS-weighted, with parameter standard errors;
* :func:`lstsq_stderr`, :func:`grade_param`, :func:`effective_samples` —
  the uncertainty-reporting vocabulary (residual MAD, effective sample
  counts, per-parameter confidence grades) the extended
  :class:`~repro.calib.fit.FitReport` carries.

Everything is deterministic and pure-numpy; nothing here draws randomness.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import CalibrationError

#: Consistency factor making the median absolute deviation estimate the
#: standard deviation of Gaussian data.
MAD_SCALE = 1.4826

#: Huber tuning constant (95 % Gaussian efficiency).
HUBER_K = 1.345

#: Confidence grades a fitted parameter can carry, best first.  ``prior``
#: marks a value that was never fitted (graceful-degradation fallback).
CONFIDENCE_GRADES = ("high", "medium", "low", "prior")


def mad(values) -> float:
    """Median absolute deviation (unscaled) of a 1-D array."""
    v = np.asarray(values, dtype=float)
    return float(np.median(np.abs(v - np.median(v))))


def robust_scale(residuals) -> float:
    """MAD-based sigma estimate of a residual vector (0.0 if degenerate)."""
    return MAD_SCALE * mad(residuals)


def huber_weights(abs_residuals, scale: float, k: float = HUBER_K) -> np.ndarray:
    """Huber IRLS weights: 1 inside ``k * scale``, decaying ``1/u`` outside."""
    r = np.asarray(abs_residuals, dtype=float)
    u = r / (k * scale)
    with np.errstate(divide="ignore"):
        return np.where(u <= 1.0, 1.0, 1.0 / np.maximum(u, 1e-300))


def effective_samples(weights) -> float:
    """Sum of IRLS weights: how many full-weight samples the fit really used."""
    return float(np.sum(np.asarray(weights, dtype=float)))


def contiguous_runs(present) -> list[slice]:
    """Maximal runs of ``True`` in a boolean mask, as slices."""
    mask = np.asarray(present, dtype=bool)
    runs: list[slice] = []
    start = None
    for i, ok in enumerate(mask):
        if ok and start is None:
            start = i
        elif not ok and start is not None:
            runs.append(slice(start, i))
            start = None
    if start is not None:
        runs.append(slice(start, mask.size))
    return runs


def _rolling_median(values: np.ndarray, window: int) -> np.ndarray:
    # Reflect (not edge) padding: replicating the boundary sample would let
    # a spike sitting at a run edge dominate its own window median and
    # escape detection — and sample-drop gaps create many run edges.
    half = window // 2
    padded = np.pad(values, half, mode="reflect")
    return np.median(sliding_window_view(padded, window), axis=1)


def hampel(
    values, window: int = 7, n_sigmas: float = 4.0
) -> tuple[np.ndarray, np.ndarray]:
    """Median-of-window despiking; NaN gaps split the signal into runs.

    Returns ``(filtered, outlier_mask)``: samples deviating from their
    rolling median by more than ``n_sigmas`` robust sigmas are replaced by
    that median.  NaNs pass through untouched and are never bridged — a
    spike next to a gap is judged only against its own contiguous run.
    """
    v = np.asarray(values, dtype=float).copy()
    flagged = np.zeros(v.size, dtype=bool)
    window = max(3, int(window)) | 1
    for run in contiguous_runs(np.isfinite(v)):
        seg = v[run]
        if seg.size < 3:
            # Too short to self-validate: a spike marooned between two gaps
            # is indistinguishable from signal, so treat the whole fragment
            # as suspect rather than let it through unchecked.
            flagged[run] = True
            continue
        med = _rolling_median(seg, min(window, seg.size | 1))
        dev = np.abs(seg - med)
        scale = max(MAD_SCALE * float(np.median(dev)), 1e-9)
        bad = dev > n_sigmas * scale
        seg[bad] = med[bad]
        v[run] = seg
        flagged[run] = bad
    return v, flagged


# --------------------------------------------------------------------------
# gap-aware channel alignment
# --------------------------------------------------------------------------


class AlignedGrid:
    """Channels resampled onto one uniform record grid, gaps kept as NaN."""

    def __init__(
        self,
        times: np.ndarray,
        dt_s: float,
        values: dict[str, np.ndarray],
        present: dict[str, np.ndarray],
    ) -> None:
        self.times = times
        self.dt_s = float(dt_s)
        self.values = values
        self.present = present

    def all_present(self, names) -> np.ndarray:
        """Mask of grid rows where every named channel has a real sample."""
        return np.logical_and.reduce([self.present[n] for n in names])


def align_channels(trace, names, dt_s: float | None = None) -> AlignedGrid:
    """Snap ``names`` onto a shared uniform grid without interpolating.

    The grid period comes from ``trace.meta['record_period_s']`` when the
    excitation harness recorded it, else from the median inter-sample gap.
    Each sample lands on its nearest grid slot; slots no channel sample
    landed on stay NaN (and ``present`` False) — drops remain *gaps*, so
    estimators can window on contiguous runs instead of hallucinating
    values across them.
    """
    series = {name: trace.series(name) for name in names}
    if dt_s is None:
        dt_s = trace.meta.get("record_period_s")
    if dt_s is None:
        gaps = np.concatenate([
            np.diff(t) for t, _ in series.values() if t.size > 1
        ]) if any(t.size > 1 for t, _ in series.values()) else np.array([])
        positive = gaps[gaps > 0.0]
        if positive.size == 0:
            raise CalibrationError(
                "cannot infer a record period: no channel has two "
                "distinct timestamps",
                channel=names[0],
            )
        dt_s = float(np.median(positive))
    dt_s = float(dt_s)
    if dt_s <= 0.0:
        raise CalibrationError(f"record period must be positive, got {dt_s}")
    t0 = min(t[0] for t, _ in series.values())
    t1 = max(t[-1] for t, _ in series.values())
    n = int(round((t1 - t0) / dt_s)) + 1
    times = t0 + dt_s * np.arange(n)
    values: dict[str, np.ndarray] = {}
    present: dict[str, np.ndarray] = {}
    for name, (t, v) in series.items():
        idx = np.clip(np.rint((t - t0) / dt_s).astype(int), 0, n - 1)
        first = np.unique(idx, return_index=True)[1]
        col = np.full(n, np.nan)
        col[idx[first]] = v[first]
        values[name] = col
        mask = np.zeros(n, dtype=bool)
        mask[idx[first]] = True
        present[name] = mask
    return AlignedGrid(times, dt_s, values, present)


# --------------------------------------------------------------------------
# IRLS regressions
# --------------------------------------------------------------------------


def _residual_norms(residuals: np.ndarray) -> np.ndarray:
    if residuals.ndim == 1:
        return np.abs(residuals)
    return np.sqrt(np.sum(residuals * residuals, axis=1))


def irls_lstsq(
    a, y, iters: int = 3, k: float = HUBER_K, min_scale: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Huber-weighted least squares; handles 1-D and stacked 2-D targets.

    Returns ``(coefficients, weights)``.  For a 2-D target the residual of
    a row is its Euclidean norm, so one glitched record downweights the
    whole record — the behaviour the RC one-step regression needs.

    ``min_scale`` floors the Huber scale: on a nearly-clean fit the MAD of
    the residuals collapses toward zero and any *structured* sub-resolution
    mismatch would read as outliers, quietly downweighting exactly the
    samples that carry the signal.  Callers pass a floor tied to the
    measurement resolution of ``y`` so that regime keeps every weight at 1.
    """
    a = np.asarray(a, dtype=float)
    y = np.asarray(y, dtype=float)
    coef, *_ = np.linalg.lstsq(a, y, rcond=None)
    weights = np.ones(a.shape[0])
    for _ in range(int(iters)):
        scale = max(robust_scale(_residual_norms(y - a @ coef)), min_scale)
        if scale <= 0.0:
            break
        weights = huber_weights(_residual_norms(y - a @ coef), scale, k)
        sw = np.sqrt(weights)
        ya = a * sw[:, None]
        yy = y * (sw[:, None] if y.ndim == 2 else sw)
        coef, *_ = np.linalg.lstsq(ya, yy, rcond=None)
    return coef, weights


def irls_nnls(
    a, y, iters: int = 3, k: float = HUBER_K, min_scale: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Huber-weighted non-negative least squares (1-D target).

    ``min_scale`` floors the Huber scale exactly as in :func:`irls_lstsq`.
    """
    from scipy.optimize import nnls

    a = np.asarray(a, dtype=float)
    y = np.asarray(y, dtype=float)
    coef, _ = nnls(a, y)
    weights = np.ones(a.shape[0])
    for _ in range(int(iters)):
        scale = max(robust_scale(y - a @ coef), min_scale)
        if scale <= 0.0:
            break
        weights = huber_weights(np.abs(y - a @ coef), scale, k)
        sw = np.sqrt(weights)
        coef, _ = nnls(a * sw[:, None], y * sw)
    return coef, weights


def lstsq_stderr(a, y, coef, weights=None) -> np.ndarray:
    """OLS/WLS standard errors of ``coef`` (1-D target only)."""
    a = np.asarray(a, dtype=float)
    y = np.asarray(y, dtype=float)
    if weights is not None:
        sw = np.sqrt(np.asarray(weights, dtype=float))
        a = a * sw[:, None]
        y = y * sw
    residuals = y - a @ coef
    dof = max(a.shape[0] - a.shape[1], 1)
    sigma2 = float(residuals @ residuals) / dof
    try:
        cov = sigma2 * np.linalg.pinv(a.T @ a)
    except np.linalg.LinAlgError:
        return np.full(a.shape[1], np.inf)
    diag = np.clip(np.diag(cov), 0.0, None)
    return np.sqrt(diag)


def fit_log_linear_leakage_robust(
    temps_k, totals_w, iters: int = 3
) -> tuple[float, float, tuple[float, float]]:
    """IRLS variant of the shared De Vogeleer log-linear leakage estimator.

    Same regression as :func:`repro.calib.fit.fit_log_linear_leakage`
    (``log(P / T^2) = log kappa - beta / T``) but Huber-weighted, and
    additionally returns ``(stderr_log_kappa, stderr_beta)`` for the
    confidence grading.  Raises :class:`~repro.errors.StabilityError` under
    the same conditions as the clean estimator.
    """
    from repro.errors import StabilityError

    temps_k = np.asarray(temps_k, dtype=float)
    totals = np.asarray(totals_w, dtype=float)
    if np.any(totals <= 0.0):
        raise StabilityError("platform has zero leakage; nothing to fit")
    y = np.log(totals / temps_k**2)
    a = np.column_stack([np.ones_like(temps_k), -1.0 / temps_k])
    # Floor at 0.1% in the log-power domain: cleaner-than-that residual
    # structure is refinement error, not outliers, and must keep full weight.
    coeffs, weights = irls_lstsq(a, y, iters=iters, min_scale=1e-3)
    kappa = float(np.exp(coeffs[0]))
    beta = float(coeffs[1])
    if beta <= 0.0:
        raise StabilityError(f"fitted beta is non-physical: {beta}")
    se = lstsq_stderr(a, y, coeffs, weights)
    return kappa, beta, (float(se[0]), float(se[1]))


# --------------------------------------------------------------------------
# confidence grading
# --------------------------------------------------------------------------


def grade_param(value: float, stderr: float, floor: float = 0.0) -> str:
    """Grade one fitted parameter from its standard error.

    ``floor`` is an absolute uncertainty (in the parameter's unit) that is
    always acceptable, so near-zero parameters are not graded ``low`` for
    having an undefined relative error.
    """
    if not np.isfinite(stderr):
        return "low"
    v = abs(float(value))
    if stderr <= 0.02 * v + floor:
        return "high"
    if stderr <= 0.15 * v + 10.0 * floor:
        return "medium"
    return "low"
