"""The ``CalibTrace`` wire format: sampled channels for identification.

A calibration trace is the unit of exchange between whatever logged a
device (the excitation harness, a DAQ capture, a parsed sysfs log) and the
estimators in :mod:`repro.calib.fit`.  It carries named sampled series —
rail power, per-node temperature, per-domain frequency and regulator
voltage, per-cluster busy counts — plus the excitation segment table and a
``meta`` block holding the *structural* facts a fit cannot measure but any
real device discloses (cluster inventory from sysfs, thermal topology from
the devicetree, sensor datasheet constants).  Everything numeric the fit
recovers — capacitances, conductances, C_eff, leakage, idle/base powers —
is deliberately absent from ``meta``.

Channel naming follows the engine's trace recorder: ``power.<rail>`` (W),
``temp.<node>`` (degC), ``freq.<domain>`` (MHz), ``volt.<domain>`` (V),
``busy.<cluster>`` (cores) and ``busy.gpu`` (fraction).

Traces round-trip losslessly through :meth:`CalibTrace.to_dict` /
:meth:`CalibTrace.from_dict`; the JSON schema is versioned by
:data:`CALIB_TRACE_FORMAT` and documented in ``docs/CALIBRATION.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import CalibrationError

#: Wire-format version of the trace JSON schema.
CALIB_TRACE_FORMAT = "repro.calib.trace/1"

#: Channel-name prefixes the estimators consume.
POWER_PREFIX = "power."
TEMP_PREFIX = "temp."
FREQ_PREFIX = "freq."
VOLT_PREFIX = "volt."
BUSY_PREFIX = "busy."

#: Segment kinds the excitation harness emits.
SEGMENT_KINDS = ("staircase", "soak", "cooldown")


@dataclass(frozen=True)
class CalibSegment:
    """One labelled excitation interval ``[start_s, end_s)``.

    ``domain`` names the DVFS domain a staircase sweeps; soak and cooldown
    segments leave it empty.
    """

    name: str
    kind: str
    start_s: float
    end_s: float
    domain: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SEGMENT_KINDS:
            raise CalibrationError(
                f"segment {self.name!r}: unknown kind {self.kind!r}; "
                f"have {SEGMENT_KINDS}"
            )
        if self.end_s <= self.start_s:
            raise CalibrationError(
                f"segment {self.name!r}: end {self.end_s} must exceed "
                f"start {self.start_s}"
            )

    @property
    def duration_s(self) -> float:
        """Length of the segment in seconds."""
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "domain": self.domain,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CalibSegment":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            start_s=data["start_s"],
            end_s=data["end_s"],
            domain=data.get("domain", ""),
        )


def _as_channel(name: str, times, values) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.ndim != 1 or v.ndim != 1:
        raise CalibrationError(f"channel {name!r}: series must be 1-D")
    if t.size != v.size:
        raise CalibrationError(
            f"channel {name!r}: {t.size} times vs {v.size} values"
        )
    if t.size == 0:
        raise CalibrationError(f"channel {name!r} is empty")
    if not (np.isfinite(t).all() and np.isfinite(v).all()):
        raise CalibrationError(f"channel {name!r} contains non-finite samples")
    if np.any(np.diff(t) < 0.0):
        raise CalibrationError(f"channel {name!r}: times go backwards")
    t.setflags(write=False)
    v.setflags(write=False)
    return t, v


class CalibTrace:
    """A bundle of sampled channels plus segments and structural metadata.

    Parameters
    ----------
    channels:
        Mapping of channel name to ``(times_s, values)`` pairs.
    segments:
        Excitation segment table (may be empty for raw captures).
    ambient_c:
        Ambient temperature during the recording.
    platform_hint:
        Name of the device the trace came from ("" when unknown).
    meta:
        JSON-native structural metadata (see module docstring).
    """

    def __init__(
        self,
        channels: Mapping[str, tuple],
        segments: Iterable[CalibSegment] = (),
        ambient_c: float = 25.0,
        platform_hint: str = "",
        meta: Mapping | None = None,
    ) -> None:
        if not channels:
            raise CalibrationError("a calibration trace needs >= 1 channel")
        self._channels = {
            name: _as_channel(name, times, values)
            for name, (times, values) in channels.items()
        }
        self.segments = tuple(segments)
        self.ambient_c = float(ambient_c)
        self.platform_hint = str(platform_hint)
        self.meta = dict(meta) if meta else {}

    # ------------------------------------------------------------- queries

    def names(self) -> list[str]:
        """Sorted channel names."""
        return sorted(self._channels)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` of one channel; raises on unknown names."""
        try:
            return self._channels[name]
        except KeyError:
            raise CalibrationError(
                f"no channel {name!r}; available: {self.names()}"
            ) from None

    def window(
        self, name: str, start_s: float, end_s: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Samples of ``name`` with ``start_s <= t < end_s``."""
        times, values = self.series(name)
        mask = (times >= start_s) & (times < end_s)
        return times[mask], values[mask]

    def duration_s(self) -> float:
        """Span from the earliest to the latest sample across channels."""
        starts = [t[0] for t, _ in self._channels.values()]
        ends = [t[-1] for t, _ in self._channels.values()]
        return max(ends) - min(starts)

    def segments_of(
        self, kind: str | None = None, domain: str | None = None
    ) -> tuple[CalibSegment, ...]:
        """Segments filtered by kind and/or domain."""
        return tuple(
            seg for seg in self.segments
            if (kind is None or seg.kind == kind)
            and (domain is None or seg.domain == domain)
        )

    # ------------------------------------------------------- serialisation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CalibTrace):
            return NotImplemented
        if (
            self.names() != other.names()
            or self.segments != other.segments
            or self.ambient_c != other.ambient_c
            or self.platform_hint != other.platform_hint
            or self.meta != other.meta
        ):
            return False
        for name in self.names():
            st, sv = self.series(name)
            ot, ov = other.series(name)
            if not (np.array_equal(st, ot) and np.array_equal(sv, ov)):
                return False
        return True

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "format": CALIB_TRACE_FORMAT,
            "platform_hint": self.platform_hint,
            "ambient_c": self.ambient_c,
            "segments": [seg.to_dict() for seg in self.segments],
            "channels": {
                name: {"times": list(times), "values": list(values)}
                for name, (times, values) in sorted(self._channels.items())
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CalibTrace":
        """Inverse of :meth:`to_dict`; checks the wire-format version."""
        fmt = data.get("format")
        if fmt != CALIB_TRACE_FORMAT:
            raise CalibrationError(
                f"unsupported trace format {fmt!r}; "
                f"this reader speaks {CALIB_TRACE_FORMAT!r}"
            )
        declared = data.get("channels")
        if not isinstance(declared, Mapping):
            raise CalibrationError(
                "trace JSON lacks a 'channels' object; nothing to fit from"
            )
        channels = {}
        for name, series in declared.items():
            if not isinstance(series, Mapping):
                raise CalibrationError(
                    "channel entry must be an object with "
                    "'times' and 'values'",
                    channel=str(name),
                )
            try:
                channels[name] = (series["times"], series["values"])
            except KeyError as exc:
                raise CalibrationError(
                    f"channel entry lacks the key {exc.args[0]!r}",
                    channel=str(name),
                ) from None
        return cls(
            channels=channels,
            segments=tuple(
                CalibSegment.from_dict(seg) for seg in data.get("segments", ())
            ),
            ambient_c=data.get("ambient_c", 25.0),
            platform_hint=data.get("platform_hint", ""),
            meta=data.get("meta", {}),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibTrace":
        """Parse a trace from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"malformed trace JSON: {exc}") from None
        if not isinstance(data, dict):
            raise CalibrationError("trace JSON must be an object")
        return cls.from_dict(data)


# ------------------------------------------------------------------ loaders


def load_trace_file(path) -> CalibTrace:
    """Read a :class:`CalibTrace` from a JSON file, with file context.

    Every failure mode — unreadable file, malformed or truncated JSON
    (with the line/column from the decoder), wrong wire format, missing
    channel data — surfaces as a :class:`~repro.errors.CalibrationError`
    whose message starts with the path, never as a raw traceback.
    """
    path = str(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CalibrationError(f"{path}: cannot read trace: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CalibrationError(
            f"{path}: malformed trace JSON: {exc.msg} "
            f"(line {exc.lineno} column {exc.colno})"
        ) from None
    if not isinstance(data, dict):
        raise CalibrationError(f"{path}: trace JSON must be an object")
    try:
        return CalibTrace.from_dict(data)
    except CalibrationError as exc:
        raise CalibrationError(f"{path}: {exc}") from None


def trace_from_recorder(
    recorder,
    segments: Iterable[CalibSegment] = (),
    ambient_c: float = 25.0,
    platform_hint: str = "",
    meta: Mapping | None = None,
    channels: Iterable[str] | None = None,
) -> CalibTrace:
    """Build a trace from a :class:`~repro.sim.trace.TraceRecorder`.

    This is the "simulated sysfs log" loader: the engine's recorder holds
    exactly the channels a periodic sysfs poller would log.  ``channels``
    restricts the copy to a subset (default: everything recorded).
    """
    wanted = list(channels) if channels is not None else recorder.names()
    series = {}
    for name in wanted:
        times, values = recorder.series(name)
        series[name] = (times, values)
    return CalibTrace(
        channels=series,
        segments=segments,
        ambient_c=ambient_c,
        platform_hint=platform_hint,
        meta=meta,
    )


def trace_from_daq(
    daq,
    ambient_c: float = 25.0,
    platform_hint: str = "",
    channel: str = "power.total",
    meta: Mapping | None = None,
) -> CalibTrace:
    """Build a single-channel trace from a :class:`~repro.power.daq.PowerDaq`.

    A battery-side DAQ capture only supports total-power analyses (energy
    accounting, mean-power stages); per-rail fits need the richer channel
    set of :func:`trace_from_recorder`.
    """
    times, watts = daq.samples()
    if times.size < 2:
        raise CalibrationError(
            "DAQ capture has fewer than two samples; nothing to calibrate from"
        )
    return CalibTrace(
        channels={channel: (times, watts)},
        ambient_c=ambient_c,
        platform_hint=platform_hint,
        meta=meta,
    )


def trace_from_sysfs_log(
    rows: Iterable,
    ambient_c: float = 25.0,
    platform_hint: str = "",
    meta: Mapping | None = None,
) -> CalibTrace:
    """Build a trace from sysfs-poller log rows.

    Each row is either a dict or a JSON-encoded object with keys ``t``
    (seconds), ``channel`` (name) and ``value``.  Rows may interleave
    channels arbitrarily; per-channel timestamps must be non-decreasing.
    """
    series: dict[str, tuple[list, list]] = {}
    for i, row in enumerate(rows):
        if isinstance(row, (str, bytes)):
            try:
                row = json.loads(row)
            except json.JSONDecodeError as exc:
                raise CalibrationError(
                    f"sysfs log row {i}: malformed JSON: {exc}"
                ) from None
        if not isinstance(row, Mapping):
            raise CalibrationError(f"sysfs log row {i}: expected an object")
        try:
            t, channel, value = row["t"], row["channel"], row["value"]
        except KeyError as exc:
            raise CalibrationError(
                f"sysfs log row {i}: missing key {exc.args[0]!r}"
            ) from None
        times, values = series.setdefault(str(channel), ([], []))
        times.append(float(t))
        values.append(float(value))
    if not series:
        raise CalibrationError("sysfs log contains no rows")
    return CalibTrace(
        channels=series,
        ambient_c=ambient_c,
        platform_hint=platform_hint,
        meta=meta,
    )
