"""Scripted excitation runs that produce identification-grade traces.

System identification needs inputs rich enough to separate the model terms:
per-domain OPP *staircases* under saturating load expose the CV^2 f curve
and the idle floor, an all-out heat *soak* spreads the temperature range the
leakage fit needs, and a parked *cooldown* is the step response the RC
identification reads its time constants from.  :func:`run_excitation`
drives all of that through the ordinary :class:`~repro.sim.engine.Simulation`
— userspace-pinned governors, real scheduler, real cpuidle gating — and
returns a :class:`~repro.calib.trace.CalibTrace` whose ``meta`` block holds
only the *structural* prior (cluster inventory, thermal topology, sensor
datasheet constants), never the numbers the fit is supposed to recover.

Dwell lengths are jittered on the ``calib.excite`` RNG stream so repeated
runs with different seeds decorrelate any periodic artefact, while the same
seed reproduces the exact trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calib.trace import CalibSegment, CalibTrace
from repro.errors import ConfigurationError
from repro.kernel.kernel import GPU_DOMAIN, KernelConfig
from repro.sim.engine import Simulation
from repro.soc.defs import PlatformDef
from repro.units import hz_to_mhz, mhz


@dataclass(frozen=True)
class ExcitationConfig:
    """Shape of one excitation run.

    ``dwell_s`` is the nominal hold time per OPP step (jittered per step by
    up to ``dwell_jitter`` of itself); ``max_opps_per_domain`` subsamples
    long OPP ladders, always keeping both endpoints.
    """

    dwell_s: float = 1.2
    max_opps_per_domain: int = 8
    soak_s: float = 12.0
    cooldown_s: float = 25.0
    settle_s: float = 1.0
    dwell_jitter: float = 0.1
    dt_s: float = 0.01
    record_period_s: float = 0.1

    def __post_init__(self) -> None:
        if self.dwell_s <= 0.0 or self.dt_s <= 0.0 or self.record_period_s <= 0.0:
            raise ConfigurationError("excitation durations must be positive")
        if self.soak_s <= 0.0 or self.cooldown_s <= 0.0 or self.settle_s <= 0.0:
            raise ConfigurationError("excitation durations must be positive")
        if self.max_opps_per_domain < 2:
            raise ConfigurationError("need at least two OPPs per staircase")
        if not 0.0 <= self.dwell_jitter < 1.0:
            raise ConfigurationError("dwell jitter must be in [0, 1)")
        if self.dwell_s < 4.0 * self.record_period_s:
            raise ConfigurationError(
                "dwell must span at least four record periods, otherwise "
                "no clean samples survive the settling mask"
            )


def structural_meta(pdef: PlatformDef) -> dict:
    """The prior a real device discloses without any measurement.

    Cluster/GPU inventory and available frequencies mirror sysfs, the
    thermal topology and rail-to-node power splits mirror the devicetree,
    and sensor constants come off the datasheet.  Everything the estimators
    fit — capacitances, conductances, C_eff, leakage, idle/base powers,
    supply voltages — is deliberately absent.
    """
    spec = pdef.compile()
    clusters = []
    for cluster in spec.clusters:
        clusters.append({
            "name": cluster.name,
            "core_type": cluster.core_type,
            "n_cores": cluster.n_cores,
            "freqs_mhz": [hz_to_mhz(f) for f in cluster.opps.frequencies_hz()],
            "rail": cluster.rail,
            "thermal_node": cluster.thermal_node,
            "is_big": cluster.is_big,
            "is_little": cluster.is_little,
            "ipc": cluster.ipc,
        })
    meta = {
        "source": "repro.calib.excite",
        "platform": pdef.name,
        "clusters": clusters,
        "gpu": {
            "name": spec.gpu.name,
            "gpu_type": spec.gpu.gpu_type,
            "freqs_mhz": [hz_to_mhz(f) for f in spec.gpu.opps.frequencies_hz()],
            "rail": spec.gpu.rail,
            "thermal_node": spec.gpu.thermal_node,
        },
        "memory": {
            "name": spec.memory.name,
            "rail": spec.memory.rail,
            "thermal_node": spec.memory.thermal_node,
        },
        "thermal": {
            "nodes": list(spec.thermal.node_names),
            "links": [[link.node_a, link.node_b] for link in spec.thermal.links],
            "power_split": {
                rail: dict(split)
                for rail, split in spec.thermal.power_split.items()
            },
        },
        "sensors": [dict(s) for s in pdef.sensors],
        "software": dict(pdef.software),
        "extras": dict(pdef.extras),
        "initial_temp_c": pdef.initial_temp_c,
        "has_board_rail": pdef.board_power_w > 0.0,
    }
    return meta


def _subsample_opps(freqs_hz: tuple, limit: int) -> list[float]:
    """At most ``limit`` frequencies, endpoints always included, ascending."""
    if len(freqs_hz) <= limit:
        return list(freqs_hz)
    step = (len(freqs_hz) - 1) / (limit - 1)
    picked = sorted({round(i * step) for i in range(limit)})
    return [freqs_hz[i] for i in picked]


def _resolve(platform) -> PlatformDef:
    if isinstance(platform, PlatformDef):
        return platform
    if isinstance(platform, str):
        from repro.soc import registry

        return registry.get(platform)
    raise ConfigurationError(
        f"platform must be a name or a PlatformDef, got {type(platform).__name__}"
    )


class _Excitation:
    """One excitation run in progress (shared plumbing for the phases)."""

    def __init__(self, pdef: PlatformDef, seed: int, config: ExcitationConfig):
        self.pdef = pdef
        self.config = config
        spec = pdef.compile()
        self.spec = spec
        # Default KernelConfig: no stock thermal policy, nothing fighting the
        # pinned frequencies during identification.
        self.sim = Simulation(
            spec,
            kernel_config=KernelConfig(),
            seed=seed,
            dt_s=config.dt_s,
            record_period_s=config.record_period_s,
        )
        self._jitter_rng = self.sim.rng.stream("calib.excite")
        self.segments: list[CalibSegment] = []
        self.domains = [c.name for c in spec.clusters] + [GPU_DOMAIN]
        for domain in self.domains:
            self.sim.kernel.set_cpu_governor(domain, "userspace")
        self.park()

    def opps(self, domain: str):
        if domain == GPU_DOMAIN:
            return self.spec.gpu.opps
        return self.spec.cluster(domain).opps

    def park(self) -> None:
        """Pin every domain at its lowest OPP."""
        for domain in self.domains:
            self.sim.kernel.userspace_set_speed(domain, self.opps(domain).min_freq_hz)

    def dwell(self) -> float:
        """One jittered dwell, rounded to a whole number of ticks."""
        cfg = self.config
        raw = cfg.dwell_s * (1.0 + cfg.dwell_jitter * self._jitter_rng.uniform(-1.0, 1.0))
        ticks = max(1, round(raw / cfg.dt_s))
        return ticks * cfg.dt_s

    def segment(self, name: str, kind: str, domain: str = "") -> "_SegmentScope":
        return _SegmentScope(self, name, kind, domain)

    def staircase_cluster(self, cluster) -> None:
        """Sweep one CPU cluster's ladder under a saturating load."""
        task = self.sim.kernel.spawn(
            f"calib-{cluster.name}",
            cluster=cluster.name,
            n_threads=cluster.n_cores,
            unbounded=True,
        )
        with self.segment(f"staircase-{cluster.name}", "staircase", cluster.name):
            for freq_hz in _subsample_opps(
                cluster.opps.frequencies_hz(), self.config.max_opps_per_domain
            ):
                self.sim.kernel.userspace_set_speed(cluster.name, freq_hz)
                self.sim.run(self.dwell())
        self.sim.kernel.scheduler.kill(task.pid)
        self.park()

    def staircase_gpu(self) -> None:
        """Sweep the GPU ladder with exact-cycle render submissions."""
        opps = self.spec.gpu.opps
        with self.segment("staircase-gpu", "staircase", GPU_DOMAIN):
            for freq_hz in _subsample_opps(
                opps.frequencies_hz(), self.config.max_opps_per_domain
            ):
                self.sim.kernel.userspace_set_speed(GPU_DOMAIN, freq_hz)
                dwell = self.dwell()
                self.sim.kernel.gpu.submit("calib", cycles=freq_hz * dwell)
                self.sim.run(dwell)
        self.park()

    def soak(self) -> None:
        """Everything flat out at the top OPPs: the hot end of the fits."""
        cfg = self.config
        pids = []
        for cluster in self.spec.clusters:
            pids.append(self.sim.kernel.spawn(
                f"calib-soak-{cluster.name}",
                cluster=cluster.name,
                n_threads=cluster.n_cores,
                unbounded=True,
            ).pid)
        for domain in self.domains:
            self.sim.kernel.userspace_set_speed(domain, self.opps(domain).max_freq_hz)
        # Slightly undershoot the GPU cycles so the queue drains before the
        # cooldown starts and the decay is unpolluted.
        self.sim.kernel.gpu.submit(
            "calib", cycles=self.spec.gpu.opps.max_freq_hz * cfg.soak_s * 0.97
        )
        with self.segment("soak", "soak"):
            self.sim.run(cfg.soak_s)
        for pid in pids:
            self.sim.kernel.scheduler.kill(pid)
        self.park()

    def quiesce(self, name: str, duration_s: float) -> None:
        """Parked, unloaded interval (settling or the cooldown step response)."""
        with self.segment(name, "cooldown"):
            self.sim.run(duration_s)

    def build_trace(self) -> CalibTrace:
        """Package the recorder channels (plus derived volt.*) as a trace."""
        channels = {}
        for name in self.sim.traces.names():
            channels[name] = self.sim.traces.series(name)
        # Regulator telemetry: a real capture logs the supply voltage next
        # to the clock; the simulated analogue maps each recorded frequency
        # through the OPP table it ran at.
        for domain in self.domains:
            times, freqs_mhz = self.sim.traces.series(f"freq.{domain}")
            opps = self.opps(domain)
            volts = [opps.voltage_for(mhz(f)) for f in freqs_mhz]
            channels[f"volt.{domain}"] = (times, volts)
        meta = structural_meta(self.pdef)
        meta["seed"] = self.sim.seed
        # Recording property, not a fitted number: lets the gap-aware
        # alignment recover the grid exactly even after heavy sample drops.
        meta["record_period_s"] = self.config.record_period_s
        return CalibTrace(
            channels=channels,
            segments=self.segments,
            ambient_c=self.pdef.default_ambient_c,
            platform_hint=self.pdef.name,
            meta=meta,
        )


class _SegmentScope:
    """Records one :class:`CalibSegment` around a block of simulated time."""

    def __init__(self, run: _Excitation, name: str, kind: str, domain: str):
        self._run = run
        self._name = name
        self._kind = kind
        self._domain = domain

    def __enter__(self) -> None:
        self._start = self._run.sim.now_s

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._run.segments.append(CalibSegment(
                name=self._name,
                kind=self._kind,
                start_s=self._start,
                end_s=self._run.sim.now_s,
                domain=self._domain,
            ))


def run_excitation(
    platform,
    seed: int = 0,
    config: ExcitationConfig | None = None,
) -> CalibTrace:
    """Excite ``platform`` (a registry name or a :class:`PlatformDef`).

    The scenario is: settle parked, staircase each CPU cluster under
    saturating load, staircase the GPU, soak everything at the top OPPs,
    then cool down parked.  Returns the identification-grade trace.
    """
    cfg = config or ExcitationConfig()
    pdef = _resolve(platform)
    run = _Excitation(pdef, seed, cfg)
    run.quiesce("settle", cfg.settle_s)
    for cluster in run.spec.clusters:
        run.staircase_cluster(cluster)
    run.staircase_gpu()
    run.soak()
    run.quiesce("cooldown", cfg.cooldown_s)
    return run.build_trace()
