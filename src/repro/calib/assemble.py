"""Turn a fit report plus a trace's structural prior into a `PlatformDef`.

The estimators recover numbers; this module recovers a *device*: it merges
the trace's structural metadata (cluster inventory, thermal topology,
sensors, software defaults) with the fitted parameters of every stage into
a :class:`~repro.soc.defs.PlatformDef` that validates and registers exactly
like a hand-written definition.  The assembled definition is pure data —
downstream layers (scenarios, campaigns, chaos, lint) cannot tell a fitted
platform from an authored one, which is the whole point.
"""

from __future__ import annotations

from repro.calib.fit import FitReport, fit_trace
from repro.calib.trace import CalibTrace
from repro.errors import CalibrationError
from repro.soc.defs import PlatformDef


def _positive(value: float, what: str) -> float:
    if value <= 0.0:
        raise CalibrationError(
            f"{what} came out non-positive ({value!r}); the trace does not "
            "excite this parameter enough to identify it"
        )
    return float(value)


def _component_block(comp_meta: dict, dvfs, leakage, what: str) -> dict:
    """Shared cluster/GPU assembly: structure from meta, numbers from fit."""
    return {
        "opps": dict(dvfs.params["opps"]),
        "ceff_w_per_v2hz": _positive(
            dvfs.params["ceff_w_per_v2hz"], f"{what} ceff"
        ),
        "idle_power_w": float(dvfs.params["idle_power_w"]),
        "leakage": {
            "kappa_w_per_k2": float(leakage.params["kappa_w_per_k2"]),
            "beta_k": _positive(leakage.params["beta_k"], f"{what} beta"),
        },
        "thermal_node": comp_meta["thermal_node"],
        "rail": comp_meta["rail"],
    }


def assemble_platform_def(
    trace: CalibTrace, report: FitReport, name: str | None = None
) -> PlatformDef:
    """Build the definition described by ``trace`` structure + ``report`` fit.

    ``name`` overrides the platform name (default: the trace's structural
    platform name, falling back to its ``platform_hint``).  Raises
    :class:`~repro.errors.CalibrationError` when a fitted parameter is
    degenerate (non-positive capacitance, conductance or C_eff).
    """
    meta = trace.meta
    resolved = name or meta.get("platform") or trace.platform_hint
    if not resolved:
        raise CalibrationError(
            "cannot name the assembled platform: pass name=..., or use a "
            "trace with a platform hint"
        )

    clusters = []
    for comp in meta["clusters"]:
        block = _component_block(
            comp,
            report.stage(f"dvfs.{comp['name']}"),
            report.stage(f"leakage.{comp['name']}"),
            f"cluster {comp['name']!r}",
        )
        block.update({
            "name": comp["name"],
            "core_type": comp["core_type"],
            "n_cores": int(comp["n_cores"]),
            "is_big": bool(comp.get("is_big", False)),
            "is_little": bool(comp.get("is_little", False)),
            "ipc": float(comp.get("ipc", 1.0)),
        })
        clusters.append(block)

    gpu_meta = meta["gpu"]
    gpu = _component_block(
        gpu_meta, report.stage("dvfs.gpu"), report.stage("leakage.gpu"), "gpu",
    )
    gpu.update({"name": gpu_meta["name"], "gpu_type": gpu_meta["gpu_type"]})

    mem_meta = meta["memory"]
    mem_fit = report.stage("memory")
    memory = {
        "name": mem_meta["name"],
        "base_power_w": float(mem_fit.params["base_power_w"]),
        "activity_power_w": float(mem_fit.params["activity_power_w"]),
        "leakage": {
            "kappa_w_per_k2": float(mem_fit.params["kappa_w_per_k2"]),
            "beta_k": _positive(mem_fit.params["beta_k"], "memory beta"),
        },
        "thermal_node": mem_meta["thermal_node"],
        "rail": mem_meta["rail"],
    }

    rc = report.stage("rc")
    nodes = [
        {
            "name": node["name"],
            "capacitance_j_per_k": _positive(
                node["capacitance_j_per_k"], f"node {node['name']!r} capacitance"
            ),
        }
        for node in rc.params["nodes"]
    ]
    links = [
        {
            "a": link["a"],
            "b": link["b"],
            "conductance_w_per_k": _positive(
                link["conductance_w_per_k"],
                f"link {link['a']}-{link['b']} conductance",
            ),
        }
        for link in rc.params["links"]
    ]

    board_w = float(report.stage("board").params["board_power_w"])
    if board_w < 1e-6:
        board_w = 0.0

    extras = dict(meta.get("extras", {}))
    extras["calibration"] = {
        "source": "repro.calib",
        "trace_hint": trace.platform_hint,
        "stages": report.stage_names(),
    }
    # Only a degraded fit records verdicts, so clean-trace definitions stay
    # byte-identical to those assembled before the robustness extension.
    if report.degraded():
        extras["calibration"]["verdicts"] = report.verdicts()

    return PlatformDef(
        name=resolved,
        clusters=tuple(clusters),
        gpu=gpu,
        memory=memory,
        thermal={
            "nodes": nodes,
            "links": links,
            "power_split": {
                rail: dict(split)
                for rail, split in meta["thermal"]["power_split"].items()
            },
        },
        sensors=tuple(dict(s) for s in meta.get("sensors", ())),
        board_power_w=board_w,
        default_ambient_c=trace.ambient_c,
        initial_temp_c=meta.get("initial_temp_c"),
        extras=extras,
        software=dict(meta.get("software", {})),
    )


def fit_platform(
    trace: CalibTrace, name: str | None = None, robust: str = "auto"
) -> tuple[PlatformDef, FitReport]:
    """End-to-end: run every estimator, assemble and validate the definition.

    Returns ``(platform_def, fit_report)``; the definition has passed
    :meth:`~repro.soc.defs.PlatformDef.validate` and is ready to register.
    ``robust`` selects the fit path (see :func:`repro.calib.fit.fit_trace`).
    """
    report = fit_trace(trace, robust=robust)
    pdef = assemble_platform_def(trace, report, name=name)
    pdef.validate()
    return pdef, report
