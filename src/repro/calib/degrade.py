"""Declarative sensor degradation: turn clean traces into realistic ones.

The excitation harness records the engine's noiseless node temperatures and
rail powers; a real capture never looks like that.  sysfs thermal zones are
millidegree-quantized, cpufreq reports kHz words, pollers drop samples,
TMUs spike, and userspace timestamps jitter.  :class:`DegradationModel`
describes those pathologies declaratively (``repro.calib.degrade/1`` wire
format) and applies them seed-deterministically, so the robust estimators
in :mod:`repro.calib.fit` can be exercised — and their closed-loop recovery
contract enforced — against traces with the same defects as real dumps.

Every knob defaults to zero, and the all-zero model is the identity
transform on every channel (a pinned property test).  Randomness comes
from a :class:`~repro.sim.rng.RngRegistry` built from the ``seed`` passed
to :meth:`DegradationModel.apply`: one ``calib.degrade.<channel>`` stream
per channel (stale repeats, spikes, noise, timestamp jitter — reusing the
:mod:`repro.faults.sensors` wrappers for the first two) plus a shared
``calib.degrade`` stream for record drops, which are drawn per *timestamp*
so that channels sampled by the same poller lose whole records together,
exactly as a stalled poll loop would.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Mapping

import numpy as np

from repro.calib.trace import CalibTrace, TEMP_PREFIX
from repro.errors import CalibrationError, ConfigurationError
from repro.faults.sensors import DroppingSensor, SeriesSensor, SpikySensor
from repro.sim.rng import RngRegistry

#: Wire-format version of the degradation-model JSON schema.
DEGRADE_FORMAT = "repro.calib.degrade/1"

#: Fraction of the neighbouring sample gap a jittered timestamp may move;
#: < 0.5 keeps jittered times strictly ordered and grid-snappable.
_JITTER_CLIP = 0.45

#: Quantum (in the channel's unit) applied per channel-name prefix.
_QUANTUM_KNOBS = (
    ("temp.", "temp_quantum_c"),
    ("freq.", "freq_quantum_mhz"),
    ("volt.", "volt_quantum_v"),
    ("power.", "power_quantum_w"),
)

#: Gaussian noise std (in the channel's unit) applied per prefix.
_NOISE_KNOBS = (
    ("temp.", "temp_noise_std_c"),
    ("power.", "power_noise_std_w"),
)


@dataclass(frozen=True)
class DegradationModel:
    """One declarative recipe for degrading a clean :class:`CalibTrace`.

    All knobs default to the identity.  Rates are probabilities in
    ``[0, 1]``; quanta, noise stds, spike magnitude and jitter are in the
    affected channel's native unit and must be non-negative.

    ``channel_offsets`` maps a channel name to a constant additive bias in
    that channel's unit (sensor calibration offset); ``drop_rate`` removes
    whole records (all channels lose the same timestamps); ``stale_rate``
    makes individual channels repeat their last good sample; ``spike_rate``
    and ``spike_magnitude_c`` inject positive outliers into ``temp.*``
    channels; ``time_jitter_std_s`` perturbs timestamps (clipped to keep
    them ordered).
    """

    temp_quantum_c: float = 0.0
    freq_quantum_mhz: float = 0.0
    volt_quantum_v: float = 0.0
    power_quantum_w: float = 0.0
    temp_noise_std_c: float = 0.0
    power_noise_std_w: float = 0.0
    channel_offsets: Mapping[str, float] = field(default_factory=dict)
    drop_rate: float = 0.0
    stale_rate: float = 0.0
    spike_rate: float = 0.0
    spike_magnitude_c: float = 25.0
    time_jitter_std_s: float = 0.0

    def __post_init__(self) -> None:
        for knob in (
            "temp_quantum_c", "freq_quantum_mhz", "volt_quantum_v",
            "power_quantum_w", "temp_noise_std_c", "power_noise_std_w",
            "spike_magnitude_c", "time_jitter_std_s",
        ):
            value = float(getattr(self, knob))
            if not np.isfinite(value) or value < 0.0:
                raise ConfigurationError(
                    f"degradation knob {knob} must be finite and >= 0, "
                    f"got {getattr(self, knob)!r}"
                )
            object.__setattr__(self, knob, value)
        for knob in ("drop_rate", "stale_rate", "spike_rate"):
            value = float(getattr(self, knob))
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"degradation rate {knob} must be in [0, 1], "
                    f"got {getattr(self, knob)!r}"
                )
            object.__setattr__(self, knob, value)
        offsets = {}
        for name, value in dict(self.channel_offsets).items():
            value = float(value)
            if not np.isfinite(value):
                raise ConfigurationError(
                    f"channel offset for {name!r} must be finite, got {value!r}"
                )
            offsets[str(name)] = value
        object.__setattr__(self, "channel_offsets", offsets)

    # ------------------------------------------------------------- queries

    def is_identity(self) -> bool:
        """Whether applying this model leaves every channel untouched."""
        return (
            self.temp_quantum_c == 0.0
            and self.freq_quantum_mhz == 0.0
            and self.volt_quantum_v == 0.0
            and self.power_quantum_w == 0.0
            and self.temp_noise_std_c == 0.0
            and self.power_noise_std_w == 0.0
            and not any(v != 0.0 for v in self.channel_offsets.values())
            and self.drop_rate == 0.0
            and self.stale_rate == 0.0
            and self.spike_rate == 0.0
            and self.time_jitter_std_s == 0.0
        )

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        data = asdict(self)
        data["channel_offsets"] = dict(sorted(self.channel_offsets.items()))
        data["format"] = DEGRADE_FORMAT
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "DegradationModel":
        """Inverse of :meth:`to_dict`; checks format and rejects typo'd knobs."""
        fmt = data.get("format")
        if fmt != DEGRADE_FORMAT:
            raise CalibrationError(
                f"unsupported degradation format {fmt!r}; "
                f"this reader speaks {DEGRADE_FORMAT!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known - {"format"})
        if unknown:
            raise CalibrationError(
                f"unknown degradation knob(s) {unknown}; have {sorted(known)}"
            )
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DegradationModel":
        """Parse a model from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CalibrationError(
                f"malformed degradation JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise CalibrationError("degradation JSON must be an object")
        return cls.from_dict(data)

    # --------------------------------------------------------- application

    def apply(self, trace: CalibTrace, seed: int = 0) -> CalibTrace:
        """Degrade ``trace`` deterministically; returns a new trace.

        The result's ``meta`` gains a ``degradation`` block recording the
        model and seed, so downstream fitting can tell (and report) that
        it is looking at degraded data.
        """
        rng = RngRegistry(int(seed))
        dropped = self._dropped_keys(trace, rng)
        channels = {}
        for name in trace.names():
            times, values = trace.series(name)
            keys = [_time_key(t) for t in times]
            stream = rng.stream(f"calib.degrade.{name}")
            values = np.array(values, dtype=float)
            times = np.array(times, dtype=float)
            if self.stale_rate > 0.0:
                values = _replay(DroppingSensor(
                    SeriesSensor(name, values), stream,
                    drop_probability=self.stale_rate,
                ), values.size)
            if self.spike_rate > 0.0 and name.startswith(TEMP_PREFIX):
                values = _replay(SpikySensor(
                    SeriesSensor(name, values), stream,
                    spike_probability=self.spike_rate,
                    spike_magnitude_c=self.spike_magnitude_c,
                ), values.size)
            offset = self.channel_offsets.get(name, 0.0)
            if offset != 0.0:
                values = values + offset
            for prefix, knob in _NOISE_KNOBS:
                std = getattr(self, knob)
                if std > 0.0 and name.startswith(prefix):
                    values = values + stream.normal(0.0, std, values.size)
            for prefix, knob in _QUANTUM_KNOBS:
                quantum = getattr(self, knob)
                if quantum > 0.0 and name.startswith(prefix):
                    values = np.round(values / quantum) * quantum
            if self.time_jitter_std_s > 0.0 and times.size > 1:
                times = _jitter_times(times, stream, self.time_jitter_std_s)
            if dropped:
                keep = np.array([k not in dropped for k in keys], dtype=bool)
                if not keep.any():
                    keep[0] = True
                times, values = times[keep], values[keep]
            channels[name] = (times, values)
        meta = dict(trace.meta)
        meta["degradation"] = {"model": self.to_dict(), "seed": int(seed)}
        return CalibTrace(
            channels=channels,
            segments=trace.segments,
            ambient_c=trace.ambient_c,
            platform_hint=trace.platform_hint,
            meta=meta,
        )

    def _dropped_keys(self, trace: CalibTrace, rng: RngRegistry) -> set:
        """Timestamps removed from *every* channel (stalled-poller drops)."""
        if self.drop_rate <= 0.0:
            return set()
        keys = sorted({
            _time_key(t)
            for name in trace.names()
            for t in trace.series(name)[0]
        })
        draws = rng.stream("calib.degrade").random(len(keys))
        return {k for k, u in zip(keys, draws) if u < self.drop_rate}


def _time_key(t: float) -> float:
    """Timestamps rounded for cross-channel record matching."""
    return round(float(t), 9)


def _replay(wrapper, n: int) -> np.ndarray:
    """Pull ``n`` readings through a fault-sensor wrapper."""
    return np.array([wrapper.read_c() for _ in range(n)])


def _jitter_times(times: np.ndarray, stream, std_s: float) -> np.ndarray:
    """Gaussian timestamp jitter, clipped so sample order is preserved."""
    gaps = np.diff(times)
    lo = np.empty(times.size)
    hi = np.empty(times.size)
    lo[0], hi[-1] = -_JITTER_CLIP * gaps[0], _JITTER_CLIP * gaps[-1]
    lo[1:] = -_JITTER_CLIP * gaps
    hi[:-1] = _JITTER_CLIP * gaps
    noise = stream.normal(0.0, std_s, times.size)
    return times + np.clip(noise, lo, hi)


#: Named recipes the CLI accepts for ``--model`` next to a JSON file path.
#: ``sysfs`` is pure quantization (millidegree temps, kHz frequency words,
#: mV regulator telemetry); ``noisy-sysfs`` adds the closed-loop contract's
#: pathologies (10 % record drops + occasional TMU spikes); ``harsh`` piles
#: on noise, heavier drops, stale repeats and timestamp jitter — expect
#: ``low_confidence`` verdicts from it.
BUILTIN_MODELS: Mapping[str, DegradationModel] = {
    "sysfs": DegradationModel(
        temp_quantum_c=0.001,
        freq_quantum_mhz=0.001,
        volt_quantum_v=0.001,
    ),
    # The closed-loop robustness contract model: millidegree temperature
    # quantization, 10% record drops, 1% temperature spikes.  Voltage and
    # frequency words are deliberately left unquantized here — leakage
    # separation is ill-conditioned enough that even millivolt rounding
    # pushes (kappa, beta, idle) past recovery tolerance; use "sysfs" or
    # "harsh" to study that regime.
    "noisy-sysfs": DegradationModel(
        temp_quantum_c=0.001,
        drop_rate=0.1,
        spike_rate=0.01,
        spike_magnitude_c=25.0,
    ),
    "harsh": DegradationModel(
        temp_quantum_c=0.5,
        freq_quantum_mhz=0.001,
        volt_quantum_v=0.001,
        temp_noise_std_c=0.3,
        power_noise_std_w=0.02,
        drop_rate=0.25,
        stale_rate=0.05,
        spike_rate=0.05,
        spike_magnitude_c=25.0,
        time_jitter_std_s=0.01,
    ),
}


def resolve_model(spec: str) -> DegradationModel:
    """A model from a built-in name or a JSON file path.

    The CLI's ``--model`` goes through here: exact built-in names win;
    anything else is read as a file.
    """
    if spec in BUILTIN_MODELS:
        return BUILTIN_MODELS[spec]
    try:
        with open(spec, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CalibrationError(
            f"degradation model {spec!r} is neither a built-in "
            f"({sorted(BUILTIN_MODELS)}) nor a readable file: {exc}"
        ) from None
    try:
        return DegradationModel.from_json(text)
    except CalibrationError as exc:
        raise CalibrationError(f"{spec}: {exc}") from None
