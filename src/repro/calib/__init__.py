"""Auto-calibration: fit a registrable :class:`~repro.soc.defs.PlatformDef`
from logged traces.

The source paper derives its power/thermal models by hand from instrumented
runs (DAQ power captures, sysfs temperature/frequency logs).  This package
automates that system-identification step:

* :mod:`repro.calib.trace` — the versioned ``CalibTrace`` wire format and
  loaders for DAQ captures and sysfs-style logs;
* :mod:`repro.calib.excite` — scripted step/staircase/cooldown excitation
  runs through the existing :class:`~repro.sim.engine.Simulation` that
  produce identification-grade traces;
* :mod:`repro.calib.fit` — the staged estimators (per-OPP CV^2 f
  regression, De Vogeleer log-linear leakage, RC-network identification)
  and the :class:`FitReport` they fill in;
* :mod:`repro.calib.assemble` — merges fitted parameters with the trace's
  structural metadata into a validated ``PlatformDef``.

The correctness contract is closed-loop: exciting a registered definition
and fitting from the trace alone recovers every fitted parameter within
tolerance (see ``docs/CALIBRATION.md``), and the fitted definition runs
through scenarios, campaigns, chaos and lint with zero code branches.
"""

from repro.calib.assemble import assemble_platform_def, fit_platform
from repro.calib.excite import ExcitationConfig, run_excitation
from repro.calib.fit import FitReport, StageFit
from repro.calib.trace import (
    CALIB_TRACE_FORMAT,
    CalibSegment,
    CalibTrace,
    trace_from_daq,
    trace_from_recorder,
    trace_from_sysfs_log,
)

__all__ = [
    "CALIB_TRACE_FORMAT",
    "CalibSegment",
    "CalibTrace",
    "ExcitationConfig",
    "FitReport",
    "StageFit",
    "assemble_platform_def",
    "fit_platform",
    "run_excitation",
    "trace_from_daq",
    "trace_from_recorder",
    "trace_from_sysfs_log",
]
