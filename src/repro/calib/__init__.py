"""Auto-calibration: fit a registrable :class:`~repro.soc.defs.PlatformDef`
from logged traces.

The source paper derives its power/thermal models by hand from instrumented
runs (DAQ power captures, sysfs temperature/frequency logs).  This package
automates that system-identification step:

* :mod:`repro.calib.trace` — the versioned ``CalibTrace`` wire format and
  loaders for DAQ captures and sysfs-style logs;
* :mod:`repro.calib.excite` — scripted step/staircase/cooldown excitation
  runs through the existing :class:`~repro.sim.engine.Simulation` that
  produce identification-grade traces;
* :mod:`repro.calib.degrade` — declarative, seed-deterministic sensor
  degradation (quantization, noise, drops, spikes, jitter) that turns
  clean traces into realistic sysfs/DAQ-grade ones;
* :mod:`repro.calib.robust` — robust-estimation primitives (gap-aware
  alignment, Hampel despiking, Huber/IRLS, confidence grading);
* :mod:`repro.calib.fit` — the staged estimators (per-OPP CV^2 f
  regression, De Vogeleer log-linear leakage, RC-network identification)
  in clean and robust variants, plus the :class:`FitReport` they fill in
  (verdicts, uncertainty, graceful demotion to structural priors);
* :mod:`repro.calib.assemble` — merges fitted parameters with the trace's
  structural metadata into a validated ``PlatformDef``.

The correctness contract is closed-loop: exciting a registered definition
and fitting from the trace alone recovers every fitted parameter within
tolerance (see ``docs/CALIBRATION.md``) — and the same holds through a
degraded trace (quantization + drops + spikes) at wider tolerance, while
clean-trace fits stay byte-identical to the clean estimators' output.
"""

from repro.calib.assemble import assemble_platform_def, fit_platform
from repro.calib.degrade import (
    BUILTIN_MODELS,
    DEGRADE_FORMAT,
    DegradationModel,
    resolve_model,
)
from repro.calib.excite import ExcitationConfig, run_excitation
from repro.calib.fit import (
    FIT_REPORT_FORMAT,
    ROBUST_MODES,
    VERDICTS,
    FitReport,
    StageFit,
    needs_robust,
)
from repro.calib.trace import (
    CALIB_TRACE_FORMAT,
    CalibSegment,
    CalibTrace,
    load_trace_file,
    trace_from_daq,
    trace_from_recorder,
    trace_from_sysfs_log,
)

__all__ = [
    "BUILTIN_MODELS",
    "CALIB_TRACE_FORMAT",
    "DEGRADE_FORMAT",
    "FIT_REPORT_FORMAT",
    "ROBUST_MODES",
    "VERDICTS",
    "CalibSegment",
    "CalibTrace",
    "DegradationModel",
    "ExcitationConfig",
    "FitReport",
    "StageFit",
    "assemble_platform_def",
    "fit_platform",
    "load_trace_file",
    "needs_robust",
    "resolve_model",
    "run_excitation",
    "trace_from_daq",
    "trace_from_recorder",
    "trace_from_sysfs_log",
]
