"""Reference excitation that produces the ``snapdragon-modern`` artifacts.

``snapdragon-modern`` is the first platform whose registered definition is a
*build artifact of the calibration pipeline* rather than hand-written data:
this module holds a generating stand-in definition (never registered), runs
the standard excitation against it, and fits the bundled definition from the
resulting trace alone.  Running ``python -m repro.calib.reference``
regenerates both checked-in artifacts:

* ``src/repro/soc/data/snapdragon_modern_trace.json`` — the excitation
  trace (values rounded for a compact diff-able file);
* ``src/repro/soc/data/snapdragon_modern.json`` — the fitted definition
  :mod:`repro.soc.snapdragon_modern` registers at import time.

Because the definition is fitted *from the rounded trace*, re-running the
fit against the bundled trace reproduces the bundled definition (modulo
BLAS least-squares noise far below the documented tolerances) — that is
what ``tests/test_snapdragon_modern.py`` pins.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.calib.assemble import fit_platform
from repro.calib.excite import ExcitationConfig, run_excitation
from repro.calib.trace import CalibTrace
from repro.soc.defs import PlatformDef

#: Seed of the bundled reference excitation run.
REFERENCE_SEED = 7

#: Compact excitation: fewer OPPs and shorter holds than the default, so the
#: checked-in trace stays small while every estimator keeps enough leverage.
REFERENCE_CONFIG = ExcitationConfig(
    dwell_s=0.8,
    max_opps_per_domain=6,
    soak_s=8.0,
    cooldown_s=15.0,
)

_BETA_K = 1850.0

#: The generating ground truth for the reference run.  Deliberately NOT
#: registered: the registry only ever sees the pipeline's fitted output.
#: A modern flagship SoC layout — one prime core, four big cores, three
#: efficiency cores, all on a 4 nm-class process (low leakage, tight
#: voltage range, skin-limited chassis).
SNAPDRAGON_MODERN_STAND_IN = PlatformDef(
    name="snapdragon-modern",
    clusters=(
        {
            "name": "little",
            "core_type": "Cortex-A510",
            "n_cores": 3,
            "opps": {"freqs_mhz": [307, 499, 691, 940, 1098, 1401, 1598, 1785],
                     "v_min": 0.55, "v_max": 0.85},
            "ceff_w_per_v2hz": 1.1e-10,
            "leakage": {"kappa_w_per_k2": 8.0e-5, "beta_k": _BETA_K},
            "idle_power_w": 0.02,
            "thermal_node": "soc",
            "rail": "little",
            "is_little": True,
            "ipc": 1.4,
        },
        {
            "name": "big",
            "core_type": "Cortex-A715",
            "n_cores": 4,
            "opps": {"freqs_mhz": [499, 710, 940, 1170, 1401, 1631, 1862,
                                   2050, 2316, 2650],
                     "v_min": 0.57, "v_max": 0.95},
            "ceff_w_per_v2hz": 3.2e-10,
            "leakage": {"kappa_w_per_k2": 2.2e-4, "beta_k": _BETA_K},
            "idle_power_w": 0.05,
            "thermal_node": "soc",
            "rail": "big",
            "ipc": 2.2,
        },
        {
            "name": "prime",
            "core_type": "Cortex-X3",
            "n_cores": 1,
            "opps": {"freqs_mhz": [595, 836, 1114, 1459, 1785, 2112, 2496,
                                   2802, 3014, 3187],
                     "v_min": 0.60, "v_max": 1.05},
            "ceff_w_per_v2hz": 5.5e-10,
            "leakage": {"kappa_w_per_k2": 2.8e-4, "beta_k": _BETA_K},
            "idle_power_w": 0.07,
            "thermal_node": "soc",
            "rail": "prime",
            "is_big": True,
            "ipc": 2.6,
        },
    ),
    gpu={
        "name": "adreno740",
        "gpu_type": "Adreno 740",
        "opps": {"freqs_mhz": [220, 313, 402, 500, 580, 680],
                 "v_min": 0.60, "v_max": 0.95},
        "ceff_w_per_v2hz": 2.2e-9,
        "leakage": {"kappa_w_per_k2": 3.0e-4, "beta_k": _BETA_K},
        "idle_power_w": 0.06,
        "thermal_node": "soc",
        "rail": "gpu",
    },
    memory={
        "name": "mem",
        "base_power_w": 0.10,
        "activity_power_w": 0.45,
        "leakage": {"kappa_w_per_k2": 6.0e-5, "beta_k": _BETA_K},
        "thermal_node": "pcb",
        "rail": "mem",
    },
    thermal={
        "nodes": [
            {"name": "soc", "capacitance_j_per_k": 3.2},
            {"name": "pcb", "capacitance_j_per_k": 18.0},
            {"name": "skin", "capacitance_j_per_k": 55.0},
        ],
        "links": [
            {"a": "soc", "b": "pcb", "conductance_w_per_k": 1.2},
            {"a": "pcb", "b": "skin", "conductance_w_per_k": 0.70},
            {"a": "skin", "b": "ambient", "conductance_w_per_k": 0.38},
            {"a": "soc", "b": "ambient", "conductance_w_per_k": 0.02},
        ],
        "power_split": {
            "prime": {"soc": 1.0},
            "big": {"soc": 1.0},
            "little": {"soc": 1.0},
            "gpu": {"soc": 1.0},
            "mem": {"pcb": 1.0},
            "board": {"pcb": 0.6, "skin": 0.4},
        },
    },
    sensors=(
        {"name": "pkg", "node": "soc", "noise_std_c": 0.1,
         "quantization_c": 0.1},
        {"name": "skin", "node": "skin", "noise_std_c": 0.1,
         "quantization_c": 0.1},
    ),
    board_power_w=0.9,
    default_ambient_c=25.0,
    initial_temp_c=30.0,
    extras={"soc": "Snapdragon 8-class (modern)", "process": "4 nm"},
    software={
        "thermal": {
            "kind": "step_wise",
            "sensor": "pkg",
            "cooled": ["prime", "big", "gpu"],
            "trips": [{"temp_c": 46.0, "hyst_c": 1.5}],
            "polling_s": 0.1,
        },
        "t_limit_c": 48.0,
    },
)


def _round_floats(obj, ndigits: int = 6):
    """Round every float in a JSON-native structure (compact artifacts)."""
    if isinstance(obj, float):
        return round(obj, ndigits)
    if isinstance(obj, list):
        return [_round_floats(item, ndigits) for item in obj]
    if isinstance(obj, dict):
        return {key: _round_floats(value, ndigits) for key, value in obj.items()}
    return obj


def reference_trace() -> CalibTrace:
    """The canonical excitation trace of the stand-in, rounded for bundling."""
    raw = run_excitation(
        SNAPDRAGON_MODERN_STAND_IN, seed=REFERENCE_SEED, config=REFERENCE_CONFIG
    )
    return CalibTrace.from_dict(_round_floats(raw.to_dict()))


def data_dir() -> Path:
    """Directory the bundled artifacts live in."""
    return Path(__file__).resolve().parent.parent / "soc" / "data"


def regenerate(out_dir: Path | None = None) -> tuple[Path, Path]:
    """Re-run excite + fit and rewrite both artifacts; returns their paths."""
    out = Path(out_dir) if out_dir is not None else data_dir()
    out.mkdir(parents=True, exist_ok=True)
    trace = reference_trace()
    pdef, _report = fit_platform(trace)
    trace_path = out / "snapdragon_modern_trace.json"
    def_path = out / "snapdragon_modern.json"
    trace_path.write_text(
        json.dumps(trace.to_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )
    def_path.write_text(
        json.dumps(pdef.to_dict(), sort_keys=True, indent=2) + "\n"
    )
    return trace_path, def_path


if __name__ == "__main__":
    for path in regenerate():
        print(path)
