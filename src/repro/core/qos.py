"""QoS-tracking DVFS controller — the related-work baseline (extension).

The paper's Section II discusses closed-loop QoS managers (QScale, MAESTRO:
Sahin & Coskun; cooperative CPU-GPU scaling: Prakash et al.).  Their common
shape: track a target frame rate with per-domain DVFS and back off when the
temperature approaches the limit.  Crucially, such controllers throttle the
*foreground* pipeline itself under thermal pressure, whereas the paper's
governor removes the background offender instead.

This implementation is a faithful member of that family, used by the
ablation benchmarks as a comparison point.  It is a pure userspace daemon:
it pins frequencies by writing ``scaling_min_freq``/``scaling_max_freq``
(and the devfreq equivalents) — a standard technique that needs no special
kernel support.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.frames import FpsMeter
from repro.errors import ConfigurationError
from repro.kernel.kernel import GPU_DOMAIN, UserspaceApi
from repro.kernel.wiring import policy_dir
from repro.units import millicelsius_to_celsius


@dataclass(frozen=True)
class QosConfig:
    """Tunables of the QoS controller."""

    target_fps: float
    t_limit_c: float = 85.0
    thermal_margin_c: float = 3.0
    period_s: float = 0.5
    fps_window_s: float = 2.0
    deadband: float = 0.05  # relative FPS error tolerated without action

    def __post_init__(self) -> None:
        if self.target_fps <= 0.0:
            raise ConfigurationError("target_fps must be positive")
        if self.period_s <= 0.0 or self.fps_window_s <= 0.0:
            raise ConfigurationError("controller periods must be positive")
        if not 0.0 <= self.deadband < 1.0:
            raise ConfigurationError("deadband must be in [0, 1)")


@dataclass
class QosAction:
    """One controller decision, for post-hoc analysis."""

    time_s: float
    fps: float
    temp_c: float
    direction: str  # "up", "down", "thermal_down", "hold"
    levels: dict = field(default_factory=dict)


class QosController:
    """Step-based QoS feedback over the big-CPU and GPU frequency ladders."""

    def __init__(
        self,
        api: UserspaceApi,
        fps_meter: FpsMeter,
        temp_path: str,
        config: QosConfig,
        cpu_policy_dir: str,
        gpu_dir: str = "/sys/class/devfreq/gpu",
    ) -> None:
        self._api = api
        self._meter = fps_meter
        self._temp_path = temp_path
        self.config = config
        self._cpu_dir = cpu_policy_dir
        self._gpu_dir = gpu_dir
        fs = api.fs
        self._cpu_freqs_khz = [
            int(tok) for tok in
            fs.read(f"{cpu_policy_dir}/scaling_available_frequencies").split()
        ]
        self._gpu_freqs_hz = [
            int(tok) for tok in
            fs.read(f"{gpu_dir}/available_frequencies").split()
        ]
        self._cpu_level = len(self._cpu_freqs_khz) - 1
        self._gpu_level = len(self._gpu_freqs_hz) - 1
        self.actions: list[QosAction] = []
        self._apply()

    @classmethod
    def for_simulation(
        cls, sim, app, config: QosConfig, sensor: str | None = None
    ) -> "QosController":
        """Wire a controller to a simulation and a frame app's FPS meter."""
        platform = sim.platform
        api = sim.kernel.userspace_api()
        sensor_name = sensor
        if sensor_name is None:
            for spec in platform.sensors:
                if spec.node == platform.big_cluster.thermal_node:
                    sensor_name = spec.name
                    break
            else:
                sensor_name = platform.sensors[0].name
        temp_path = None
        for i in range(32):
            path = f"/sys/class/thermal/thermal_zone{i}/type"
            if not api.fs.exists(path):
                break
            if api.fs.read(path).strip() == sensor_name:
                temp_path = f"/sys/class/thermal/thermal_zone{i}/temp"
                break
        if temp_path is None:
            raise ConfigurationError(f"no thermal zone of type {sensor_name!r}")
        return cls(
            api,
            app.fps,
            temp_path,
            config,
            cpu_policy_dir=policy_dir(sim.kernel, platform.big_cluster.name),
        )

    def install(self, kernel) -> None:
        """Register as a periodic userspace daemon."""
        kernel.register_daemon("qos-controller", self.config.period_s, self.run)

    # ------------------------------------------------------------ actuation

    def _pin_cpu(self, khz: int) -> None:
        fs = self._api.fs
        current_min = fs.read_int(f"{self._cpu_dir}/scaling_min_freq")
        if khz >= current_min:
            fs.write(f"{self._cpu_dir}/scaling_max_freq", khz)
            fs.write(f"{self._cpu_dir}/scaling_min_freq", khz)
        else:
            fs.write(f"{self._cpu_dir}/scaling_min_freq", khz)
            fs.write(f"{self._cpu_dir}/scaling_max_freq", khz)

    def _pin_gpu(self, hz: int) -> None:
        fs = self._api.fs
        current_min = fs.read_int(f"{self._gpu_dir}/min_freq")
        if hz >= current_min:
            fs.write(f"{self._gpu_dir}/max_freq", hz)
            fs.write(f"{self._gpu_dir}/min_freq", hz)
        else:
            fs.write(f"{self._gpu_dir}/min_freq", hz)
            fs.write(f"{self._gpu_dir}/max_freq", hz)

    def _apply(self) -> None:
        self._pin_cpu(self._cpu_freqs_khz[self._cpu_level])
        self._pin_gpu(self._gpu_freqs_hz[self._gpu_level])

    def _step(self, delta: int) -> None:
        self._cpu_level = min(
            max(self._cpu_level + delta, 0), len(self._cpu_freqs_khz) - 1
        )
        self._gpu_level = min(
            max(self._gpu_level + delta, 0), len(self._gpu_freqs_hz) - 1
        )
        self._apply()

    # -------------------------------------------------------------- control

    def _achieved_fps(self, now_s: float) -> float:
        start = max(now_s - self.config.fps_window_s, 0.0)
        _, fps = self._meter.fps_series(start_s=start, end_s=now_s)
        if fps.size == 0:
            return 0.0
        return float(fps.mean())

    def run(self, now_s: float) -> None:
        """One control period."""
        if now_s < self.config.fps_window_s:
            return  # no complete FPS window yet
        fps = self._achieved_fps(now_s)
        temp_c = millicelsius_to_celsius(
            self._api.fs.read_int(self._temp_path)
        )
        err = (self.config.target_fps - fps) / self.config.target_fps
        if temp_c > self.config.t_limit_c - self.config.thermal_margin_c:
            direction = "thermal_down"
            self._step(-1)
        elif err > self.config.deadband:
            direction = "up"
            self._step(+1)
        elif err < -2.0 * self.config.deadband:
            direction = "down"
            self._step(-1)
        else:
            direction = "hold"
        self.actions.append(
            QosAction(
                time_s=now_s, fps=fps, temp_c=temp_c, direction=direction,
                levels={"cpu": self._cpu_level, "gpu": self._gpu_level},
            )
        )
