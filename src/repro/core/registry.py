"""Real-time process registry.

The paper: "The algorithm also lets processes with real-time requirements
register themselves so that they are not penalized."  Foreground apps (the
3DMark benchmark in Section IV.C) register their pids; the governor never
migrates a registered process.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class RealTimeRegistry:
    """Set of protected pids with human-readable labels."""

    def __init__(self) -> None:
        self._protected: dict[int, str] = {}

    def register(self, pid: int, label: str = "") -> None:
        """Protect ``pid`` from governor throttling/migration."""
        if pid < 0:
            raise ConfigurationError(f"invalid pid {pid}")
        self._protected[int(pid)] = label

    def unregister(self, pid: int) -> None:
        """Remove protection (no-op if the pid is not registered)."""
        self._protected.pop(int(pid), None)

    def is_protected(self, pid: int) -> bool:
        """Whether the governor must leave ``pid`` alone."""
        return int(pid) in self._protected

    def pids(self) -> tuple[int, ...]:
        """All protected pids, sorted."""
        return tuple(sorted(self._protected))

    def __len__(self) -> int:
        return len(self._protected)
