"""Data-driven skin-temperature prediction (extension, after ref [5]).

Egilmez et al. (DATE 2015, the paper's ref [5]) fit a linear predictor for
the phone's *skin* temperature — the quantity the user actually feels —
from on-die observables, then drive DVFS with it.  This module implements
that identification step on simulation traces:

    T_skin[k+1] = a * T_skin[k] + b * T_pkg[k] + c * P[k] + d

fitted by least squares on ZOH-aligned channels.  Because the skin node lags
the package by tens of seconds (see ``experiments.skin``), the predictor
gives a governor early warning long before the shell is hot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder, resample_zoh


@dataclass(frozen=True)
class SkinModel:
    """Fitted coefficients of the one-step skin predictor."""

    a: float
    b: float
    c: float
    d: float
    dt_s: float
    rmse_c: float

    def step(self, t_skin_c: float, t_pkg_c: float, power_w: float) -> float:
        """One prediction step of ``dt_s`` seconds."""
        return self.a * t_skin_c + self.b * t_pkg_c + self.c * power_w + self.d

    def forecast(
        self,
        t_skin_c: float,
        t_pkg_c: float,
        power_w: float,
        horizon_s: float,
    ) -> float:
        """Skin temperature after ``horizon_s`` with held package/power."""
        if horizon_s < 0.0:
            raise AnalysisError("horizon must be non-negative")
        steps = int(round(horizon_s / self.dt_s))
        value = t_skin_c
        for _ in range(steps):
            value = self.step(value, t_pkg_c, power_w)
        return value

    def steady_state_c(self, t_pkg_c: float, power_w: float) -> float:
        """Fixed point of the recursion for held package temp and power."""
        if not 0.0 < self.a < 1.0:
            raise AnalysisError(
                f"non-contracting skin model (a={self.a}); cannot extrapolate"
            )
        return (self.b * t_pkg_c + self.c * power_w + self.d) / (1.0 - self.a)

    def time_to_limit_s(
        self,
        t_skin_c: float,
        t_pkg_c: float,
        power_w: float,
        limit_c: float,
        max_horizon_s: float = 3600.0,
    ) -> float:
        """Time until the predicted skin temperature crosses ``limit_c``.

        Returns ``inf`` when the held-input steady state stays below it.
        """
        if t_skin_c >= limit_c:
            return 0.0
        if self.steady_state_c(t_pkg_c, power_w) <= limit_c:
            return float("inf")
        value = t_skin_c
        elapsed = 0.0
        while elapsed < max_horizon_s:
            value = self.step(value, t_pkg_c, power_w)
            elapsed += self.dt_s
            if value >= limit_c:
                return elapsed
        return float("inf")


def fit_skin_model(
    traces: TraceRecorder,
    skin_channel: str = "temp.skin",
    pkg_channel: str = "temp.soc",
    power_channel: str = "power.total",
    dt_s: float = 1.0,
) -> SkinModel:
    """Identify a :class:`SkinModel` from recorded channels."""
    if dt_s <= 0.0:
        raise AnalysisError("dt must be positive")
    skin_t, skin_v = traces.series(skin_channel)
    if skin_t.size < 10:
        raise AnalysisError("need at least 10 skin samples to fit")
    start, end = float(skin_t[0]), float(skin_t[-1])
    grid = np.arange(start, end, dt_s)
    if grid.size < 10:
        raise AnalysisError("recording too short for the requested dt")
    skin = resample_zoh(skin_t, skin_v, grid)
    pkg_t, pkg_v = traces.series(pkg_channel)
    pkg = resample_zoh(pkg_t, pkg_v, grid)
    pow_t, pow_v = traces.series(power_channel)
    power = resample_zoh(pow_t, pow_v, grid)

    design = np.column_stack(
        [skin[:-1], pkg[:-1], power[:-1], np.ones(grid.size - 1)]
    )
    target = skin[1:]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    predicted = design @ coeffs
    rmse = float(np.sqrt(np.mean((predicted - target) ** 2)))
    return SkinModel(
        a=float(coeffs[0]),
        b=float(coeffs[1]),
        c=float(coeffs[2]),
        d=float(coeffs[3]),
        dt_s=dt_s,
        rmse_c=rmse,
    )
