"""Safe power budgets from the fixed-point analysis (extension).

Inverting the fixed-point condition gives the largest dynamic power whose
*stable* steady state stays at or below a thermal limit:

    T_lim = T_a + R * (P_dyn + P_leak(T_lim))
    P_safe(T_lim) = (T_lim - T_a)/R - kappa * T_lim^2 * exp(-beta/T_lim)

This is the natural budget a DTPM governor should enforce (cf. TSP, Pagani
et al.), and the quantity the paper's Section IV.A analysis makes cheap to
compute at runtime.  The budget is also capped by the critical power, above
which no fixed point exists at all.
"""

from __future__ import annotations

import math

from repro.core.fixed_point import critical_power_w, steady_state_temp_k
from repro.core.stability import LumpedThermalParams
from repro.errors import StabilityError


def safe_power_budget_w(
    params: LumpedThermalParams, t_limit_k: float
) -> float:
    """Largest dynamic power with a stable steady state <= ``t_limit_k``."""
    if t_limit_k <= params.t_ambient_k:
        raise StabilityError(
            f"thermal limit {t_limit_k} K is at or below ambient "
            f"{params.t_ambient_k} K"
        )
    direct = (
        (t_limit_k - params.t_ambient_k) / params.r_k_per_w
        - params.leakage_w(t_limit_k)
    )
    if direct <= 0.0:
        return 0.0
    p_crit = critical_power_w(params)
    budget = min(direct, p_crit)
    # When below critical power, make sure the *stable* root is the one at
    # the limit (for very high limits the relevant root can be unstable).
    if budget < p_crit:
        t_ss = steady_state_temp_k(params, budget)
        if t_ss > t_limit_k + 1e-6:
            return 0.0
    return budget


def headroom_w(
    params: LumpedThermalParams, t_limit_k: float, p_dyn_now_w: float
) -> float:
    """Remaining safe dynamic power (negative when over budget)."""
    if p_dyn_now_w < 0.0:
        raise StabilityError("current power must be non-negative")
    return safe_power_budget_w(params, t_limit_k) - p_dyn_now_w


def sustainable_frequency_fraction(
    params: LumpedThermalParams, t_limit_k: float, p_dyn_now_w: float
) -> float:
    """Crude DVFS hint: the cubic-law frequency scale that fits the budget.

    Dynamic power scales roughly with f^3 along a voltage/frequency ladder;
    the fraction returned is the frequency multiplier that brings
    ``p_dyn_now_w`` inside the safe budget (1.0 when already safe).
    """
    if p_dyn_now_w <= 0.0:
        return 1.0
    budget = safe_power_budget_w(params, t_limit_k)
    if p_dyn_now_w <= budget:
        return 1.0
    return float(math.pow(budget / p_dyn_now_w, 1.0 / 3.0))
