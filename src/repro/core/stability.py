"""Power-temperature fixed-point function (Section IV.A, after Bhat et al.,
ACM TECS 2017).

Lumped dynamics with temperature-dependent leakage:

    C dT/dt = (T_a - T)/R + P_dyn + kappa * T^2 * exp(-beta/T)

Substituting the *auxiliary temperature* x = beta / T (inversely proportional
to the temperature in kelvin, as the paper states) gives, up to the positive
factor x^2/(beta*C),

    R*C dx/dt = f(x) = x - c1*x^2 - c2*exp(-x)
    c1 = (T_a + R*P_dyn) / beta        c2 = R * kappa * beta

``f`` is strictly concave (f'' = -2*c1 - c2*e^(-x) < 0), so it has zero, one
or two roots — the paper's Figure 7.  The larger root in x (the *lower*
temperature) is the stable fixed point; the smaller is unstable; no roots
means thermal runaway.  Raising P_dyn raises c1 and shifts f downward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.errors import StabilityError


@dataclass(frozen=True)
class LumpedThermalParams:
    """Lumped hotspot model: R, C, leakage (kappa, beta), ambient."""

    r_k_per_w: float
    c_j_per_k: float
    kappa_w_per_k2: float
    beta_k: float
    t_ambient_k: float

    def __post_init__(self) -> None:
        if self.r_k_per_w <= 0.0 or self.c_j_per_k <= 0.0:
            raise StabilityError("thermal R and C must be positive")
        if self.kappa_w_per_k2 <= 0.0 or self.beta_k <= 0.0:
            raise StabilityError("leakage kappa and beta must be positive")
        if self.t_ambient_k <= 0.0:
            raise StabilityError("ambient temperature must be positive kelvin")

    @property
    def time_constant_s(self) -> float:
        """R*C, the linear-part thermal time constant."""
        return self.r_k_per_w * self.c_j_per_k

    def leakage_w(self, temp_k: float) -> float:
        """Leakage power at ``temp_k``."""
        if temp_k <= 0.0:
            raise StabilityError(f"non-physical temperature {temp_k} K")
        return (
            self.kappa_w_per_k2 * temp_k * temp_k * math.exp(-self.beta_k / temp_k)
        )

    def aux_from_temp(self, temp_k: float) -> float:
        """Auxiliary temperature x = beta / T."""
        if temp_k <= 0.0:
            raise StabilityError(f"non-physical temperature {temp_k} K")
        return self.beta_k / temp_k

    def temp_from_aux(self, x: float) -> float:
        """Temperature T = beta / x."""
        if x <= 0.0:
            raise StabilityError(f"auxiliary temperature must be positive, got {x}")
        return self.beta_k / x


#: Canonical lumped parameters identified for the Odroid-XU3 with its fan
#: disabled — chosen so the critical power sits at the paper's 5.5 W
#: (Figure 7b) with a 27 degC ambient.
ODROID_XU3_LUMPED = LumpedThermalParams(
    r_k_per_w=14.0,
    c_j_per_k=5.0,
    kappa_w_per_k2=1.0103e-3,
    beta_k=1650.0,
    t_ambient_k=300.15,
)


class FixedPointFunction:
    """The concave fixed-point function f(x) = x - c1*x^2 - c2*exp(-x)."""

    def __init__(self, c1: float, c2: float) -> None:
        if c1 <= 0.0 or c2 <= 0.0:
            raise StabilityError(f"coefficients must be positive: c1={c1}, c2={c2}")
        self.c1 = c1
        self.c2 = c2

    @classmethod
    def from_lumped(
        cls, params: LumpedThermalParams, p_dyn_w: float
    ) -> "FixedPointFunction":
        """Build f for a dynamic-power level on a lumped model."""
        if p_dyn_w < 0.0:
            raise StabilityError(f"dynamic power must be non-negative: {p_dyn_w}")
        c1 = (params.t_ambient_k + params.r_k_per_w * p_dyn_w) / params.beta_k
        c2 = params.r_k_per_w * params.kappa_w_per_k2 * params.beta_k
        return cls(c1, c2)

    def __call__(self, x: float) -> float:
        """Evaluate f(x)."""
        return x - self.c1 * x * x - self.c2 * math.exp(-x)

    def derivative(self, x: float) -> float:
        """f'(x) = 1 - 2*c1*x + c2*exp(-x)."""
        return 1.0 - 2.0 * self.c1 * x + self.c2 * math.exp(-x)

    def argmax(self) -> float:
        """The unique maximiser of f (f' is strictly decreasing)."""
        lo, hi = 1e-9, 1.0
        # f'(0+) = 1 + c2 > 0; expand hi until f'(hi) < 0.
        while self.derivative(hi) > 0.0:
            hi *= 2.0
            if hi > 1e9:
                raise StabilityError("failed to bracket the maximiser")
        return float(brentq(self.derivative, lo, hi, xtol=1e-12))

    def roots(self) -> tuple[float, ...]:
        """All roots, ascending: () for runaway, (x,) critical, (xu, xs) stable.

        By concavity the number of roots equals 0, 1 or 2.  Note f(0) = -c2
        < 0 and f(x) -> -inf as x -> inf, so both roots (when they exist)
        bracket the maximiser.
        """
        x_peak = self.argmax()
        peak = self(x_peak)
        if peak < -1e-12:
            return ()
        if abs(peak) <= 1e-12:
            return (x_peak,)
        lo = 1e-12
        hi = x_peak
        left = float(brentq(self, lo, hi, xtol=1e-12))
        # Expand to the right until f < 0 again.
        hi2 = max(2.0 * x_peak, x_peak + 1.0)
        while self(hi2) > 0.0:
            hi2 *= 2.0
            if hi2 > 1e9:
                raise StabilityError("failed to bracket the stable root")
        right = float(brentq(self, x_peak, hi2, xtol=1e-12))
        return (left, right)
