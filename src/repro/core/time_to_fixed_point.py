"""Transient predictions: how long until the fixed point (or a limit) is hit.

In auxiliary-temperature space the lumped dynamics are separable:

    R*C dx/dt = f(x)   =>   t = R*C * integral dx / f(x)

so the time from the current state to any target along the trajectory is a
one-dimensional quadrature.  The governor uses this to decide whether a
predicted violation is *imminent* (time below its horizon) or far enough
away to keep waiting.
"""

from __future__ import annotations

import math

from scipy.integrate import quad

from repro.core.fixed_point import StabilityClass, analyze
from repro.core.stability import FixedPointFunction, LumpedThermalParams
from repro.errors import StabilityError

_EPS_BALL_K = 0.5  # "reached" means within half a kelvin of the fixed point


def _travel_time_s(
    params: LumpedThermalParams, func: FixedPointFunction, x_from: float, x_to: float
) -> float:
    """Quadrature of R*C/f(x) between two auxiliary temperatures."""
    if abs(x_from - x_to) < 1e-12:
        return 0.0
    value, _err = quad(lambda x: 1.0 / func(x), x_from, x_to, limit=200)
    t = params.time_constant_s * value
    if t < 0.0:
        raise StabilityError(
            f"target x={x_to} is not on the trajectory from x={x_from}"
        )
    return t


def time_to_fixed_point_s(
    params: LumpedThermalParams,
    p_dyn_w: float,
    temp_now_k: float,
    tol_k: float = _EPS_BALL_K,
) -> float:
    """Time until the temperature settles within ``tol_k`` of the fixed point.

    Returns ``inf`` when the trajectory never reaches it: thermal runaway
    (no fixed point), or a start beyond the unstable fixed point.
    """
    if tol_k <= 0.0:
        raise StabilityError("tolerance must be positive")
    report = analyze(params, p_dyn_w)
    if report.classification is StabilityClass.RUNAWAY:
        return math.inf
    x_now = params.aux_from_temp(temp_now_k)
    x_stable = report.stable_aux
    if (
        report.classification is StabilityClass.STABLE
        and x_now < report.unstable_aux
    ):
        return math.inf  # beyond the unstable point: diverging
    t_stable = report.stable_temp_k
    if abs(temp_now_k - t_stable) <= tol_k:
        return 0.0
    if temp_now_k < t_stable:
        x_target = params.aux_from_temp(t_stable - tol_k)
    else:
        x_target = params.aux_from_temp(t_stable + tol_k)
    func = FixedPointFunction.from_lumped(params, p_dyn_w)
    return _travel_time_s(params, func, x_now, x_target)


def time_to_temperature_s(
    params: LumpedThermalParams,
    p_dyn_w: float,
    temp_now_k: float,
    temp_target_k: float,
) -> float:
    """Time until the trajectory first crosses ``temp_target_k``.

    Returns ``inf`` when the target is not on the trajectory (e.g. the
    stable fixed point sits below the target, so it is never reached).
    """
    if abs(temp_target_k - temp_now_k) < 1e-9:
        return 0.0
    report = analyze(params, p_dyn_w)
    x_now = params.aux_from_temp(temp_now_k)
    x_target = params.aux_from_temp(temp_target_k)
    func = FixedPointFunction.from_lumped(params, p_dyn_w)

    if report.classification is StabilityClass.RUNAWAY:
        # x only ever decreases; any hotter target is eventually reached.
        if x_target < x_now:
            return _travel_time_s(params, func, x_now, x_target)
        return math.inf

    x_stable = report.stable_aux
    x_unstable = report.unstable_aux
    if report.classification is StabilityClass.STABLE and x_now < x_unstable:
        # Runaway branch: heading to x -> 0 (T -> inf).
        if x_target < x_now:
            return _travel_time_s(params, func, x_now, x_target)
        return math.inf
    # Converging towards x_stable: the target must lie strictly between.
    heading_down = x_now > x_stable  # temperature rising
    if heading_down and (x_stable < x_target < x_now):
        return _travel_time_s(params, func, x_now, x_target)
    if not heading_down and (x_now < x_target < x_stable):
        return _travel_time_s(params, func, x_now, x_target)
    return math.inf
