"""The application-aware thermal governor (Section IV.B).

Every control period (100 ms by default) the governor, running as a
*userspace* daemon against /sys and /proc:

1. reads the per-rail power sensors and totals the draw;
2. subtracts the modelled leakage at the current hotspot temperature to
   estimate the dynamic power, and runs the fixed-point stability analysis;
3. if the stable fixed-point temperature exceeds the thermal limit (or no
   fixed point exists at all) *and* the predicted time to violation is
   below the user horizon, it identifies the most power-hungry process over
   a one-second utilisation window — skipping processes registered as
   real-time — and migrates it to the LITTLE cluster.

Unlike the stock governors of Section III, nothing else is throttled: every
other app keeps running at full performance.

An optional extension (off by default, matching the paper) migrates
processes back to the big cluster once ample thermal headroom returns.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.calibration import lump_platform
from repro.core.fixed_point import StabilityClass, analyze
from repro.core.registry import RealTimeRegistry
from repro.core.stability import LumpedThermalParams
from repro.core.time_to_fixed_point import time_to_temperature_s
from repro.errors import ConfigurationError, SysfsError
from repro.kernel.kernel import UserspaceApi
from repro.units import (
    celsius_to_kelvin,
    kelvin_to_celsius,
    millicelsius_to_celsius,
    milliseconds_to_seconds,
)


@dataclass(frozen=True)
class GovernorConfig:
    """Tunables of the application-aware governor."""

    t_limit_c: float = 85.0
    horizon_s: float = 60.0
    window_s: float = 1.0
    period_s: float = 0.1
    #: False turns off the fixed-point prediction: the governor then acts
    #: only once the measured temperature crosses the limit (the reactive
    #: baseline the ablation benchmarks compare against).
    predictive: bool = True
    #: How to throttle the offender: "migrate" moves it to the LITTLE
    #: cluster (the paper's mechanism); "duty_cycle" halves its CPU
    #: bandwidth quota in place (an in-place selective-throttling variant).
    action: str = "migrate"
    #: Lowest quota the duty-cycle action may impose.
    min_quota: float = 0.125
    migrate_back: bool = False
    back_margin_c: float = 8.0
    back_dwell_s: float = 5.0

    def __post_init__(self) -> None:
        if self.period_s <= 0.0 or self.window_s <= 0.0 or self.horizon_s <= 0.0:
            raise ConfigurationError("governor periods must be positive")
        if self.window_s < self.period_s:
            raise ConfigurationError("window must be at least one period")
        if self.action not in ("migrate", "duty_cycle"):
            raise ConfigurationError(f"unknown governor action {self.action!r}")
        if not 0.0 < self.min_quota <= 1.0:
            raise ConfigurationError("min_quota must be in (0, 1]")

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "GovernorConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown GovernorConfig field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class MigrationEvent:
    """One governor action, for post-hoc analysis."""

    time_s: float
    pid: int
    name: str
    direction: str  # "to_little" or "to_big"
    attributed_power_w: float
    predicted_stable_temp_c: float | None
    time_to_violation_s: float


@dataclass(frozen=True)
class Prediction:
    """One control-period analysis outcome."""

    time_s: float
    p_total_w: float
    p_dyn_w: float
    temp_c: float
    classification: StabilityClass
    stable_temp_c: float | None
    time_to_violation_s: float


@dataclass
class _UtilSample:
    time_s: float
    runtime_s: Mapping[int, float]
    cluster: Mapping[int, str]


class ApplicationAwareGovernor:
    """Userspace daemon implementing the paper's proposed control algorithm."""

    def __init__(
        self,
        api: UserspaceApi,
        params: LumpedThermalParams,
        power_paths: Mapping[str, str],
        cluster_rails: Mapping[str, str],
        temp_path: str,
        config: GovernorConfig | None = None,
    ) -> None:
        if not power_paths:
            raise ConfigurationError("governor needs at least one power sensor path")
        self._api = api
        self.params = params
        self.config = config or GovernorConfig()
        self._power_paths = dict(power_paths)
        self._cluster_rails = dict(cluster_rails)
        self._temp_path = temp_path
        self.registry = RealTimeRegistry()
        self._samples: deque[_UtilSample] = deque()
        self._migrated: list[int] = []
        self._cool_since_s: float | None = None
        self.events: list[MigrationEvent] = []
        self.predictions: list[Prediction] = []
        self._obs_metrics = None
        self._obs_spans = None
        self._m_runs = None
        self._m_latency = None

    # ------------------------------------------------------------- helpers

    @classmethod
    def for_simulation(
        cls,
        sim,
        config: GovernorConfig | None = None,
        sensor: str | None = None,
        params: LumpedThermalParams | None = None,
    ) -> "ApplicationAwareGovernor":
        """Build a governor wired to a :class:`repro.sim.engine.Simulation`.

        Discovers the power-sensor and thermal-zone paths exactly the way a
        deployment script would: by scanning /sys.
        """
        platform = sim.platform
        api = sim.kernel.userspace_api()
        rails = [c.rail for c in platform.clusters]
        rails += [platform.gpu.rail, platform.memory.rail]
        power_paths = {
            rail: f"/sys/class/power_sensors/{rail}/power_w" for rail in rails
        }
        sensor_name = sensor or platform.sensors[0].name
        for spec in platform.sensors:
            if spec.node == platform.big_cluster.thermal_node:
                sensor_name = sensor or spec.name
                break
        temp_path = None
        for i in range(32):
            path = f"/sys/class/thermal/thermal_zone{i}/type"
            if not api.fs.exists(path):
                break
            if api.fs.read(path).strip() == sensor_name:
                temp_path = f"/sys/class/thermal/thermal_zone{i}/temp"
                break
        if temp_path is None:
            raise ConfigurationError(f"no thermal zone of type {sensor_name!r}")
        lumped = params or lump_platform(platform, sim.thermal)
        cluster_rails = {c.name: c.rail for c in platform.clusters}
        return cls(api, lumped, power_paths, cluster_rails, temp_path, config)

    def install(self, kernel) -> None:
        """Register as a periodic userspace daemon on ``kernel``.

        Installation also wires the governor into the kernel's metrics
        registry and span tracer: each control period is counted, its
        wall-clock latency observed, and wrapped in an ``app_governor.run``
        span (so the migrations it causes nest under it).
        """
        self._obs_metrics = kernel.metrics
        self._obs_spans = kernel.spans
        self._m_runs = kernel.metrics.counter(
            "repro_app_governor_runs_total",
            "Control periods of the application-aware governor",
        )
        self._m_latency = kernel.metrics.histogram(
            "repro_app_governor_latency_seconds",
            "Wall-clock latency of one control period",
        )
        kernel.metrics.declare(
            "repro_app_governor_actions_total",
            "counter",
            "Throttling actions taken (migrations, quota cuts)",
        )
        kernel.register_daemon(
            "app-aware-governor", self.config.period_s, self._instrumented_run
        )

    def _instrumented_run(self, now_s: float) -> None:
        with self._obs_spans.span("app_governor.run"):
            t0 = time.perf_counter()
            self.run(now_s)
            elapsed_s = time.perf_counter() - t0
        self._m_runs.inc()
        self._m_latency.observe(elapsed_s)

    # ------------------------------------------------------- measurements

    def _read_rail_powers_w(self) -> dict[str, float]:
        powers = {}
        for rail, path in self._power_paths.items():
            powers[rail] = self._api.fs.read_float(path)
        return powers

    def _read_temp_c(self) -> float:
        return millicelsius_to_celsius(self._api.fs.read_int(self._temp_path))

    def _snapshot_utilization(self, now_s: float) -> None:
        runtime: dict[int, float] = {}
        cluster: dict[int, str] = {}
        for pid in self._api.pids():
            try:
                text = self._api.fs.read(f"/proc/{pid}/sched")
            except SysfsError:
                continue
            rt_ms = None
            cl = None
            for line in text.splitlines():
                if line.startswith("se.sum_exec_runtime"):
                    rt_ms = float(line.split(":", 1)[1])
                elif line.startswith("current_cluster"):
                    cl = line.split(":", 1)[1].strip()
            if rt_ms is None or cl is None:
                continue
            runtime[pid] = milliseconds_to_seconds(rt_ms)
            cluster[pid] = cl
        self._samples.append(_UtilSample(now_s, runtime, cluster))
        horizon = now_s - self.config.window_s - 1e-9
        while len(self._samples) > 2 and self._samples[1].time_s <= horizon:
            self._samples.popleft()

    def _window_deltas(self) -> tuple[dict[int, float], dict[int, str]]:
        """Per-pid busy core-seconds over the window, plus current cluster."""
        if len(self._samples) < 2:
            return {}, {}
        first, last = self._samples[0], self._samples[-1]
        deltas = {}
        for pid, runtime in last.runtime_s.items():
            before = first.runtime_s.get(pid, 0.0)
            delta = runtime - before
            if delta > 0.0:
                deltas[pid] = delta
        return deltas, dict(last.cluster)

    def _attribute_power_w(self) -> dict[int, float]:
        """Average-utilisation power attribution over the window (paper's
        one-second filter against momentary peaks)."""
        deltas, clusters = self._window_deltas()
        if not deltas:
            return {}
        rail_powers = self._read_rail_powers_w()
        by_cluster: dict[str, float] = {}
        for pid, delta in deltas.items():
            by_cluster[clusters[pid]] = by_cluster.get(clusters[pid], 0.0) + delta
        attributed = {}
        for pid, delta in deltas.items():
            cl = clusters[pid]
            rail = self._cluster_rails.get(cl)
            if rail is None or by_cluster[cl] <= 0.0:
                continue
            attributed[pid] = rail_powers.get(rail, 0.0) * delta / by_cluster[cl]
        return attributed

    # ------------------------------------------------------------ control

    def run(self, now_s: float) -> None:
        """One control period: measure, analyse, act."""
        self._snapshot_utilization(now_s)
        rail_powers = self._read_rail_powers_w()
        p_total = sum(rail_powers.values())
        temp_c = self._read_temp_c()
        temp_k = celsius_to_kelvin(temp_c)
        p_dyn = max(p_total - self.params.leakage_w(temp_k), 0.01)

        report = analyze(self.params, p_dyn)
        t_limit_k = celsius_to_kelvin(self.config.t_limit_c)
        violation_predicted = (
            report.classification is StabilityClass.RUNAWAY
            or (report.stable_temp_k is not None and report.stable_temp_k > t_limit_k)
        )
        t_violation = float("inf")
        if violation_predicted:
            if temp_k >= t_limit_k:
                t_violation = 0.0
            else:
                t_violation = time_to_temperature_s(
                    self.params, p_dyn, temp_k, t_limit_k
                )
        stable_c = (
            kelvin_to_celsius(report.stable_temp_k)
            if report.stable_temp_k is not None
            else None
        )
        self.predictions.append(
            Prediction(
                now_s, p_total, p_dyn, temp_c, report.classification,
                stable_c, t_violation,
            )
        )

        if self.config.predictive:
            must_act = violation_predicted and t_violation < self.config.horizon_s
        else:
            must_act = temp_c >= self.config.t_limit_c
        if must_act:
            self._cool_since_s = None
            self._act(now_s, stable_c, t_violation)
            return
        if self.config.migrate_back and self._migrated:
            self._maybe_migrate_back(now_s, temp_c, stable_c, t_violation)

    def _act(
        self, now_s: float, stable_c: float | None, t_violation: float
    ) -> None:
        attributed = self._attribute_power_w()
        big = self._api.big_cluster
        little = self._api.little_cluster
        candidates = [
            (watts, pid)
            for pid, watts in attributed.items()
            if not self.registry.is_protected(pid)
        ]
        # Only processes on the big cluster can be demoted further.
        deltas, clusters = self._window_deltas()
        candidates = [
            (w, pid) for (w, pid) in candidates if clusters.get(pid) == big
        ]
        if not candidates:
            return
        watts, pid = max(candidates)
        if self.config.action == "duty_cycle":
            current = self._api.cpu_quota(pid)
            new_quota = max(current / 2.0, self.config.min_quota)
            if new_quota >= current - 1e-12:
                return  # already at the floor: nothing more to take
            self._api.set_cpu_quota(pid, new_quota)
            direction = f"quota_{new_quota:g}"
        else:
            self._api.set_affinity(pid, little)
            self._migrated.append(pid)
            direction = "to_little"
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": self.config.action},
            ).inc()
        self.events.append(
            MigrationEvent(
                time_s=now_s,
                pid=pid,
                name=self._api.process_name(pid),
                direction=direction,
                attributed_power_w=watts,
                predicted_stable_temp_c=stable_c,
                time_to_violation_s=t_violation,
            )
        )

    def _maybe_migrate_back(
        self, now_s: float, temp_c: float, stable_c: float | None,
        t_violation: float,
    ) -> None:
        cool = (
            stable_c is not None
            and stable_c < self.config.t_limit_c - self.config.back_margin_c
            and temp_c < self.config.t_limit_c - self.config.back_margin_c
        )
        if not cool:
            self._cool_since_s = None
            return
        if self._cool_since_s is None:
            self._cool_since_s = now_s
            return
        if now_s - self._cool_since_s < self.config.back_dwell_s:
            return
        pid = self._migrated.pop()
        self._cool_since_s = None
        try:
            self._api.set_affinity(pid, self._api.big_cluster)
        except Exception:
            return  # the process exited; nothing to undo
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": "migrate_back"},
            ).inc()
        self.events.append(
            MigrationEvent(
                time_s=now_s,
                pid=pid,
                name=self._api.process_name(pid),
                direction="to_big",
                attributed_power_w=0.0,
                predicted_stable_temp_c=stable_c,
                time_to_violation_s=t_violation,
            )
        )
