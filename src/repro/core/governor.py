"""The application-aware thermal governor (Section IV.B).

Every control period (100 ms by default) the governor, running as a
*userspace* daemon against /sys and /proc:

1. reads the per-rail power sensors and totals the draw;
2. subtracts the modelled leakage at the current hotspot temperature to
   estimate the dynamic power, and runs the fixed-point stability analysis;
3. if the stable fixed-point temperature exceeds the thermal limit (or no
   fixed point exists at all) *and* the predicted time to violation is
   below the user horizon, it identifies the most power-hungry process over
   a one-second utilisation window — skipping processes registered as
   real-time — and migrates it to the LITTLE cluster.

Unlike the stock governors of Section III, nothing else is throttled: every
other app keeps running at full performance.

An optional extension (off by default, matching the paper) migrates
processes back to the big cluster once ample thermal headroom returns.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.calibration import lump_platform
from repro.core.fixed_point import StabilityClass, analyze
from repro.core.registry import RealTimeRegistry
from repro.core.stability import LumpedThermalParams
from repro.core.time_to_fixed_point import time_to_temperature_s
from repro.errors import ConfigurationError, SysfsError
from repro.kernel.kernel import UserspaceApi
from repro.obs.metrics import DETECTION_LATENCY_BUCKETS_S
from repro.units import (
    celsius_to_kelvin,
    kelvin_to_celsius,
    millicelsius_to_celsius,
    milliseconds_to_seconds,
)

#: Hysteresis band below the failsafe throttle target: caps only relax once
#: the (trusted) temperature is this far under ``t_limit_c - margin``.
FAILSAFE_HYST_C = 2.0

#: Consecutive cool control periods before the failsafe relaxes one step.
FAILSAFE_RELAX_PERIODS = 5

#: Cap on the exponential -EIO backoff, as a multiple of ``eio_backoff_s``.
EIO_BACKOFF_CAP = 8


@dataclass(frozen=True)
class GovernorConfig:
    """Tunables of the application-aware governor."""

    t_limit_c: float = 85.0
    horizon_s: float = 60.0
    window_s: float = 1.0
    period_s: float = 0.1
    #: False turns off the fixed-point prediction: the governor then acts
    #: only once the measured temperature crosses the limit (the reactive
    #: baseline the ablation benchmarks compare against).
    predictive: bool = True
    #: How to throttle the offender: "migrate" moves it to the LITTLE
    #: cluster (the paper's mechanism); "duty_cycle" halves its CPU
    #: bandwidth quota in place (an in-place selective-throttling variant).
    action: str = "migrate"
    #: Lowest quota the duty-cycle action may impose.
    min_quota: float = 0.125
    migrate_back: bool = False
    back_margin_c: float = 8.0
    back_dwell_s: float = 5.0
    #: Staleness watchdog: a sensor repeating the same raw millidegree
    #: value for this long is flagged as stuck.
    sensor_staleness_s: float = 1.0
    #: Plausibility filter: readings implying a faster |dT/dt| than this
    #: are rejected and the last good value held.
    max_temp_rate_c_per_s: float = 20.0
    #: Bounded retry on sysfs -EIO: extra read attempts per control period.
    eio_retries: int = 3
    #: Initial read backoff after exhausting the retries; doubles on each
    #: consecutive failing period (capped at 8x).
    eio_backoff_s: float = 0.2
    #: Continuous fault time after which the governor enters failsafe mode.
    failsafe_after_s: float = 3.0
    #: Continuous time the *measured* temperature may sit at or above
    #: ``t_limit_c`` before the governor concludes its calibrated model no
    #: longer matches reality (dead fan, blocked vents) and escalates to
    #: failsafe.  Shorter than ``failsafe_after_s``: the die is already hot.
    breach_after_s: float = 0.5
    #: Continuous healthy time required before failsafe mode is left
    #: (the exit half of the hysteresis; entry is ``failsafe_after_s``).
    failsafe_exit_s: float = 5.0
    #: Failsafe throttling targets ``t_limit_c`` minus this margin.
    failsafe_margin_c: float = 5.0

    def __post_init__(self) -> None:
        if self.period_s <= 0.0 or self.window_s <= 0.0 or self.horizon_s <= 0.0:
            raise ConfigurationError("governor periods must be positive")
        if self.window_s < self.period_s:
            raise ConfigurationError("window must be at least one period")
        if self.action not in ("migrate", "duty_cycle"):
            raise ConfigurationError(f"unknown governor action {self.action!r}")
        if not 0.0 < self.min_quota <= 1.0:
            raise ConfigurationError("min_quota must be in (0, 1]")
        if self.sensor_staleness_s <= 0.0 or self.max_temp_rate_c_per_s <= 0.0:
            raise ConfigurationError(
                "staleness window and plausibility rate must be positive"
            )
        if self.eio_retries < 0 or self.eio_backoff_s < 0.0:
            raise ConfigurationError(
                "eio_retries and eio_backoff_s must be non-negative"
            )
        if self.failsafe_after_s < 0.0 or self.failsafe_exit_s < 0.0:
            raise ConfigurationError("failsafe deadlines must be non-negative")
        if self.breach_after_s < 0.0:
            raise ConfigurationError("breach_after_s must be non-negative")
        if self.failsafe_margin_c <= 0.0:
            raise ConfigurationError("failsafe_margin_c must be positive")

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "GovernorConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown GovernorConfig field(s) {sorted(unknown)}; "
                f"have {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class MigrationEvent:
    """One governor action, for post-hoc analysis."""

    time_s: float
    pid: int
    name: str
    direction: str  # "to_little" or "to_big"
    attributed_power_w: float
    predicted_stable_temp_c: float | None
    time_to_violation_s: float


@dataclass(frozen=True)
class FaultDetection:
    """One flagged sensor/sysfs anomaly, for post-hoc analysis."""

    time_s: float
    kind: str  # "stale" | "implausible" | "eio" | "stall" | "breach"
    detail: str


@dataclass(frozen=True)
class FailsafeEvent:
    """A failsafe-mode transition, logged like a :class:`MigrationEvent`."""

    time_s: float
    action: str  # "enter" or "exit"
    reason: str
    held_temp_c: float | None


@dataclass(frozen=True)
class Prediction:
    """One control-period analysis outcome."""

    time_s: float
    p_total_w: float
    p_dyn_w: float
    temp_c: float
    classification: StabilityClass
    stable_temp_c: float | None
    time_to_violation_s: float


@dataclass
class _UtilSample:
    time_s: float
    runtime_s: Mapping[int, float]
    cluster: Mapping[int, str]


class ApplicationAwareGovernor:
    """Userspace daemon implementing the paper's proposed control algorithm."""

    def __init__(
        self,
        api: UserspaceApi,
        params: LumpedThermalParams,
        power_paths: Mapping[str, str],
        cluster_rails: Mapping[str, str],
        temp_path: str,
        config: GovernorConfig | None = None,
    ) -> None:
        if not power_paths:
            raise ConfigurationError("governor needs at least one power sensor path")
        self._api = api
        self.params = params
        self.config = config or GovernorConfig()
        self._power_paths = dict(power_paths)
        self._cluster_rails = dict(cluster_rails)
        self._temp_path = temp_path
        self.registry = RealTimeRegistry()
        self._samples: deque[_UtilSample] = deque()
        self._migrated: list[int] = []
        self._cool_since_s: float | None = None
        self.events: list[MigrationEvent] = []
        self.predictions: list[Prediction] = []
        self._obs_metrics = None
        self._obs_spans = None
        self._m_runs = None
        self._m_latency = None
        # --- hardening state (see "graceful degradation" in docs/FAULTS.md)
        self.detections: list[FaultDetection] = []
        self.failsafe_events: list[FailsafeEvent] = []
        self.failsafe_s = 0.0
        self._failsafe = False
        self._fault_since_s: float | None = None
        self._healthy_since_s: float | None = None
        self._last_run_s: float | None = None
        self._last_good_temp_c: float | None = None
        self._last_good_time_s: float | None = None
        self._last_raw_millicelsius: int | None = None
        self._raw_first_seen_s: float | None = None
        self._eio_streak = 0
        self._eio_backoff_until_s: float | None = None
        self._breach_since_s: float | None = None
        self._last_good_powers: dict[str, float] = {}
        self._failsafe_domains: list[tuple[str, list[int]]] = []
        self._failsafe_state = 0
        self._failsafe_relax = 0
        self._m_failsafe_seconds = None

    # ------------------------------------------------------------- helpers

    @classmethod
    def for_simulation(
        cls,
        sim,
        config: GovernorConfig | None = None,
        sensor: str | None = None,
        params: LumpedThermalParams | None = None,
    ) -> "ApplicationAwareGovernor":
        """Build a governor wired to a :class:`repro.sim.engine.Simulation`.

        Discovers the power-sensor and thermal-zone paths exactly the way a
        deployment script would: by scanning /sys.
        """
        platform = sim.platform
        api = sim.kernel.userspace_api()
        rails = [c.rail for c in platform.clusters]
        rails += [platform.gpu.rail, platform.memory.rail]
        power_paths = {
            rail: f"/sys/class/power_sensors/{rail}/power_w" for rail in rails
        }
        sensor_name = sensor or platform.sensors[0].name
        for spec in platform.sensors:
            if spec.node == platform.big_cluster.thermal_node:
                sensor_name = sensor or spec.name
                break
        temp_path = None
        for i in range(32):
            path = f"/sys/class/thermal/thermal_zone{i}/type"
            if not api.fs.exists(path):
                break
            if api.fs.read(path).strip() == sensor_name:
                temp_path = f"/sys/class/thermal/thermal_zone{i}/temp"
                break
        if temp_path is None:
            raise ConfigurationError(f"no thermal zone of type {sensor_name!r}")
        lumped = params or lump_platform(platform, sim.thermal)
        cluster_rails = {c.name: c.rail for c in platform.clusters}
        return cls(api, lumped, power_paths, cluster_rails, temp_path, config)

    def install(self, kernel) -> None:
        """Register as a periodic userspace daemon on ``kernel``.

        Installation also wires the governor into the kernel's metrics
        registry and span tracer: each control period is counted, its
        wall-clock latency observed, and wrapped in an ``app_governor.run``
        span (so the migrations it causes nest under it).
        """
        self._obs_metrics = kernel.metrics
        self._obs_spans = kernel.spans
        self._m_runs = kernel.metrics.counter(
            "repro_app_governor_runs_total",
            "Control periods of the application-aware governor",
        )
        self._m_latency = kernel.metrics.histogram(
            "repro_app_governor_latency_seconds",
            "Wall-clock latency of one control period",
            wall_clock=True,
        )
        kernel.metrics.declare(
            "repro_app_governor_actions_total",
            "counter",
            "Throttling actions taken (migrations, quota cuts)",
        )
        self._m_failsafe_seconds = kernel.metrics.counter(
            "repro_governor_failsafe_seconds_total",
            "Simulated seconds the governor spent in failsafe mode",
        )
        kernel.metrics.declare(
            "repro_faults_detected_total",
            "counter",
            "Sensor/sysfs anomalies flagged by the hardened governor",
        )
        kernel.metrics.declare(
            "repro_faults_injected_total",
            "counter",
            "Fault-plan events activated by the fault controller",
        )
        kernel.metrics.declare(
            "repro_fault_detection_latency_seconds",
            "histogram",
            "Sim-time from fault activation to first governor detection",
            buckets=DETECTION_LATENCY_BUCKETS_S,
        )
        self._failsafe_domains = self._discover_failsafe_domains()
        kernel.register_daemon(
            "app-aware-governor", self.config.period_s, self._instrumented_run
        )

    def _instrumented_run(self, now_s: float) -> None:
        with self._obs_spans.span("app_governor.run"):
            t0 = time.perf_counter()
            self.run(now_s)
            elapsed_s = time.perf_counter() - t0
        self._m_runs.inc()
        self._m_latency.observe(elapsed_s)

    def _discover_failsafe_domains(self) -> list[tuple[str, list[int]]]:
        """Frequency ladders for the stock-style failsafe fallback.

        Scans sysfs the way a deployment script would: every cpufreq policy's
        ``scaling_max_freq`` plus the GPU devfreq ``max_freq`` when present.
        Each entry is ``(cap path, ascending frequency ladder)``.
        """
        fs = self._api.fs
        domains: list[tuple[str, list[int]]] = []
        cpu_base = "/sys/devices/system/cpu/cpufreq"
        try:
            policies = fs.listdir(cpu_base)
        except SysfsError:
            policies = []
        for policy in policies:
            base = f"{cpu_base}/{policy}"
            try:
                tokens = fs.read(f"{base}/scaling_available_frequencies").split()
            except SysfsError:
                continue
            freqs = sorted(int(t) for t in tokens)
            if freqs:
                domains.append((f"{base}/scaling_max_freq", freqs))
        gpu_avail = "/sys/class/devfreq/gpu/available_frequencies"
        if fs.exists(gpu_avail):
            freqs = sorted(int(float(t)) for t in fs.read(gpu_avail).split())
            if freqs:
                domains.append(("/sys/class/devfreq/gpu/max_freq", freqs))
        return domains

    # ------------------------------------------------------- measurements

    def _read_rail_powers_w(self) -> dict[str, float]:
        powers = {}
        for rail, path in self._power_paths.items():
            powers[rail] = self._api.fs.read_float(path)
        return powers

    def _read_temp_c(self) -> float:
        return millicelsius_to_celsius(self._api.fs.read_int(self._temp_path))

    # ------------------------------------------------- hardened measurement

    def _note_fault(self, now_s: float, kind: str, detail: str) -> None:
        self.detections.append(FaultDetection(now_s, kind, detail))
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_faults_detected_total", labels={"kind": kind}
            ).inc()

    def _read_rail_powers_safe(
        self,
    ) -> tuple[dict[str, float], list[tuple[str, str]]]:
        """Rail powers with last-good-value hold on per-rail -EIO."""
        powers: dict[str, float] = {}
        failed: list[str] = []
        for rail, path in self._power_paths.items():
            try:
                value = self._api.fs.read_float(path)
                self._last_good_powers[rail] = value
            except SysfsError:
                failed.append(rail)
                value = self._last_good_powers.get(rail, 0.0)
            powers[rail] = value
        if failed:
            return powers, [("eio", f"power rail read failed: {', '.join(failed)}")]
        return powers, []

    def _read_temp_hardened(
        self, now_s: float
    ) -> tuple[float | None, list[tuple[str, str]]]:
        """Temperature with retry, staleness watchdog and plausibility filter.

        Returns ``(temp_c, faults)``: on any fault the last *good* reading is
        held (None until one exists) and ``faults`` names what went wrong.
        """
        cfg = self.config
        held = self._last_good_temp_c
        if (
            self._eio_backoff_until_s is not None
            and now_s < self._eio_backoff_until_s
        ):
            return held, [("eio", "in read backoff window")]
        raw_mc: int | None = None
        for _attempt in range(cfg.eio_retries + 1):
            try:
                raw_mc = self._api.fs.read_int(self._temp_path)
                break
            except SysfsError:
                continue
        if raw_mc is None:
            self._eio_streak += 1
            backoff = min(
                cfg.eio_backoff_s * 2 ** (self._eio_streak - 1),
                EIO_BACKOFF_CAP * cfg.eio_backoff_s,
            )
            self._eio_backoff_until_s = now_s + backoff
            return held, [
                ("eio", f"temp read failed after {cfg.eio_retries + 1} attempts")
            ]
        self._eio_streak = 0
        self._eio_backoff_until_s = None
        if raw_mc != self._last_raw_millicelsius:
            self._last_raw_millicelsius = raw_mc
            self._raw_first_seen_s = now_s
        elif (
            self._raw_first_seen_s is not None
            and now_s - self._raw_first_seen_s >= cfg.sensor_staleness_s
        ):
            return held, [
                ("stale", f"sensor pinned at {raw_mc} millidegrees")
            ]
        temp_c = millicelsius_to_celsius(raw_mc)
        if held is not None and self._last_good_time_s is not None:
            dt = max(now_s - self._last_good_time_s, cfg.period_s)
            rate = abs(temp_c - held) / dt
            if rate > cfg.max_temp_rate_c_per_s:
                return held, [
                    ("implausible", f"|dT/dt| of {rate:.1f} C/s rejected")
                ]
        self._last_good_temp_c = temp_c
        self._last_good_time_s = now_s
        return temp_c, []

    # --------------------------------------------------- failsafe machinery

    def _update_health(
        self, now_s: float, faults: list[tuple[str, str]]
    ) -> None:
        """Hysteretic failsafe entry/exit from the period's fault verdict."""
        cfg = self.config
        if faults:
            self._healthy_since_s = None
            if self._fault_since_s is None:
                self._fault_since_s = now_s
            if (
                not self._failsafe
                and now_s - self._fault_since_s >= cfg.failsafe_after_s
            ):
                self._enter_failsafe(now_s, faults[0][0])
        else:
            self._fault_since_s = None
            if self._failsafe:
                if self._healthy_since_s is None:
                    self._healthy_since_s = now_s
                if now_s - self._healthy_since_s >= cfg.failsafe_exit_s:
                    self._exit_failsafe(now_s)

    def _enter_failsafe(self, now_s: float, reason: str) -> None:
        self._failsafe = True
        self._failsafe_state = 0
        self._failsafe_relax = 0
        self.failsafe_events.append(
            FailsafeEvent(now_s, "enter", reason, self._last_good_temp_c)
        )
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": "failsafe_enter"},
            ).inc()

    def _exit_failsafe(self, now_s: float) -> None:
        self._failsafe = False
        self._healthy_since_s = None
        self._failsafe_state = 0
        self._failsafe_relax = 0
        for path, freqs in self._failsafe_domains:
            try:
                self._api.fs.write(path, freqs[-1])
            except SysfsError:
                pass  # leave the cap; the node may itself be faulted
        self.failsafe_events.append(
            FailsafeEvent(now_s, "exit", "recovered", self._last_good_temp_c)
        )
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": "failsafe_exit"},
            ).inc()

    def _failsafe_throttle(self, trusted_temp_c: float | None) -> None:
        """Stock-style step-wise fallback while measurements are untrusted.

        With no trustworthy reading the caps ratchet down one step per
        period towards the floor — the safe direction.  When a trusted
        reading exists, caps tighten above ``t_limit_c - margin`` and relax
        (slowly, hysteretically) once well below it.
        """
        if not self._failsafe_domains:
            return
        cfg = self.config
        max_state = max(len(f) - 1 for _p, f in self._failsafe_domains)
        target_c = cfg.t_limit_c - cfg.failsafe_margin_c
        if trusted_temp_c is None or trusted_temp_c >= target_c:
            self._failsafe_state = min(self._failsafe_state + 1, max_state)
            self._failsafe_relax = 0
        elif trusted_temp_c < target_c - FAILSAFE_HYST_C:
            self._failsafe_relax += 1
            if self._failsafe_relax >= FAILSAFE_RELAX_PERIODS:
                self._failsafe_relax = 0
                self._failsafe_state = max(self._failsafe_state - 1, 0)
        for path, freqs in self._failsafe_domains:
            index = len(freqs) - 1 - min(self._failsafe_state, len(freqs) - 1)
            try:
                self._api.fs.write(path, freqs[index])
            except SysfsError:
                pass  # the cap node itself is faulted; retry next period

    def _snapshot_utilization(self, now_s: float) -> None:
        runtime: dict[int, float] = {}
        cluster: dict[int, str] = {}
        for pid in self._api.pids():
            try:
                text = self._api.fs.read(f"/proc/{pid}/sched")
            except SysfsError:
                continue
            rt_ms = None
            cl = None
            for line in text.splitlines():
                if line.startswith("se.sum_exec_runtime"):
                    rt_ms = float(line.split(":", 1)[1])
                elif line.startswith("current_cluster"):
                    cl = line.split(":", 1)[1].strip()
            if rt_ms is None or cl is None:
                continue
            runtime[pid] = milliseconds_to_seconds(rt_ms)
            cluster[pid] = cl
        self._samples.append(_UtilSample(now_s, runtime, cluster))
        horizon = now_s - self.config.window_s - 1e-9
        while len(self._samples) > 2 and self._samples[1].time_s <= horizon:
            self._samples.popleft()

    def _window_deltas(self) -> tuple[dict[int, float], dict[int, str]]:
        """Per-pid busy core-seconds over the window, plus current cluster."""
        if len(self._samples) < 2:
            return {}, {}
        first, last = self._samples[0], self._samples[-1]
        deltas = {}
        for pid, runtime in last.runtime_s.items():
            before = first.runtime_s.get(pid, 0.0)
            delta = runtime - before
            if delta > 0.0:
                deltas[pid] = delta
        return deltas, dict(last.cluster)

    def _attribute_power_w(
        self, rail_powers: Mapping[str, float]
    ) -> dict[int, float]:
        """Average-utilisation power attribution over the window (paper's
        one-second filter against momentary peaks)."""
        deltas, clusters = self._window_deltas()
        if not deltas:
            return {}
        by_cluster: dict[str, float] = {}
        for pid, delta in deltas.items():
            by_cluster[clusters[pid]] = by_cluster.get(clusters[pid], 0.0) + delta
        attributed = {}
        for pid, delta in deltas.items():
            cl = clusters[pid]
            rail = self._cluster_rails.get(cl)
            if rail is None or by_cluster[cl] <= 0.0:
                continue
            attributed[pid] = rail_powers.get(rail, 0.0) * delta / by_cluster[cl]
        return attributed

    # ------------------------------------------------------------ control

    def run(self, now_s: float) -> None:
        """One control period: measure defensively, analyse, act.

        The measurement phase never raises: sysfs -EIO is retried then
        absorbed by last-good-value holds, stuck and implausible sensor
        readings are rejected by the watchdog/plausibility filters, and
        persistent faults push the governor into a stock-style failsafe
        throttle until readings stay healthy for the exit dwell.
        """
        cfg = self.config
        if (
            self._last_run_s is not None
            and now_s - self._last_run_s > 1.5 * cfg.period_s
        ):
            self._note_fault(
                now_s,
                "stall",
                f"no control tick for {now_s - self._last_run_s:.2f} s",
            )
        self._last_run_s = now_s
        self._snapshot_utilization(now_s)
        rail_powers, power_faults = self._read_rail_powers_safe()
        temp_c, temp_faults = self._read_temp_hardened(now_s)
        faults = power_faults + temp_faults
        # A *trusted* reading at or above the limit means the calibrated
        # model has stopped matching reality (the plant itself degraded);
        # sustained, that escalates to failsafe on its own fast deadline.
        breach = not temp_faults and temp_c is not None and temp_c >= cfg.t_limit_c
        if breach:
            if self._breach_since_s is None:
                self._breach_since_s = now_s
            self._note_fault(
                now_s,
                "breach",
                f"measured {temp_c:.2f} C at/above the "
                f"{cfg.t_limit_c:.2f} C limit",
            )
        else:
            self._breach_since_s = None
        for kind, detail in faults:
            self._note_fault(now_s, kind, detail)
        health_faults = faults + (
            [("breach", "measured temperature at/above the limit")]
            if breach else []
        )
        self._update_health(now_s, health_faults)
        if (
            breach
            and not self._failsafe
            and now_s - self._breach_since_s >= cfg.breach_after_s
        ):
            self._enter_failsafe(now_s, "breach")
        if self._failsafe:
            self.failsafe_s += cfg.period_s
            if self._m_failsafe_seconds is not None:
                self._m_failsafe_seconds.inc(cfg.period_s)
            self._failsafe_throttle(None if faults else temp_c)
            return
        if temp_c is None:
            return  # no trustworthy reading yet: take no action
        p_total = sum(rail_powers.values())
        temp_k = celsius_to_kelvin(temp_c)
        p_dyn = max(p_total - self.params.leakage_w(temp_k), 0.01)

        report = analyze(self.params, p_dyn)
        t_limit_k = celsius_to_kelvin(self.config.t_limit_c)
        violation_predicted = (
            report.classification is StabilityClass.RUNAWAY
            or (report.stable_temp_k is not None and report.stable_temp_k > t_limit_k)
        )
        t_violation = float("inf")
        if violation_predicted:
            if temp_k >= t_limit_k:
                t_violation = 0.0
            else:
                t_violation = time_to_temperature_s(
                    self.params, p_dyn, temp_k, t_limit_k
                )
        stable_c = (
            kelvin_to_celsius(report.stable_temp_k)
            if report.stable_temp_k is not None
            else None
        )
        self.predictions.append(
            Prediction(
                now_s, p_total, p_dyn, temp_c, report.classification,
                stable_c, t_violation,
            )
        )

        if self.config.predictive:
            must_act = violation_predicted and t_violation < self.config.horizon_s
        else:
            must_act = temp_c >= self.config.t_limit_c
        if must_act:
            self._cool_since_s = None
            self._act(now_s, stable_c, t_violation, rail_powers)
            return
        if self.config.migrate_back and self._migrated:
            self._maybe_migrate_back(now_s, temp_c, stable_c, t_violation)

    def _act(
        self,
        now_s: float,
        stable_c: float | None,
        t_violation: float,
        rail_powers: Mapping[str, float],
    ) -> None:
        attributed = self._attribute_power_w(rail_powers)
        big = self._api.big_cluster
        little = self._api.little_cluster
        candidates = [
            (watts, pid)
            for pid, watts in attributed.items()
            if not self.registry.is_protected(pid)
        ]
        # Only processes on the big cluster can be demoted further.
        deltas, clusters = self._window_deltas()
        candidates = [
            (w, pid) for (w, pid) in candidates if clusters.get(pid) == big
        ]
        if not candidates:
            return
        watts, pid = max(candidates)
        if self.config.action == "duty_cycle":
            current = self._api.cpu_quota(pid)
            new_quota = max(current / 2.0, self.config.min_quota)
            if new_quota >= current - 1e-12:
                return  # already at the floor: nothing more to take
            self._api.set_cpu_quota(pid, new_quota)
            direction = f"quota_{new_quota:g}"
        else:
            self._api.set_affinity(pid, little)
            self._migrated.append(pid)
            direction = "to_little"
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": self.config.action},
            ).inc()
        self.events.append(
            MigrationEvent(
                time_s=now_s,
                pid=pid,
                name=self._api.process_name(pid),
                direction=direction,
                attributed_power_w=watts,
                predicted_stable_temp_c=stable_c,
                time_to_violation_s=t_violation,
            )
        )

    def _maybe_migrate_back(
        self, now_s: float, temp_c: float, stable_c: float | None,
        t_violation: float,
    ) -> None:
        cool = (
            stable_c is not None
            and stable_c < self.config.t_limit_c - self.config.back_margin_c
            and temp_c < self.config.t_limit_c - self.config.back_margin_c
        )
        if not cool:
            self._cool_since_s = None
            return
        if self._cool_since_s is None:
            self._cool_since_s = now_s
            return
        if now_s - self._cool_since_s < self.config.back_dwell_s:
            return
        pid = self._migrated.pop()
        self._cool_since_s = None
        try:
            self._api.set_affinity(pid, self._api.big_cluster)
        except Exception:
            return  # the process exited; nothing to undo
        if self._obs_metrics is not None:
            self._obs_metrics.counter(
                "repro_app_governor_actions_total",
                labels={"action": "migrate_back"},
            ).inc()
        self.events.append(
            MigrationEvent(
                time_s=now_s,
                pid=pid,
                name=self._api.process_name(pid),
                direction="to_big",
                attributed_power_w=0.0,
                predicted_stable_temp_c=stable_c,
                time_to_violation_s=t_violation,
            )
        )
