"""Identify lumped stability-analysis parameters from a full platform model.

On real hardware the governor's (R, C, kappa, beta) would come from a
characterisation run; here they come from probing the multi-node thermal
network and the component leakage models — the same identification step,
against the simulated plant:

* R — the DC gain from a weighted rail-power vector to the hotspot node;
* effective ambient — the true ambient plus the hotspot offset produced by
  power the governor cannot see (the constant board rail);
* (kappa, beta) — log-linear regression of total SoC leakage vs temperature;
* C — from the network's dominant time constant, C = tau / R.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.stability import LumpedThermalParams
from repro.errors import StabilityError
from repro.soc.platform import BOARD_RAIL, PlatformSpec
from repro.thermal.model import ThermalModel

#: Default weighting of the rails when probing the effective resistance —
#: roughly the power distribution of a GPU-heavy workload with busy big CPUs.
DEFAULT_RAIL_SHARES = {"big": 0.50, "gpu": 0.30, "little": 0.08, "mem": 0.12}


def _platform_rail_shares(platform: PlatformSpec) -> dict[str, float]:
    """Map the default shares onto this platform's actual rail names."""
    shares = {
        platform.big_cluster.rail: DEFAULT_RAIL_SHARES["big"],
        platform.little_cluster.rail: DEFAULT_RAIL_SHARES["little"],
        platform.gpu.rail: DEFAULT_RAIL_SHARES["gpu"],
        platform.memory.rail: DEFAULT_RAIL_SHARES["mem"],
    }
    return shares


def effective_resistance_k_per_w(
    model: ThermalModel, node: str, rail_shares: Mapping[str, float]
) -> float:
    """DC kelvin-per-watt from a power *mix* to one node.

    ``rail_shares`` describes how one watt of total power splits across
    rails; the result is the share-weighted sum of DC gains.
    """
    total = sum(rail_shares.values())
    if total <= 0.0:
        raise StabilityError("rail shares must sum to a positive value")
    return sum(
        (share / total) * model.dc_gain(node, rail)
        for rail, share in rail_shares.items()
    )


def ambient_offset_k(
    model: ThermalModel, node: str, constant_rails: Mapping[str, float]
) -> float:
    """Hotspot offset caused by constant power invisible to the governor."""
    return sum(
        model.dc_gain(node, rail) * watts for rail, watts in constant_rails.items()
    )


def fit_leakage(
    platform: PlatformSpec, temps_k: np.ndarray | None = None
) -> tuple[float, float]:
    """Fit (kappa, beta) to the platform's total SoC leakage vs temperature.

    Evaluates every component's leakage at its maximum-OPP voltage over a
    temperature grid and delegates the ``log(P / T^2) = log kappa - beta / T``
    regression to :func:`repro.calib.fit.fit_log_linear_leakage`, the single
    estimator shared with the trace-calibration pipeline.
    """
    from repro.calib.fit import fit_log_linear_leakage
    from repro.soc.power_model import leakage_power_w

    if temps_k is None:
        temps_k = np.linspace(305.0, 380.0, 16)
    components = [
        (c.leakage, c.opps[len(c.opps) - 1].voltage_v) for c in platform.clusters
    ]
    components.append(
        (platform.gpu.leakage, platform.gpu.opps[len(platform.gpu.opps) - 1].voltage_v)
    )
    components.append((platform.memory.leakage, platform.memory.leakage.v_ref))
    totals = []
    for t in temps_k:
        total = sum(
            leakage_power_w(params, float(t), volt) for params, volt in components
        )
        totals.append(total)
    return fit_log_linear_leakage(temps_k, totals)


def lump_platform(
    platform: PlatformSpec,
    model: ThermalModel,
    node: str | None = None,
    rail_shares: Mapping[str, float] | None = None,
) -> LumpedThermalParams:
    """Full identification: lumped parameters for the stability analysis."""
    hotspot = node or platform.big_cluster.thermal_node
    shares = dict(rail_shares) if rail_shares else _platform_rail_shares(platform)
    r_eff = effective_resistance_k_per_w(model, hotspot, shares)
    constant = {}
    if platform.board_power_w > 0.0:
        constant[BOARD_RAIL] = platform.board_power_w
    t_amb_eff = model.ambient_k + ambient_offset_k(model, hotspot, constant)
    kappa, beta = fit_leakage(platform)
    tau = model.dominant_time_constant_s()
    return LumpedThermalParams(
        r_k_per_w=r_eff,
        c_j_per_k=tau / r_eff,
        kappa_w_per_k2=kappa,
        beta_k=beta,
        t_ambient_k=t_amb_eff,
    )
