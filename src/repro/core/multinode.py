"""Multi-hotspot stability analysis (extension).

The paper's lumped analysis tracks one hotspot.  On a real SoC the binding
constraint can move — a GPU-heavy workload is limited by the GPU sensor,
a CPU-heavy one by the big cluster.  This module runs the Section IV.A
analysis once per candidate hotspot node, each with its own effective
thermal resistance from the same rail-power mix, and reports which node
binds (hits the highest steady state, or runs away first).

Approximation: the total leakage fit is shared across nodes (leakage is
evaluated at the hotspot temperature), which is conservative for the
hottest node and slightly pessimistic for the others.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.calibration import lump_platform
from repro.core.fixed_point import FixedPointReport, StabilityClass, analyze
from repro.core.stability import LumpedThermalParams
from repro.errors import StabilityError
from repro.soc.platform import PlatformSpec
from repro.thermal.model import ThermalModel


@dataclass(frozen=True)
class HotspotReport:
    """Stability analysis of one candidate hotspot node."""

    node: str
    params: LumpedThermalParams
    report: FixedPointReport


def candidate_nodes(platform: PlatformSpec) -> tuple[str, ...]:
    """Component-bearing thermal nodes, deduplicated in platform order."""
    nodes = []
    for spec in (*platform.clusters, platform.gpu, platform.memory):
        if spec.thermal_node not in nodes:
            nodes.append(spec.thermal_node)
    return tuple(nodes)


def per_node_analysis(
    platform: PlatformSpec,
    model: ThermalModel,
    p_dyn_w: float,
    rail_shares: Mapping[str, float] | None = None,
) -> dict[str, HotspotReport]:
    """Run the fixed-point analysis against every candidate hotspot."""
    out: dict[str, HotspotReport] = {}
    for node in candidate_nodes(platform):
        params = lump_platform(platform, model, node=node, rail_shares=rail_shares)
        out[node] = HotspotReport(
            node=node, params=params, report=analyze(params, p_dyn_w)
        )
    return out


def binding_hotspot(reports: Mapping[str, HotspotReport]) -> HotspotReport:
    """The node that limits the system: first runaway, else hottest stable."""
    if not reports:
        raise StabilityError("no hotspot reports to compare")
    runaways = [
        r for r in reports.values()
        if r.report.classification is StabilityClass.RUNAWAY
    ]
    if runaways:
        # All runaway nodes are equivalent failures; pick the largest-R one
        # (it would have diverged first).
        return max(runaways, key=lambda r: r.params.r_k_per_w)
    return max(reports.values(), key=lambda r: r.report.stable_temp_k)


def safe_everywhere(
    reports: Mapping[str, HotspotReport], t_limit_k: float
) -> bool:
    """Whether every hotspot's stable fixed point respects the limit."""
    for r in reports.values():
        if r.report.stable_temp_k is None:
            return False
        if r.report.stable_temp_k > t_limit_k:
            return False
    return True
