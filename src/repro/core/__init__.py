"""The paper's contribution: power-temperature stability analysis and the
application-aware thermal governor built on it."""

from repro.core.advisor import AdvisorReport, advise, render_advice
from repro.core.budget import (
    headroom_w,
    safe_power_budget_w,
    sustainable_frequency_fraction,
)
from repro.core.calibration import (
    DEFAULT_RAIL_SHARES,
    ambient_offset_k,
    effective_resistance_k_per_w,
    fit_leakage,
    lump_platform,
)
from repro.core.fixed_point import (
    FixedPointReport,
    StabilityClass,
    analyze,
    critical_power_w,
    steady_state_temp_k,
)
from repro.core.multinode import (
    HotspotReport,
    binding_hotspot,
    candidate_nodes,
    per_node_analysis,
    safe_everywhere,
)
from repro.core.governor import (
    ApplicationAwareGovernor,
    GovernorConfig,
    MigrationEvent,
    Prediction,
)
from repro.core.qos import QosConfig, QosController
from repro.core.registry import RealTimeRegistry
from repro.core.stability import (
    ODROID_XU3_LUMPED,
    FixedPointFunction,
    LumpedThermalParams,
)
from repro.core.time_to_fixed_point import (
    time_to_fixed_point_s,
    time_to_temperature_s,
)

__all__ = [
    "AdvisorReport",
    "DEFAULT_RAIL_SHARES",
    "ODROID_XU3_LUMPED",
    "ApplicationAwareGovernor",
    "FixedPointFunction",
    "FixedPointReport",
    "GovernorConfig",
    "HotspotReport",
    "LumpedThermalParams",
    "MigrationEvent",
    "Prediction",
    "QosConfig",
    "QosController",
    "RealTimeRegistry",
    "StabilityClass",
    "ambient_offset_k",
    "advise",
    "analyze",
    "binding_hotspot",
    "candidate_nodes",
    "critical_power_w",
    "effective_resistance_k_per_w",
    "fit_leakage",
    "headroom_w",
    "lump_platform",
    "per_node_analysis",
    "render_advice",
    "safe_everywhere",
    "safe_power_budget_w",
    "steady_state_temp_k",
    "sustainable_frequency_fraction",
    "time_to_fixed_point_s",
    "time_to_temperature_s",
]
