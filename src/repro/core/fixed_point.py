"""Stability classification, steady-state temperature, critical power.

This is the runtime analysis the paper's governor performs every control
period: given the lumped thermal parameters and the current dynamic power,
determine whether a stable temperature fixed point exists, where it is, and
at what power it disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from scipy.optimize import brentq

from repro.core.stability import FixedPointFunction, LumpedThermalParams
from repro.errors import StabilityError


class StabilityClass(Enum):
    """Outcome of the fixed-point analysis."""

    STABLE = "stable"          # two fixed points; the larger-x one attracts
    CRITICAL = "critical"      # the roots have merged: critically stable
    RUNAWAY = "runaway"        # no fixed points: thermal runaway


@dataclass(frozen=True)
class FixedPointReport:
    """Everything the analysis knows about one power level."""

    p_dyn_w: float
    classification: StabilityClass
    stable_aux: float | None
    unstable_aux: float | None
    stable_temp_k: float | None
    unstable_temp_k: float | None

    @property
    def is_stable(self) -> bool:
        """Whether a stable fixed point exists."""
        return self.classification is not StabilityClass.RUNAWAY


def analyze(params: LumpedThermalParams, p_dyn_w: float) -> FixedPointReport:
    """Classify the power-temperature dynamics at ``p_dyn_w``."""
    func = FixedPointFunction.from_lumped(params, p_dyn_w)
    roots = func.roots()
    if not roots:
        return FixedPointReport(
            p_dyn_w, StabilityClass.RUNAWAY, None, None, None, None
        )
    if len(roots) == 1:
        x = roots[0]
        t = params.temp_from_aux(x)
        return FixedPointReport(p_dyn_w, StabilityClass.CRITICAL, x, x, t, t)
    x_unstable, x_stable = roots
    return FixedPointReport(
        p_dyn_w,
        StabilityClass.STABLE,
        x_stable,
        x_unstable,
        params.temp_from_aux(x_stable),
        params.temp_from_aux(x_unstable),
    )


def steady_state_temp_k(params: LumpedThermalParams, p_dyn_w: float) -> float:
    """Stable fixed-point temperature; raises on runaway."""
    report = analyze(params, p_dyn_w)
    if report.stable_temp_k is None:
        raise StabilityError(
            f"no fixed point at {p_dyn_w} W (thermal runaway)"
        )
    return report.stable_temp_k


def critical_power_w(params: LumpedThermalParams) -> float:
    """The dynamic power at which the two fixed points merge.

    Above this power the system has no fixed point and runs away — the
    paper's Figure 7 shows 5.5 W for the Odroid-XU3 parameters.
    """

    def peak_value(p_dyn: float) -> float:
        func = FixedPointFunction.from_lumped(params, p_dyn)
        return func(func.argmax())

    lo, hi = 0.0, 1.0
    if peak_value(lo) <= 0.0:
        raise StabilityError("system is unstable even at zero dynamic power")
    while peak_value(hi) > 0.0:
        hi *= 2.0
        if hi > 1e6:
            raise StabilityError("failed to bracket the critical power")
    return float(brentq(peak_value, lo, hi, xtol=1e-9))
