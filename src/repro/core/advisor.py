"""Developer advisor: will this app be throttled, and what would fit?

The paper's conclusion: the study "can be used by application developers to
optimize their apps such that they do not experience thermal throttling."
This module operationalises that: given a profiling run of an app on a
platform model, it

1. measures the app's sustained power draw,
2. computes the platform's safe power budget at the thermal limit
   (Section IV.A inverted, :mod:`repro.core.budget`),
3. verdicts whether sustained operation will throttle, and if so by how
   much demand must shrink (cubic DVFS law) and what frame rate that
   roughly sustains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import safe_power_budget_w, sustainable_frequency_fraction
from repro.core.calibration import lump_platform
from repro.core.fixed_point import analyze
from repro.core.stability import LumpedThermalParams
from repro.errors import AnalysisError
from repro.sim.engine import Simulation
from repro.units import celsius_to_kelvin, kelvin_to_celsius


@dataclass(frozen=True)
class AdvisorReport:
    """Verdict for one app profile against one thermal limit."""

    app: str
    t_limit_c: float
    sustained_power_w: float
    safe_budget_w: float
    steady_temp_c: float | None
    will_throttle: bool
    demand_scale: float
    sustainable_fps_estimate: float | None

    @property
    def headroom_w(self) -> float:
        """Power margin to the budget (negative = over)."""
        return self.safe_budget_w - self.sustained_power_w


def advise(
    sim: Simulation,
    app_name: str,
    t_limit_c: float,
    params: LumpedThermalParams | None = None,
    warmup_s: float = 5.0,
) -> AdvisorReport:
    """Analyse a finished profiling run of ``app_name`` on ``sim``.

    The simulation must have run with the app as the dominant workload and
    *no* thermal governor, so the measured power reflects unconstrained
    demand.
    """
    if sim.energy.elapsed_s <= warmup_s:
        raise AnalysisError("profiling run too short for the warmup window")
    app = sim.app(app_name)
    lumped = params or lump_platform(sim.platform, sim.thermal)

    soc_rails = [c.rail for c in sim.platform.clusters]
    soc_rails += [sim.platform.gpu.rail, sim.platform.memory.rail]
    sustained = 0.0
    for rail in soc_rails:
        times, watts = sim.traces.series(f"power.{rail}")
        mask = times >= warmup_s
        if not mask.any():
            raise AnalysisError(f"no post-warmup samples on rail {rail!r}")
        sustained += float(watts[mask].mean())

    t_limit_k = celsius_to_kelvin(t_limit_c)
    budget = safe_power_budget_w(lumped, t_limit_k)
    hotspot_temp_k = sim.thermal.temperature_k(
        sim.platform.big_cluster.thermal_node
    )
    p_dyn = max(sustained - lumped.leakage_w(hotspot_temp_k), 0.01)
    report = analyze(lumped, p_dyn)
    steady_c = (
        None if report.stable_temp_k is None
        else kelvin_to_celsius(report.stable_temp_k)
    )
    will_throttle = steady_c is None or steady_c > t_limit_c
    scale = sustainable_frequency_fraction(lumped, t_limit_k, p_dyn)

    fps_estimate = None
    metrics = app.metrics()
    if "median_fps" in metrics:
        fps_estimate = metrics["median_fps"] * (scale if will_throttle else 1.0)

    return AdvisorReport(
        app=app_name,
        t_limit_c=t_limit_c,
        sustained_power_w=sustained,
        safe_budget_w=budget,
        steady_temp_c=steady_c,
        will_throttle=will_throttle,
        demand_scale=scale,
        sustainable_fps_estimate=fps_estimate,
    )


def render_advice(report: AdvisorReport) -> str:
    """Human-readable advisory text."""
    lines = [
        f"App {report.app!r} against a {report.t_limit_c:.0f} degC limit:",
        f"  sustained SoC power: {report.sustained_power_w:.2f} W "
        f"(safe budget {report.safe_budget_w:.2f} W, "
        f"headroom {report.headroom_w:+.2f} W)",
    ]
    if report.steady_temp_c is None:
        lines.append("  steady state: THERMAL RUNAWAY at this demand")
    else:
        lines.append(f"  steady-state temperature: {report.steady_temp_c:.1f} degC")
    if report.will_throttle:
        lines.append(
            f"  verdict: WILL be throttled; shrink demand to "
            f"~{report.demand_scale * 100.0:.0f}% to run sustainably"
        )
        if report.sustainable_fps_estimate is not None:
            lines.append(
                f"  sustainable frame rate estimate: "
                f"~{report.sustainable_fps_estimate:.0f} FPS"
            )
    else:
        lines.append("  verdict: fits the thermal envelope; no throttling expected")
    return "\n".join(lines)
