"""Compact RC thermal network description.

A platform's thermal behaviour is modelled as a lumped RC network: nodes with
heat capacitance, links with thermal conductance between nodes or from a node
to the ambient, and a map distributing each power rail's dissipation across
nodes.  This is the standard compact thermal model (HotSpot-style) that the
paper's stability analysis assumes.

The spec is pure data; :class:`repro.thermal.model.ThermalModel` turns it into
state-space matrices

    C dT/dt = -G T + g_amb T_amb + S P
    dT/dt   =  A T + B P + w T_amb
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

AMBIENT = "ambient"


@dataclass(frozen=True)
class ThermalNodeSpec:
    """One lumped thermal mass."""

    name: str
    capacitance_j_per_k: float

    def __post_init__(self) -> None:
        if self.name == AMBIENT:
            raise ConfigurationError("'ambient' is a reserved node name")
        if self.capacitance_j_per_k <= 0.0:
            raise ConfigurationError(
                f"node {self.name!r}: capacitance must be positive"
            )


@dataclass(frozen=True)
class ThermalLinkSpec:
    """A thermal conductance between two nodes (or a node and the ambient)."""

    node_a: str
    node_b: str
    conductance_w_per_k: float

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ConfigurationError(f"self-link on node {self.node_a!r}")
        if self.conductance_w_per_k <= 0.0:
            raise ConfigurationError(
                f"link {self.node_a!r}-{self.node_b!r}: conductance must be positive"
            )


@dataclass(frozen=True)
class ThermalNetworkSpec:
    """Complete thermal network: nodes, links and the rail-to-node power map.

    ``power_split[rail]`` maps node names to the fraction of that rail's
    power deposited on each node; the fractions of a rail must sum to 1.
    """

    nodes: Sequence[ThermalNodeSpec]
    links: Sequence[ThermalLinkSpec]
    power_split: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate thermal node names in {names}")
        if not names:
            raise ConfigurationError("a thermal network needs at least one node")
        known = set(names) | {AMBIENT}
        ambient_linked = False
        for link in self.links:
            for end in (link.node_a, link.node_b):
                if end not in known:
                    raise ConfigurationError(f"link references unknown node {end!r}")
            if AMBIENT in (link.node_a, link.node_b):
                ambient_linked = True
        if not ambient_linked:
            raise ConfigurationError("at least one link must reach the ambient")
        for rail, split in self.power_split.items():
            total = 0.0
            for node, frac in split.items():
                if node not in known or node == AMBIENT:
                    raise ConfigurationError(
                        f"rail {rail!r} deposits power on unknown node {node!r}"
                    )
                if frac < 0.0:
                    raise ConfigurationError(
                        f"rail {rail!r}: negative power fraction on {node!r}"
                    )
                total += frac
            if abs(total - 1.0) > 1e-9:
                raise ConfigurationError(
                    f"rail {rail!r}: power fractions sum to {total}, expected 1"
                )

    @property
    def node_names(self) -> tuple[str, ...]:
        """Node names in declaration order (the state-vector order)."""
        return tuple(n.name for n in self.nodes)

    @property
    def rail_names(self) -> tuple[str, ...]:
        """Rails with a power split, in declaration order (input order)."""
        return tuple(self.power_split)

    def build_matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return continuous-time ``(A, B, w)``.

        State is the node-temperature vector in declaration order; inputs are
        the per-rail powers in ``rail_names`` order; ``w`` multiplies the
        ambient temperature.
        """
        names = self.node_names
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        cap = np.array([node.capacitance_j_per_k for node in self.nodes])
        conduct = np.zeros((n, n))
        to_ambient = np.zeros(n)
        for link in self.links:
            g = link.conductance_w_per_k
            if AMBIENT in (link.node_a, link.node_b):
                node = link.node_b if link.node_a == AMBIENT else link.node_a
                i = index[node]
                conduct[i, i] += g
                to_ambient[i] += g
            else:
                i, j = index[link.node_a], index[link.node_b]
                conduct[i, i] += g
                conduct[j, j] += g
                conduct[i, j] -= g
                conduct[j, i] -= g
        rails = self.rail_names
        split = np.zeros((n, len(rails)))
        for r, rail in enumerate(rails):
            for node, frac in self.power_split[rail].items():
                split[index[node], r] = frac
        a_mat = -conduct / cap[:, None]
        b_mat = split / cap[:, None]
        w_vec = to_ambient / cap
        return a_mat, b_mat, w_vec
