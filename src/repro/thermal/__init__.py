"""Thermal substrate: RC networks, state-space simulation, sensors."""

from repro.thermal.describe import describe_network
from repro.thermal.faults import DroppingSensor, SpikySensor, StuckSensor
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec, TemperatureSensor

__all__ = [
    "AMBIENT",
    "DroppingSensor",
    "describe_network",
    "SensorSpec",
    "SpikySensor",
    "StuckSensor",
    "TemperatureSensor",
    "ThermalLinkSpec",
    "ThermalModel",
    "ThermalNetworkSpec",
    "ThermalNodeSpec",
]
