"""Temperature sensors: what the kernel *sees*, as opposed to ground truth.

Real thermal sensors quantise (Exynos TMU reports whole degrees; Snapdragon
tsens reports 0.1 degC steps), are noisy, and can carry a static offset.
Thermal governors act on these readings, so the distinction matters for
faithfully reproducing throttling behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.model import ThermalModel
from repro.units import celsius_to_millicelsius, kelvin_to_celsius


@dataclass(frozen=True)
class SensorSpec:
    """Placement and error model of one on-die temperature sensor."""

    name: str
    node: str
    noise_std_c: float = 0.1
    quantization_c: float = 0.1
    offset_c: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_std_c < 0.0:
            raise ConfigurationError(f"sensor {self.name!r}: negative noise std")
        if self.quantization_c < 0.0:
            raise ConfigurationError(f"sensor {self.name!r}: negative quantisation")


class TemperatureSensor:
    """A readable sensor bound to a thermal model node and an RNG stream."""

    def __init__(
        self,
        spec: SensorSpec,
        model: ThermalModel,
        rng: np.random.Generator,
    ) -> None:
        self._spec = spec
        self._model = model
        self._rng = rng
        # Fail fast on bad placement rather than on first read.
        model.temperature_k(spec.node)

    @property
    def name(self) -> str:
        """Sensor name (thermal zone type string in sysfs)."""
        return self._spec.name

    @property
    def node(self) -> str:
        """Thermal-model node this sensor observes."""
        return self._spec.node

    def read_c(self) -> float:
        """One reading in degrees Celsius, with offset, noise, quantisation."""
        true_c = kelvin_to_celsius(self._model.temperature_k(self._spec.node))
        reading = true_c + self._spec.offset_c
        if self._spec.noise_std_c > 0.0:
            reading += self._rng.normal(0.0, self._spec.noise_std_c)
        q = self._spec.quantization_c
        if q > 0.0:
            reading = round(reading / q) * q
        return reading

    def read_millicelsius(self) -> int:
        """One reading in the integer millidegrees Celsius sysfs unit."""
        return celsius_to_millicelsius(self.read_c())
