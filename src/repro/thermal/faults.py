"""Deprecated location — the sensor fault wrappers moved to
:mod:`repro.faults.sensors`, where they are driven by the declarative
fault-plan layer (see ``docs/FAULTS.md``).  This shim keeps old imports
working.
"""

from __future__ import annotations

from repro.faults.sensors import (
    DroppingSensor,
    SpikySensor,
    StuckSensor,
    _SensorWrapper,
)

__all__ = ["DroppingSensor", "SpikySensor", "StuckSensor", "_SensorWrapper"]
