"""Human-readable summaries of thermal networks.

``describe_network`` renders the node/link structure with each node's
effective resistance to ambient and its time constant — the quantities a
thermal engineer sanity-checks first when reviewing a compact model.
"""

from __future__ import annotations

from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import AMBIENT, ThermalNetworkSpec


def describe_network(spec: ThermalNetworkSpec, dt_s: float = 0.01) -> str:
    """Render a multi-line description of a thermal network."""
    model = ThermalModel(spec, dt_s, ambient_k=300.0)
    lines = ["Thermal network:"]
    lines.append(f"  nodes ({len(spec.nodes)}):")
    for node in spec.nodes:
        # Effective junction-to-ambient resistance: DC gain from a rail
        # injecting on this node, when one exists; else via a probe rail.
        r_amb = _node_resistance(spec, model, node.name)
        lines.append(
            f"    {node.name:10s} C = {node.capacitance_j_per_k:6.2f} J/K"
            f"   R_to_ambient = {r_amb:6.2f} K/W"
        )
    lines.append(f"  links ({len(spec.links)}):")
    for link in spec.links:
        other = AMBIENT if AMBIENT in (link.node_a, link.node_b) else link.node_b
        a = link.node_a if link.node_a != AMBIENT else link.node_b
        lines.append(
            f"    {a:10s} -> {other:10s} "
            f"G = {link.conductance_w_per_k:5.2f} W/K "
            f"(R = {1.0 / link.conductance_w_per_k:5.2f} K/W)"
        )
    lines.append("  power splits:")
    for rail in spec.rail_names:
        split = ", ".join(
            f"{node}: {frac * 100.0:.0f}%"
            for node, frac in spec.power_split[rail].items()
        )
        lines.append(f"    {rail:10s} -> {split}")
    lines.append(
        f"  dominant time constant: {model.dominant_time_constant_s():.1f} s"
    )
    return "\n".join(lines)


def _node_resistance(
    spec: ThermalNetworkSpec, model: ThermalModel, node: str
) -> float:
    """K/W from heat injected at ``node`` to the ambient."""
    for rail in spec.rail_names:
        split = spec.power_split[rail]
        if abs(split.get(node, 0.0) - 1.0) <= 1e-12:
            return model.dc_gain(node, rail)
    # No dedicated rail: steady state with a synthetic unit injection.
    import numpy as np

    a_mat, _b, w_vec = spec.build_matrices()
    caps = np.array([n.capacitance_j_per_k for n in spec.nodes])
    names = list(spec.node_names)
    inject = np.zeros(len(names))
    inject[names.index(node)] = 1.0 / caps[names.index(node)]
    t_ss = -np.linalg.solve(a_mat, inject + w_vec * 0.0)
    return float(t_ss[names.index(node)])
