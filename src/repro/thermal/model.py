"""State-space thermal simulation with exact linear-step discretisation.

The linear RC dynamics are discretised once with the matrix exponential
(zero-order hold on the power inputs), so the integration is exact for the
linear part at any step size.  Temperature-dependent leakage enters through
the power inputs recomputed every step by the engine, i.e. the nonlinearity
is handled explicitly — accurate for steps far below the thermal time
constants (milliseconds vs. tens of seconds) and able to reproduce genuine
thermal runaway.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.linalg import expm

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.rc_network import ThermalNetworkSpec


class ThermalModel:
    """Discrete-time simulator for a :class:`ThermalNetworkSpec`.

    Parameters
    ----------
    spec:
        The network description.
    dt_s:
        Fixed step size in seconds.
    ambient_k:
        Ambient temperature in kelvin (changeable at runtime).
    initial_k:
        Initial temperature of every node; defaults to the ambient.
    integrator:
        ``"zoh"`` (default) discretises with the matrix exponential — exact
        for the linear dynamics under zero-order-held power inputs at any
        step size.  ``"euler"`` uses the explicit forward-Euler update
        ``Ad = I + A·dt``; it is first-order accurate and only offered as a
        reference stepper for convergence testing.
    """

    INTEGRATORS = ("zoh", "euler")

    def __init__(
        self,
        spec: ThermalNetworkSpec,
        dt_s: float,
        ambient_k: float = 298.15,
        initial_k: float | None = None,
        integrator: str = "zoh",
    ) -> None:
        if dt_s <= 0.0:
            raise ConfigurationError(f"thermal step must be positive, got {dt_s}")
        if integrator not in self.INTEGRATORS:
            raise ConfigurationError(
                f"unknown thermal integrator {integrator!r}; "
                f"choose from {self.INTEGRATORS}"
            )
        self._integrator = integrator
        self._base_spec = spec
        self._dt = float(dt_s)
        self._ambient_k = float(ambient_k)
        self._nodes = spec.node_names
        self._rails = spec.rail_names
        self._node_index = {name: i for i, name in enumerate(self._nodes)}
        self._rail_index = {name: i for i, name in enumerate(self._rails)}
        self._ambient_scale = 1.0
        self._configure(spec)

        start = self._ambient_k if initial_k is None else float(initial_k)
        self._state = np.full(len(self._nodes), start, dtype=float)

    def _configure(self, spec) -> None:
        """(Re)discretise the network; node temperatures are untouched."""
        self._spec = spec
        a_mat, b_mat, w_vec = spec.build_matrices()
        self._a = a_mat
        self._b = b_mat
        self._w = w_vec
        try:
            a_inv = np.linalg.inv(a_mat)
        except np.linalg.LinAlgError as exc:
            raise ConfigurationError(
                "thermal network has no path to ambient (A is singular)"
            ) from exc
        # Hurwitz check at build time: every continuous-time eigenvalue must
        # sit strictly in the left half-plane, otherwise the network is not
        # passive and no discretisation of it is trustworthy.
        eigenvalues = np.linalg.eigvals(a_mat)
        self._slowest_pole = max(ev.real for ev in eigenvalues)
        if self._slowest_pole >= 0.0:
            raise ConfigurationError(
                "thermal network is not passive (A is not Hurwitz: "
                f"max Re(eig) = {self._slowest_pole:g})"
            )
        if self._integrator == "euler":
            self._ad = np.eye(len(self._nodes)) + a_mat * self._dt
            self._bd = b_mat * self._dt
            self._wd = w_vec * self._dt
        else:
            self._ad = expm(a_mat * self._dt)
            gain = a_inv @ (self._ad - np.eye(len(self._nodes)))
            self._bd = gain @ b_mat
            self._wd = gain @ w_vec
        self._a_inv = a_inv

    @property
    def dt_s(self) -> float:
        """Step size in seconds."""
        return self._dt

    @property
    def integrator(self) -> str:
        """Discretisation mode: ``"zoh"`` or ``"euler"``."""
        return self._integrator

    @property
    def discrete_system(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The discretised ``(Ad, Bd, wd)`` of ``T' = Ad·T + Bd·P + wd·T_amb``.

        These are the live arrays (not copies): callers such as
        :class:`repro.sim.batch.BatchSimulation` compare and reuse them
        across stacked scenarios but must not mutate them.
        """
        return self._ad, self._bd, self._wd

    def adopt_state(self, row: np.ndarray) -> None:
        """Rebind the node-temperature vector to externally owned storage.

        ``row`` (shape ``(n_nodes,)``, typically a row view of a stacked
        ``(N, nodes)`` batch state) receives the current temperatures and
        becomes the live state: sensors attached to this model keep reading
        current values while a batch stepper updates the row in place.
        """
        if row.shape != self._state.shape:
            raise SimulationError(
                f"state shape mismatch: {row.shape} != {self._state.shape}"
            )
        row[:] = self._state
        self._state = row

    def detach_state(self) -> None:
        """Give the model back its own state storage (undoes adopt_state)."""
        self._state = self._state.copy()

    @property
    def node_names(self) -> tuple[str, ...]:
        """State-vector node order."""
        return self._nodes

    @property
    def rail_names(self) -> tuple[str, ...]:
        """Power-input rail order."""
        return self._rails

    @property
    def ambient_k(self) -> float:
        """Current ambient temperature in kelvin."""
        return self._ambient_k

    def set_ambient(self, ambient_k: float) -> None:
        """Change the ambient temperature (takes effect next step)."""
        self._ambient_k = float(ambient_k)

    @property
    def ambient_conductance_scale(self) -> float:
        """Current multiplier on every node-to-ambient conductance."""
        return self._ambient_scale

    def set_ambient_conductance_scale(self, scale: float) -> None:
        """Scale every node-to-ambient link and re-discretise the network.

        Models degraded convection at runtime — a fan stopping, blocked
        case vents — while preserving the node temperatures.  ``scale=1``
        restores the as-built network.  The rebuild is exact: the matrix
        exponential is recomputed from the scaled continuous-time network,
        so integration accuracy is unchanged.
        """
        if scale <= 0.0:
            raise ConfigurationError(
                f"ambient conductance scale must be positive, got {scale}"
            )
        from dataclasses import replace

        from repro.thermal.rc_network import AMBIENT

        links = tuple(
            replace(link, conductance_w_per_k=link.conductance_w_per_k * scale)
            if AMBIENT in (link.node_a, link.node_b) else link
            for link in self._base_spec.links
        )
        self._ambient_scale = float(scale)
        self._configure(replace(self._base_spec, links=links))

    def set_state(self, temps_k: Mapping[str, float]) -> None:
        """Overwrite node temperatures (e.g. to start a warm device)."""
        for name, value in temps_k.items():
            self._state[self._index(name)] = float(value)

    def _index(self, node: str) -> int:
        try:
            return self._node_index[node]
        except KeyError:
            raise SimulationError(
                f"unknown thermal node {node!r}; nodes: {list(self._nodes)}"
            ) from None

    def _power_vector(self, rail_powers: Mapping[str, float]) -> np.ndarray:
        p = np.zeros(len(self._rails))
        for rail, watts in rail_powers.items():
            idx = self._rail_index.get(rail)
            if idx is None:
                raise SimulationError(
                    f"unknown power rail {rail!r}; rails: {list(self._rails)}"
                )
            if watts < 0.0:
                raise SimulationError(f"rail {rail!r}: negative power {watts}")
            p[idx] = watts
        return p

    def step(self, rail_powers: Mapping[str, float]) -> None:
        """Advance one step with the given per-rail powers held constant."""
        p = self._power_vector(rail_powers)
        self._state = self._ad @ self._state + self._bd @ p + self._wd * self._ambient_k

    def step_in_place(self, p: np.ndarray) -> None:
        """Advance one step from a prebuilt power vector, updating in place.

        The batch stepper's hot path: ``p`` is already in rail order (no
        dict mapping, no validation) and the state array object is preserved
        so external row views stay live.  The arithmetic is exactly
        :meth:`step`'s.
        """
        self._state[:] = (
            self._ad @ self._state + self._bd @ p + self._wd * self._ambient_k
        )

    def temperature_k(self, node: str) -> float:
        """Current temperature of ``node`` in kelvin."""
        return float(self._state[self._index(node)])

    def temperatures_k(self) -> dict[str, float]:
        """Current temperature of every node in kelvin."""
        return {name: float(self._state[i]) for name, i in self._node_index.items()}

    def max_temperature_k(self) -> float:
        """Hottest node temperature in kelvin."""
        return float(self._state.max())

    def steady_state_k(self, rail_powers: Mapping[str, float]) -> dict[str, float]:
        """Steady-state temperatures for constant powers (linear part only).

        Leakage feedback is *not* iterated here; callers who need the
        self-consistent fixed point should use :mod:`repro.core.fixed_point`.
        """
        p = self._power_vector(rail_powers)
        t_ss = -self._a_inv @ (self._b @ p + self._w * self._ambient_k)
        return {name: float(t_ss[i]) for name, i in self._node_index.items()}

    def dc_gain(self, node: str, rail: str) -> float:
        """Steady-state kelvin-per-watt from ``rail`` to ``node``.

        This is the effective thermal resistance the lumped analysis uses.
        """
        gain = -self._a_inv @ self._b
        ridx = self._rail_index.get(rail)
        if ridx is None:
            raise SimulationError(f"unknown power rail {rail!r}")
        return float(gain[self._index(node), ridx])

    def dominant_time_constant_s(self) -> float:
        """Slowest thermal time constant (seconds)."""
        slowest = self._slowest_pole
        if slowest >= 0.0:  # pragma: no cover - _configure rejects these
            raise SimulationError("thermal network is not passive (unstable A)")
        return -1.0 / slowest
