"""State-space thermal simulation with exact linear-step discretisation.

The linear RC dynamics are discretised once with the matrix exponential
(zero-order hold on the power inputs), so the integration is exact for the
linear part at any step size.  Temperature-dependent leakage enters through
the power inputs recomputed every step by the engine, i.e. the nonlinearity
is handled explicitly — accurate for steps far below the thermal time
constants (milliseconds vs. tens of seconds) and able to reproduce genuine
thermal runaway.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.linalg import expm

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.rc_network import ThermalNetworkSpec


class ThermalModel:
    """Discrete-time simulator for a :class:`ThermalNetworkSpec`.

    Parameters
    ----------
    spec:
        The network description.
    dt_s:
        Fixed step size in seconds.
    ambient_k:
        Ambient temperature in kelvin (changeable at runtime).
    initial_k:
        Initial temperature of every node; defaults to the ambient.
    """

    def __init__(
        self,
        spec: ThermalNetworkSpec,
        dt_s: float,
        ambient_k: float = 298.15,
        initial_k: float | None = None,
    ) -> None:
        if dt_s <= 0.0:
            raise ConfigurationError(f"thermal step must be positive, got {dt_s}")
        self._base_spec = spec
        self._dt = float(dt_s)
        self._ambient_k = float(ambient_k)
        self._nodes = spec.node_names
        self._rails = spec.rail_names
        self._node_index = {name: i for i, name in enumerate(self._nodes)}
        self._rail_index = {name: i for i, name in enumerate(self._rails)}
        self._ambient_scale = 1.0
        self._configure(spec)

        start = self._ambient_k if initial_k is None else float(initial_k)
        self._state = np.full(len(self._nodes), start, dtype=float)

    def _configure(self, spec) -> None:
        """(Re)discretise the network; node temperatures are untouched."""
        self._spec = spec
        a_mat, b_mat, w_vec = spec.build_matrices()
        self._a = a_mat
        self._b = b_mat
        self._w = w_vec
        try:
            a_inv = np.linalg.inv(a_mat)
        except np.linalg.LinAlgError as exc:
            raise ConfigurationError(
                "thermal network has no path to ambient (A is singular)"
            ) from exc
        self._ad = expm(a_mat * self._dt)
        gain = a_inv @ (self._ad - np.eye(len(self._nodes)))
        self._bd = gain @ b_mat
        self._wd = gain @ w_vec
        self._a_inv = a_inv

    @property
    def dt_s(self) -> float:
        """Step size in seconds."""
        return self._dt

    @property
    def node_names(self) -> tuple[str, ...]:
        """State-vector node order."""
        return self._nodes

    @property
    def rail_names(self) -> tuple[str, ...]:
        """Power-input rail order."""
        return self._rails

    @property
    def ambient_k(self) -> float:
        """Current ambient temperature in kelvin."""
        return self._ambient_k

    def set_ambient(self, ambient_k: float) -> None:
        """Change the ambient temperature (takes effect next step)."""
        self._ambient_k = float(ambient_k)

    @property
    def ambient_conductance_scale(self) -> float:
        """Current multiplier on every node-to-ambient conductance."""
        return self._ambient_scale

    def set_ambient_conductance_scale(self, scale: float) -> None:
        """Scale every node-to-ambient link and re-discretise the network.

        Models degraded convection at runtime — a fan stopping, blocked
        case vents — while preserving the node temperatures.  ``scale=1``
        restores the as-built network.  The rebuild is exact: the matrix
        exponential is recomputed from the scaled continuous-time network,
        so integration accuracy is unchanged.
        """
        if scale <= 0.0:
            raise ConfigurationError(
                f"ambient conductance scale must be positive, got {scale}"
            )
        from dataclasses import replace

        from repro.thermal.rc_network import AMBIENT

        links = tuple(
            replace(link, conductance_w_per_k=link.conductance_w_per_k * scale)
            if AMBIENT in (link.node_a, link.node_b) else link
            for link in self._base_spec.links
        )
        self._ambient_scale = float(scale)
        self._configure(replace(self._base_spec, links=links))

    def set_state(self, temps_k: Mapping[str, float]) -> None:
        """Overwrite node temperatures (e.g. to start a warm device)."""
        for name, value in temps_k.items():
            self._state[self._index(name)] = float(value)

    def _index(self, node: str) -> int:
        try:
            return self._node_index[node]
        except KeyError:
            raise SimulationError(
                f"unknown thermal node {node!r}; nodes: {list(self._nodes)}"
            ) from None

    def _power_vector(self, rail_powers: Mapping[str, float]) -> np.ndarray:
        p = np.zeros(len(self._rails))
        for rail, watts in rail_powers.items():
            idx = self._rail_index.get(rail)
            if idx is None:
                raise SimulationError(
                    f"unknown power rail {rail!r}; rails: {list(self._rails)}"
                )
            if watts < 0.0:
                raise SimulationError(f"rail {rail!r}: negative power {watts}")
            p[idx] = watts
        return p

    def step(self, rail_powers: Mapping[str, float]) -> None:
        """Advance one step with the given per-rail powers held constant."""
        p = self._power_vector(rail_powers)
        self._state = self._ad @ self._state + self._bd @ p + self._wd * self._ambient_k

    def temperature_k(self, node: str) -> float:
        """Current temperature of ``node`` in kelvin."""
        return float(self._state[self._index(node)])

    def temperatures_k(self) -> dict[str, float]:
        """Current temperature of every node in kelvin."""
        return {name: float(self._state[i]) for name, i in self._node_index.items()}

    def max_temperature_k(self) -> float:
        """Hottest node temperature in kelvin."""
        return float(self._state.max())

    def steady_state_k(self, rail_powers: Mapping[str, float]) -> dict[str, float]:
        """Steady-state temperatures for constant powers (linear part only).

        Leakage feedback is *not* iterated here; callers who need the
        self-consistent fixed point should use :mod:`repro.core.fixed_point`.
        """
        p = self._power_vector(rail_powers)
        t_ss = -self._a_inv @ (self._b @ p + self._w * self._ambient_k)
        return {name: float(t_ss[i]) for name, i in self._node_index.items()}

    def dc_gain(self, node: str, rail: str) -> float:
        """Steady-state kelvin-per-watt from ``rail`` to ``node``.

        This is the effective thermal resistance the lumped analysis uses.
        """
        gain = -self._a_inv @ self._b
        ridx = self._rail_index.get(rail)
        if ridx is None:
            raise SimulationError(f"unknown power rail {rail!r}")
        return float(gain[self._index(node), ridx])

    def dominant_time_constant_s(self) -> float:
        """Slowest thermal time constant (seconds)."""
        eigenvalues = np.linalg.eigvals(self._a)
        slowest = max(ev.real for ev in eigenvalues)
        if slowest >= 0.0:
            raise SimulationError("thermal network is not passive (unstable A)")
        return -1.0 / slowest
