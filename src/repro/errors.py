"""Exception hierarchy shared by every ``repro`` subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class at an API boundary.  Subsystems raise the most specific subclass
that applies; none of these wrap third-party exceptions silently.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A platform, model or governor was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class SysfsError(ReproError):
    """A virtual sysfs/procfs node was accessed incorrectly."""


class SchedulingError(ReproError):
    """A task or scheduler operation was invalid (unknown pid, bad affinity)."""


class AnalysisError(ReproError):
    """A trace analysis was requested on data that cannot support it."""


class CalibrationError(AnalysisError):
    """A calibration trace, capture or fit cannot support identification.

    Subclasses :class:`AnalysisError` because every calibration problem is
    an analysis-on-unsupportable-data problem; existing callers that catch
    the base class keep working while calibration-aware callers can be
    precise.
    """


class StabilityError(ReproError):
    """The power-temperature stability analysis received invalid parameters."""


class FaultInjectionError(ReproError):
    """A fault plan or injector was invalid (unknown kind, bad window,
    or a target that does not exist on the simulated platform)."""
