"""Exception hierarchy shared by every ``repro`` subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class at an API boundary.  Subsystems raise the most specific subclass
that applies; none of these wrap third-party exceptions silently.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A platform, model or governor was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class SysfsError(ReproError):
    """A virtual sysfs/procfs node was accessed incorrectly."""


class SchedulingError(ReproError):
    """A task or scheduler operation was invalid (unknown pid, bad affinity)."""


class AnalysisError(ReproError):
    """A trace analysis was requested on data that cannot support it."""


class CalibrationError(AnalysisError):
    """A calibration trace, capture or fit cannot support identification.

    Subclasses :class:`AnalysisError` because every calibration problem is
    an analysis-on-unsupportable-data problem; existing callers that catch
    the base class keep working while calibration-aware callers can be
    precise.

    Raisers attach whatever locating context they have — the channel the
    problem was seen on, the excitation segment, the sample-window bounds —
    and the message renders it in a fixed bracketed suffix so operators can
    jump straight to the offending slice of a trace::

        rc: too few clean pairs [channel=temp.soc segment=soak window=1.000..2.500s]
    """

    def __init__(
        self,
        message: str,
        *,
        channel: str = "",
        segment: str = "",
        window_s: tuple | None = None,
    ) -> None:
        self.channel = str(channel)
        self.segment = str(segment)
        self.window_s = (
            (float(window_s[0]), float(window_s[1]))
            if window_s is not None
            else None
        )
        parts = []
        if self.channel:
            parts.append(f"channel={self.channel}")
        if self.segment:
            parts.append(f"segment={self.segment}")
        if self.window_s is not None:
            parts.append(
                f"window={self.window_s[0]:.3f}..{self.window_s[1]:.3f}s"
            )
        if parts:
            message = f"{message} [{' '.join(parts)}]"
        super().__init__(message)


class StabilityError(ReproError):
    """The power-temperature stability analysis received invalid parameters."""


class FaultInjectionError(ReproError):
    """A fault plan or injector was invalid (unknown kind, bad window,
    or a target that does not exist on the simulated platform)."""
