"""Virtual sysfs/procfs: the userspace-facing file interface of the kernel.

On real hardware the paper's proposed governor is a userspace process that
polls ``/sys`` (cpufreq, thermal zones, INA231 power monitors) and ``/proc``.
This module provides a virtual file tree backed by simulator state so the
same control code runs unchanged against either the simulator or a board.

Two node kinds exist: *static* nodes registered at an exact path with
getter/setter callbacks, and *dynamic* subtrees (``/proc/<pid>/...``) served
by a resolver function.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import SysfsError

Getter = Callable[[], str]
Setter = Callable[[str], None]


class SysfsNode:
    """One virtual file with read and optional write callbacks."""

    def __init__(self, getter: Getter | None, setter: Setter | None = None) -> None:
        if getter is None and setter is None:
            raise SysfsError("a sysfs node needs a getter or a setter")
        self._getter = getter
        self._setter = setter

    @property
    def readable(self) -> bool:
        """Whether the node supports reads."""
        return self._getter is not None

    @property
    def writable(self) -> bool:
        """Whether the node supports writes."""
        return self._setter is not None

    def read(self) -> str:
        if self._getter is None:
            raise SysfsError("node is write-only")
        return self._getter()

    def write(self, value: str) -> None:
        if self._setter is None:
            raise SysfsError("node is read-only")
        self._setter(value)


class VirtualFs:
    """Path-addressed collection of virtual files."""

    def __init__(self) -> None:
        self._nodes: dict[str, SysfsNode] = {}
        self._resolvers: list[tuple[str, Callable[[str], SysfsNode | None]]] = []
        self._read_faults: list[Callable[[str], None]] = []

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            raise SysfsError(f"paths must be absolute, got {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/")

    def register(
        self, path: str, getter: Getter | None, setter: Setter | None = None
    ) -> None:
        """Add a static node at ``path`` (must not already exist)."""
        path = self._norm(path)
        if path in self._nodes:
            raise SysfsError(f"node {path!r} already registered")
        self._nodes[path] = SysfsNode(getter, setter)

    def register_value(self, path: str, value: str) -> None:
        """Add a constant read-only node."""
        self.register(path, getter=lambda v=value: v)

    def register_resolver(
        self, prefix: str, resolver: Callable[[str], SysfsNode | None]
    ) -> None:
        """Serve every path under ``prefix`` through ``resolver``.

        The resolver receives the path *relative* to the prefix and returns a
        node or None (=> ENOENT).
        """
        self._resolvers.append((self._norm(prefix) + "/", resolver))

    def _lookup(self, path: str) -> SysfsNode:
        path = self._norm(path)
        node = self._nodes.get(path)
        if node is not None:
            return node
        for prefix, resolver in self._resolvers:
            if path.startswith(prefix):
                node = resolver(path[len(prefix):])
                if node is not None:
                    return node
        raise SysfsError(f"no such file: {path}")

    def exists(self, path: str) -> bool:
        """Whether ``path`` resolves to a node."""
        try:
            self._lookup(path)
            return True
        except SysfsError:
            return False

    def add_read_fault(self, hook: Callable[[str], None]) -> Callable[[], None]:
        """Install a read-fault hook; returns a zero-argument remover.

        Every successful path lookup calls ``hook(path)`` before the node's
        getter runs; a hook simulating a transient ``-EIO`` raises
        :class:`SysfsError`.  Hooks only see reads (the userspace-facing
        failure mode); missing paths still raise ENOENT-style errors first.
        """
        self._read_faults.append(hook)

        def remove() -> None:
            self._read_faults.remove(hook)

        return remove

    def read(self, path: str) -> str:
        """Read a node; returns the raw string (usually newline-free)."""
        node = self._lookup(path)
        for hook in self._read_faults:
            hook(self._norm(path))
        return node.read()

    def read_int(self, path: str) -> int:
        """Read a node and parse it as an integer (sysfs convention)."""
        raw = self.read(path).strip()
        try:
            return int(raw)
        except ValueError:
            raise SysfsError(f"{path}: expected an integer, got {raw!r}") from None

    def read_float(self, path: str) -> float:
        """Read a node and parse it as a float."""
        raw = self.read(path).strip()
        try:
            return float(raw)
        except ValueError:
            raise SysfsError(f"{path}: expected a float, got {raw!r}") from None

    def write(self, path: str, value) -> None:
        """Write ``value`` (stringified) to a node."""
        self._lookup(path).write(str(value))

    def listdir(self, path: str) -> list[str]:
        """Immediate children of a static directory (sorted)."""
        prefix = self._norm(path) + "/"
        children = set()
        for node_path in self._nodes:
            if node_path.startswith(prefix):
                children.add(node_path[len(prefix):].split("/", 1)[0])
        if not children and not any(
            p.startswith(prefix) or prefix.startswith(p) for p, _ in self._resolvers
        ):
            raise SysfsError(f"no such directory: {path}")
        return sorted(children)

    def paths(self) -> Iterable[str]:
        """All static paths (for introspection/tests)."""
        return sorted(self._nodes)

    def resolver_prefixes(self) -> list[str]:
        """Prefixes served by dynamic resolvers (for introspection/lint)."""
        return sorted(prefix for prefix, _resolver in self._resolvers)
