"""Kernel task model.

A :class:`Task` is the schedulable entity: it carries a work queue of
(cycles, tag) items, an affinity to one CPU cluster, a thread count bounding
how many cores it can occupy at once, and accounting of consumed CPU time per
cluster.  Applications enqueue work (e.g. one item per frame's CPU stage) and
learn about completion through the tags returned by :meth:`Task.consume`.

Batch tasks (``unbounded=True``) model workloads like MiBench
``basicmath large`` that always want the CPU regardless of queue state.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Hashable

from repro.errors import SchedulingError


class TaskState(Enum):
    """Lifecycle of a task."""

    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    EXITED = "exited"


@dataclass
class WorkItem:
    """A chunk of CPU work tagged so its completion can be observed."""

    cycles: float
    tag: Hashable


class Task:
    """One schedulable process/thread group."""

    _pid_counter = itertools.count(1000)

    def __init__(
        self,
        name: str,
        cluster: str,
        n_threads: int = 1,
        unbounded: bool = False,
        nice: int = 0,
    ) -> None:
        if n_threads < 1:
            raise SchedulingError(f"task {name!r}: n_threads must be >= 1")
        self.pid = next(Task._pid_counter)
        self.name = name
        self.cluster = cluster
        self.n_threads = n_threads
        self.unbounded = unbounded
        self.nice = nice
        self.state = TaskState.RUNNABLE
        # CPU bandwidth quota in (0, 1]: fraction of this task's thread
        # capacity it may use per tick (cgroup cpu.max analogue).  The
        # governor's duty-cycle action throttles offenders through this.
        self._cpu_quota = 1.0
        self._queue: deque[WorkItem] = deque()
        # Cumulative busy core-seconds, per cluster name.
        self.core_seconds: dict[str, float] = {}
        # Cumulative consumed work, per cluster name (instruction-weighted cycles).
        self.cycles_by_cluster: dict[str, float] = {}
        self.migrations = 0

    # ------------------------------------------------------------------ work

    def add_work(self, cycles: float, tag: Hashable = None) -> None:
        """Enqueue ``cycles`` of CPU work; completion is reported via ``tag``."""
        if self.state is TaskState.EXITED:
            raise SchedulingError(f"task {self.name!r} has exited")
        if cycles <= 0.0:
            raise SchedulingError(f"task {self.name!r}: work must be positive")
        self._queue.append(WorkItem(float(cycles), tag))
        self.state = TaskState.RUNNABLE

    @property
    def backlog_cycles(self) -> float:
        """Total queued work in cycles (zero for an empty queue)."""
        return sum(item.cycles for item in self._queue)

    @property
    def runnable(self) -> bool:
        """Whether the scheduler should consider this task."""
        if self.state is TaskState.EXITED:
            return False
        return self.unbounded or bool(self._queue)

    @property
    def cpu_quota(self) -> float:
        """Current CPU bandwidth quota in (0, 1]."""
        return self._cpu_quota

    def set_cpu_quota(self, quota: float) -> None:
        """Limit this task to ``quota`` of its thread capacity per tick."""
        if not 0.0 < quota <= 1.0:
            raise SchedulingError(
                f"task {self.name!r}: quota must be in (0, 1], got {quota}"
            )
        self._cpu_quota = float(quota)

    def demand_cycles(self, capacity_per_thread: float) -> float:
        """Work this task could consume given per-thread capacity."""
        ceiling = capacity_per_thread * self.n_threads * self._cpu_quota
        if self.unbounded:
            return ceiling
        return min(self.backlog_cycles, ceiling)

    def consume(self, cycles: float, dt_s: float, freq_hz: float, ipc: float) -> list:
        """Consume up to ``cycles`` of queued work; return completed tags.

        Also charges CPU-time accounting: ``cycles`` of work at the cluster's
        effective rate corresponds to ``cycles / (ipc * freq)`` core-seconds.
        Unbounded tasks consume the requested cycles even with an empty queue.
        """
        if cycles < 0.0:
            raise SchedulingError(f"task {self.name!r}: negative consumption")
        if cycles <= 0.0:
            return []
        completed = []
        remaining = cycles
        while remaining > 1e-9 and self._queue:
            head = self._queue[0]
            if head.cycles <= remaining + 1e-9:
                remaining -= head.cycles
                self._queue.popleft()
                if head.tag is not None:
                    completed.append(head.tag)
            else:
                head.cycles -= remaining
                remaining = 0.0
        consumed = cycles if self.unbounded else cycles - max(remaining, 0.0)
        if consumed > 0.0:
            rate = ipc * freq_hz
            self.core_seconds[self.cluster] = (
                self.core_seconds.get(self.cluster, 0.0) + consumed / rate
            )
            self.cycles_by_cluster[self.cluster] = (
                self.cycles_by_cluster.get(self.cluster, 0.0) + consumed
            )
        return completed

    # --------------------------------------------------------------- control

    def migrate(self, cluster: str) -> None:
        """Move the task to another cluster (sched_setaffinity analogue)."""
        if self.state is TaskState.EXITED:
            raise SchedulingError(f"cannot migrate exited task {self.name!r}")
        if cluster != self.cluster:
            self.cluster = cluster
            self.migrations += 1

    def exit(self) -> None:
        """Terminate the task; it will never run again."""
        self.state = TaskState.EXITED
        self._queue.clear()

    def total_core_seconds(self) -> float:
        """Busy core-seconds across all clusters."""
        return sum(self.core_seconds.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(pid={self.pid}, name={self.name!r}, cluster={self.cluster!r}, "
            f"state={self.state.value})"
        )
