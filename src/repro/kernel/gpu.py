"""GPU device: per-owner render-job queues processed at the current clock.

The GPU is modelled as a single execution engine: applications submit jobs
(cycles + completion tag), and each tick the device drains ``freq * dt``
cycles of work.  Two scheduling modes:

* ``"fair"`` (default) — each tick's capacity is shared equally among the
  owners with pending work (round-robin between app contexts, like a GPU
  driver time-slicing command streams); jobs within one owner stay FIFO.
* ``"fifo"`` — one global queue in strict submission order.

With a single owner the two are identical.  Busy fraction feeds the devfreq
governor and the power model.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Hashable

from repro.errors import ConfigurationError, SchedulingError


@dataclass
class GpuJob:
    """One render job (typically: one frame's GPU stage)."""

    cycles: float
    tag: Hashable


@dataclass
class GpuTickResult:
    """Outcome of one GPU tick."""

    busy_fraction: float
    completed_tags: list[Hashable]
    owner_cycles: dict[str, float]


class GpuDevice:
    """Single GPU engine with fair or FIFO scheduling across owners."""

    def __init__(self, scheduling: str = "fair") -> None:
        if scheduling not in ("fair", "fifo"):
            raise ConfigurationError(f"unknown GPU scheduling {scheduling!r}")
        self.scheduling = scheduling
        self._queues: "OrderedDict[str, deque[GpuJob]]" = OrderedDict()

    def submit(self, owner: str, cycles: float, tag: Hashable = None) -> None:
        """Queue a job on behalf of ``owner`` (an app name)."""
        if cycles <= 0.0:
            raise SchedulingError(f"GPU job cycles must be positive, got {cycles}")
        if owner not in self._queues:
            self._queues[owner] = deque()
        self._queues[owner].append(GpuJob(float(cycles), tag))

    @property
    def backlog_cycles(self) -> float:
        """Total queued work in cycles."""
        return sum(
            job.cycles for queue in self._queues.values() for job in queue
        )

    @property
    def queue_depth(self) -> int:
        """Number of jobs waiting (including any in progress)."""
        return sum(len(queue) for queue in self._queues.values())

    def _drain_owner(
        self,
        owner: str,
        allowance: float,
        completed: list,
        owner_cycles: dict[str, float],
    ) -> float:
        """Run one owner's FIFO for up to ``allowance`` cycles; returns use."""
        queue = self._queues[owner]
        used = 0.0
        while allowance - used > 1e-9 and queue:
            job = queue[0]
            consumed = min(job.cycles, allowance - used)
            job.cycles -= consumed
            used += consumed
            if job.cycles <= 1e-9:
                queue.popleft()
                if job.tag is not None:
                    completed.append(job.tag)
        if used > 0.0:
            owner_cycles[owner] = owner_cycles.get(owner, 0.0) + used
        return used

    def run_tick(self, freq_hz: float, dt_s: float) -> GpuTickResult:
        """Process queued work for one tick at ``freq_hz``."""
        if dt_s <= 0.0:
            raise SchedulingError(f"tick length must be positive, got {dt_s}")
        capacity = freq_hz * dt_s
        remaining = capacity
        completed: list[Hashable] = []
        owner_cycles: dict[str, float] = {}
        if self.scheduling == "fifo":
            for owner in list(self._queues):
                remaining -= self._drain_owner(
                    owner, remaining, completed, owner_cycles
                )
                if remaining <= 1e-9:
                    break
        else:
            # Fair: repeatedly split the remaining capacity equally among
            # owners that still have work (light owners return their slack).
            while remaining > 1e-9:
                pending = [o for o, q in self._queues.items() if q]
                if not pending:
                    break
                share = remaining / len(pending)
                used_this_round = 0.0
                for owner in pending:
                    used_this_round += self._drain_owner(
                        owner, share, completed, owner_cycles
                    )
                if used_this_round <= 1e-9:
                    break
                remaining -= used_this_round
        # Drop exhausted owner queues so FIFO order follows activity.
        for owner in [o for o, q in self._queues.items() if not q]:
            del self._queues[owner]
        busy = 0.0 if capacity <= 0.0 else (capacity - remaining) / capacity
        return GpuTickResult(
            busy_fraction=min(busy, 1.0),
            completed_tags=completed,
            owner_cycles=owner_cycles,
        )
