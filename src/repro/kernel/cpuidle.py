"""cpuidle: idle-state selection and idle-power gating.

The base power model charges each cluster a constant ``idle_power_w`` — the
shallow "WFI" cost of a powered but idle cluster.  Real kernels go deeper:
after enough quiet time, cores and then the whole cluster are power-gated.
This module implements a dwell-based idle governor (a simplified ``menu``):

* ``wfi``          — entered immediately when idle (scale 1.0);
* ``core_sleep``   — after ``core_dwell_s`` of cluster idleness (scale ~0.4);
* ``cluster_off``  — after ``cluster_dwell_s`` (scale ~0.05, retention only).

The selected state scales the cluster's idle power.  Any activity resets
the dwell (the exit-latency cost is far below our tick and is ignored).
Per-state residency accounting mirrors ``/sys/.../cpuidle/state*/time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IdleState:
    """One idle state: its power scale and the dwell needed to enter it."""

    name: str
    power_scale: float
    entry_dwell_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_scale <= 1.0:
            raise ConfigurationError(
                f"idle state {self.name!r}: power scale must be in [0, 1]"
            )
        if self.entry_dwell_s < 0.0:
            raise ConfigurationError(
                f"idle state {self.name!r}: dwell must be non-negative"
            )


DEFAULT_IDLE_STATES = (
    IdleState("wfi", power_scale=1.0, entry_dwell_s=0.0),
    IdleState("core_sleep", power_scale=0.4, entry_dwell_s=0.05),
    IdleState("cluster_off", power_scale=0.05, entry_dwell_s=0.2),
)

#: Cluster busy level below which it counts as idle for dwell purposes.
IDLE_BUSY_THRESHOLD = 0.02


class ClusterIdleGovernor:
    """Dwell-based idle-state selection for one cluster."""

    def __init__(self, states: Sequence[IdleState] = DEFAULT_IDLE_STATES) -> None:
        if not states:
            raise ConfigurationError("need at least one idle state")
        ordered = sorted(states, key=lambda s: s.entry_dwell_s)
        if ordered[0].entry_dwell_s > 0.0:
            raise ConfigurationError(
                "the shallowest idle state must have zero entry dwell"
            )
        scales = [s.power_scale for s in ordered]
        if any(b > a for a, b in zip(scales, scales[1:])):
            raise ConfigurationError(
                "deeper idle states must not consume more power"
            )
        self._states = tuple(ordered)
        self._idle_dwell_s = 0.0
        self._current = self._states[0]
        self._residency_s = {s.name: 0.0 for s in self._states}
        self._usage = {s.name: 0 for s in self._states}

    @property
    def states(self) -> tuple[IdleState, ...]:
        """Idle states, shallowest first."""
        return self._states

    @property
    def current_state(self) -> IdleState:
        """State the cluster's idle cores are currently in."""
        return self._current

    def update(self, busy_cores: float, n_cores: int, dt_s: float) -> float:
        """Advance one tick; returns the idle-power scale for this tick."""
        busy_level = busy_cores / max(n_cores, 1)
        if busy_level > IDLE_BUSY_THRESHOLD:
            self._idle_dwell_s = 0.0
            new_state = self._states[0]
        else:
            self._idle_dwell_s += dt_s
            new_state = self._states[0]
            for state in self._states:
                if self._idle_dwell_s >= state.entry_dwell_s:
                    new_state = state
        if new_state.name != self._current.name:
            self._usage[new_state.name] += 1
            self._current = new_state
        self._residency_s[self._current.name] += dt_s
        return self._current.power_scale

    def residency_s(self, state_name: str) -> float:
        """Accumulated seconds in one state."""
        try:
            return self._residency_s[state_name]
        except KeyError:
            raise ConfigurationError(f"unknown idle state {state_name!r}") from None

    def usage(self, state_name: str) -> int:
        """Number of entries into one state."""
        try:
            return self._usage[state_name]
        except KeyError:
            raise ConfigurationError(f"unknown idle state {state_name!r}") from None
