"""Linux-like kernel substrate: tasks, scheduler, DVFS, thermal, sysfs."""

from repro.kernel.cpuidle import DEFAULT_IDLE_STATES, ClusterIdleGovernor, IdleState
from repro.kernel.gpu import GpuDevice, GpuJob, GpuTickResult
from repro.kernel.kernel import (
    GPU_DOMAIN,
    HotplugConfig,
    Kernel,
    KernelConfig,
    KernelTickResult,
    ThermalConfig,
    UserspaceApi,
)
from repro.kernel.scheduler import ClusterUsage, Scheduler, TickResult
from repro.kernel.sysfs import SysfsNode, VirtualFs
from repro.kernel.task import Task, TaskState
from repro.kernel.tracing import EventTracer, TraceEvent
from repro.kernel.wiring import build_fs, policy_dir

__all__ = [
    "DEFAULT_IDLE_STATES",
    "GPU_DOMAIN",
    "ClusterIdleGovernor",
    "HotplugConfig",
    "IdleState",
    "ClusterUsage",
    "GpuDevice",
    "GpuJob",
    "GpuTickResult",
    "Kernel",
    "KernelConfig",
    "KernelTickResult",
    "Scheduler",
    "SysfsNode",
    "Task",
    "EventTracer",
    "TraceEvent",
    "TaskState",
    "ThermalConfig",
    "TickResult",
    "UserspaceApi",
    "VirtualFs",
    "build_fs",
    "policy_dir",
]
