"""ARM Intelligent Power Allocation (the Linux ``power_allocator`` governor).

This is the default policy on the paper's Odroid-XU3 kernel (3.10.9 with the
IPA patches): a PID controller converts the distance to the control
temperature into a total power budget, and the budget is divided among the
power *actors* (big cluster, LITTLE cluster, GPU) in proportion to their
requested power.  Each actor's share is then translated into a frequency cap
through its power table.

Reference: X. Wang, "Intelligent Power Allocation", ARM white paper DTO0052A
(cited as [31] by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.kernel.thermal.zone import ThermalGovernor, ThermalZone


@dataclass
class PowerActor:
    """One budget recipient: a cooling device plus its power estimators."""

    device: DvfsCoolingDevice
    max_power_w: Callable[[float], float]
    requested_power_w: Callable[[], float]
    weight: float = 1.0


class PowerAllocatorGovernor(ThermalGovernor):
    """PID power budgeting with proportional division among actors."""

    name = "power_allocator"

    def __init__(
        self,
        actors: Sequence[PowerActor],
        sustainable_power_w: float,
        switch_on_temp_c: float,
        control_temp_c: float,
        k_po: float | None = None,
        k_pu: float | None = None,
        k_i: float | None = None,
        integral_cutoff_c: float = 5.0,
    ) -> None:
        if not actors:
            raise ConfigurationError("IPA needs at least one power actor")
        if control_temp_c <= switch_on_temp_c:
            raise ConfigurationError(
                "control temperature must exceed the switch-on temperature"
            )
        if sustainable_power_w <= 0.0:
            raise ConfigurationError("sustainable power must be positive")
        span_c = control_temp_c - switch_on_temp_c
        self.actors = tuple(actors)
        self.sustainable_power_w = sustainable_power_w
        self.switch_on_temp_c = switch_on_temp_c
        self.control_temp_c = control_temp_c
        # Defaults follow the kernel's heuristic scaling of the PID gains
        # from the sustainable power and the trip window.
        self.k_po = k_po if k_po is not None else 2.0 * sustainable_power_w / span_c
        self.k_pu = k_pu if k_pu is not None else sustainable_power_w / span_c
        self.k_i = k_i if k_i is not None else 0.3 * sustainable_power_w / span_c
        self.integral_cutoff_c = integral_cutoff_c
        self._integral = 0.0
        self._last_now_s: float | None = None

    def reset(self) -> None:
        self._integral = 0.0
        self._last_now_s = None

    def _budget_w(self, temp_c: float, now_s: float) -> float:
        err_c = self.control_temp_c - temp_c
        k_p = self.k_pu if err_c > 0.0 else self.k_po
        dt = 0.0
        if self._last_now_s is not None:
            dt = max(now_s - self._last_now_s, 0.0)
        self._last_now_s = now_s
        # Integrate only near the setpoint (anti-windup, as in the kernel).
        if abs(err_c) < self.integral_cutoff_c and dt > 0.0:
            self._integral += err_c * dt
            bound = self.sustainable_power_w / max(self.k_i, 1e-12)
            self._integral = min(max(self._integral, -bound), bound)
        budget = (
            self.sustainable_power_w + k_p * err_c + self.k_i * self._integral
        )
        return max(budget, 0.0)

    def _allocate(self, budget_w: float) -> list[float]:
        """Divide the budget proportionally to requests, with one
        redistribution pass for actors whose grant exceeds their ceiling."""
        requests = [
            max(actor.requested_power_w(), 1e-6) * actor.weight
            for actor in self.actors
        ]
        ceilings = [
            actor.max_power_w(actor.device.policy.opps.max_freq_hz)
            for actor in self.actors
        ]
        total_req = sum(requests)
        grants = [budget_w * r / total_req for r in requests]
        surplus = 0.0
        unsaturated = []
        for i, (grant, ceiling) in enumerate(zip(grants, ceilings)):
            if grant > ceiling:
                surplus += grant - ceiling
                grants[i] = ceiling
            else:
                unsaturated.append(i)
        if surplus > 0.0 and unsaturated:
            extra_req = sum(requests[i] for i in unsaturated)
            for i in unsaturated:
                grants[i] = min(
                    grants[i] + surplus * requests[i] / extra_req, ceilings[i]
                )
        return grants

    def update(self, zone: ThermalZone, now_s: float) -> None:
        temp_c = zone.last_temp_c
        if temp_c is None:
            return
        if temp_c < self.switch_on_temp_c:
            self.reset()
            for actor in self.actors:
                actor.device.set_state(0)
            return
        budget = self._budget_w(temp_c, now_s)
        grants = self._allocate(budget)
        for actor, grant in zip(self.actors, grants):
            state = actor.device.state_for_power(grant, actor.max_power_w)
            actor.device.set_state(state)
