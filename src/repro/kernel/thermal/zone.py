"""Thermal zones: sensor + trip points + a thermal governor + cooling bindings.

Mirrors the Linux thermal framework: each zone polls its sensor at a fixed
period, keeps a short temperature history for trend detection, and hands
control to its governor (step_wise, power_allocator, or none).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.kernel.thermal.cooling import CoolingDevice
from repro.thermal.sensors import TemperatureSensor


@dataclass(frozen=True)
class TripPoint:
    """One trip point (degrees Celsius, like sysfs trip_point_N_temp/1000)."""

    temp_c: float
    hyst_c: float = 2.0
    trip_type: str = "passive"

    def __post_init__(self) -> None:
        if self.hyst_c < 0.0:
            raise ConfigurationError("trip hysteresis must be non-negative")
        if self.trip_type not in ("passive", "active", "hot", "critical"):
            raise ConfigurationError(f"unknown trip type {self.trip_type!r}")


class ThermalGovernor:
    """Base class for zone governors."""

    name = "base"

    def update(self, zone: "ThermalZone", now_s: float) -> None:
        """React to the zone's latest reading by adjusting cooling devices."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (on unbind)."""


class ThermalZone:
    """One thermal zone device."""

    def __init__(
        self,
        name: str,
        sensor: TemperatureSensor,
        trips: Sequence[TripPoint] = (),
        governor: ThermalGovernor | None = None,
        bindings: Sequence[CoolingDevice] = (),
        polling_s: float = 0.1,
        history_len: int = 8,
    ) -> None:
        if polling_s <= 0.0:
            raise ConfigurationError(f"zone {name!r}: polling period must be positive")
        self.name = name
        self.sensor = sensor
        self.trips = tuple(sorted(trips, key=lambda t: t.temp_c))
        self.governor = governor
        self.bindings = tuple(bindings)
        self.polling_s = polling_s
        self._history: deque[float] = deque(maxlen=history_len)
        self.last_temp_c: float | None = None
        self._m_temp = None
        self._m_trips = None
        self._spans = None

    def attach_observability(self, metrics, spans) -> None:
        """Wire this zone into a metrics registry and span tracer.

        Registers the zone temperature gauge and the trip counter; from then
        on every :meth:`poll` updates the gauge and every rising crossing of
        a trip point increments the counter and emits a ``thermal.trip``
        span.  Called by the kernel at construction; optional for
        standalone zones.
        """
        self._m_temp = metrics.gauge(
            "repro_thermal_zone_temp_celsius",
            "Last polled zone temperature",
            labels={"zone": self.name},
        )
        self._m_trips = metrics.counter(
            "repro_thermal_trips_total",
            "Rising crossings of a zone trip point",
            labels={"zone": self.name},
        )
        self._spans = spans

    def poll(self, now_s: float) -> float:
        """Read the sensor, update history, run the governor; returns degC."""
        temp_c = self.sensor.read_c()
        prev_c = self.last_temp_c
        self._history.append(temp_c)
        self.last_temp_c = temp_c
        if self._m_temp is not None:
            self._m_temp.set(temp_c)
            if prev_c is not None:
                for trip in self.trips:
                    if prev_c < trip.temp_c <= temp_c:
                        self._m_trips.inc()
                        if self._spans is not None:
                            self._spans.instant(
                                "thermal.trip",
                                zone=self.name,
                                trip_c=trip.temp_c,
                                trip_type=trip.trip_type,
                                temp_c=round(temp_c, 3),
                            )
        if self.governor is not None:
            self.governor.update(self, now_s)
        return temp_c

    def trend_rising(self) -> bool:
        """Whether the recent readings are increasing (simple first/last)."""
        if len(self._history) < 2:
            return True
        return self._history[-1] > self._history[0]

    def unthrottle(self) -> None:
        """Drop every bound cooling device to state 0."""
        for device in self.bindings:
            device.set_state(0)
