"""The Linux ``step_wise`` thermal governor.

Policy (as in ``drivers/thermal/gov_step_wise.c``): when the temperature is
above a passive trip and the trend is rising, raise every bound cooling
device's state by one per poll; when it falls below the trip minus its
hysteresis, lower the state by one.  This produces the staircase throttling
that phones ship with — the baseline behaviour of the paper's Section III.
"""

from __future__ import annotations

from repro.kernel.thermal.zone import ThermalGovernor, ThermalZone


class StepWiseGovernor(ThermalGovernor):
    """One-step-per-poll escalation above trips, slower de-escalation below.

    Escalation is immediate (every poll while above a trip and rising), but
    in-band relaxation happens only once per ``relax_every`` polls — phones
    throttle fast and un-throttle cautiously, which is what keeps their
    temperature parked just under the trip instead of oscillating wildly.
    """

    name = "step_wise"

    def __init__(self, relax_every: int = 5) -> None:
        if relax_every < 1:
            raise ValueError(f"relax_every must be >= 1, got {relax_every}")
        self.relax_every = relax_every
        self._polls_in_band = 0

    def reset(self) -> None:
        self._polls_in_band = 0

    def _relax(self, zone: ThermalZone) -> None:
        for device in zone.bindings:
            device.set_state(device.cur_state - 1)

    def update(self, zone: ThermalZone, now_s: float) -> None:
        temp_c = zone.last_temp_c
        if temp_c is None:
            return
        passive = [t for t in zone.trips if t.trip_type == "passive"]
        if not passive:
            return
        exceeded = [t for t in passive if temp_c > t.temp_c]
        if exceeded:
            self._polls_in_band = 0
            if zone.trend_rising() or all(d.cur_state == 0 for d in zone.bindings):
                for device in zone.bindings:
                    device.set_state(device.cur_state + 1)
            return
        lowest = passive[0]
        if temp_c < lowest.temp_c - lowest.hyst_c:
            # Clearly cool: relax unconditionally.
            self._polls_in_band = 0
            self._relax(zone)
        elif not zone.trend_rising():
            # Inside the hysteresis band and cooling: relax slowly so the
            # system parks just below the trip rather than bouncing off it.
            self._polls_in_band += 1
            if self._polls_in_band >= self.relax_every:
                self._polls_in_band = 0
                self._relax(zone)
