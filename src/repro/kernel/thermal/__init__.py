"""Kernel thermal framework: zones, trips, cooling, step_wise and IPA."""

from repro.kernel.thermal.cooling import CoolingDevice, DvfsCoolingDevice
from repro.kernel.thermal.ipa import PowerActor, PowerAllocatorGovernor
from repro.kernel.thermal.step_wise import StepWiseGovernor
from repro.kernel.thermal.zone import ThermalGovernor, ThermalZone, TripPoint

__all__ = [
    "CoolingDevice",
    "DvfsCoolingDevice",
    "PowerActor",
    "PowerAllocatorGovernor",
    "StepWiseGovernor",
    "ThermalGovernor",
    "ThermalZone",
    "TripPoint",
]
