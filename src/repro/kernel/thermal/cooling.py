"""Cooling devices: the actuators of thermal governors.

A cooling device maps an integer state (0 = no cooling) onto a frequency cap
of one DVFS policy, exactly like the kernel's ``cpufreq_cooling`` /
``devfreq_cooling`` drivers: state ``s`` disallows the top ``s`` OPPs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy


class CoolingDevice:
    """Abstract cooling device with a bounded integer state."""

    def __init__(self, name: str, max_state: int) -> None:
        if max_state < 1:
            raise ConfigurationError(f"cooling device {name!r}: max_state must be >= 1")
        self.name = name
        self.max_state = max_state
        self._cur_state = 0
        self._frozen = False

    @property
    def cur_state(self) -> int:
        """Current throttle state (0 = unthrottled)."""
        return self._cur_state

    @property
    def frozen(self) -> bool:
        """Whether the device is ignoring state changes (fault injection)."""
        return self._frozen

    def freeze(self) -> None:
        """Stop accepting state changes — a stuck cooling actuator."""
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume accepting state changes."""
        self._frozen = False

    def set_state(self, state: int) -> None:
        """Set the throttle state, clamped to [0, max_state].

        A frozen device ignores the request, exactly like a fan whose
        control line is dead: the governor keeps commanding, nothing moves.
        """
        if self._frozen:
            return
        self._cur_state = min(max(int(state), 0), self.max_state)
        self._apply()

    def _apply(self) -> None:
        raise NotImplementedError


class DvfsCoolingDevice(CoolingDevice):
    """Caps a :class:`DvfsPolicy` — state ``s`` removes the top ``s`` OPPs."""

    def __init__(self, name: str, policy: DvfsPolicy) -> None:
        super().__init__(name, max_state=len(policy.opps) - 1)
        self._policy = policy
        self._apply()

    @property
    def policy(self) -> DvfsPolicy:
        """The capped policy."""
        return self._policy

    def cap_hz(self) -> float:
        """Frequency cap implied by the current state."""
        freqs = self._policy.opps.frequencies_hz()
        return freqs[len(freqs) - 1 - self._cur_state]

    def _apply(self) -> None:
        self._policy.set_thermal_max(self.cap_hz())

    def state_for_cap(self, freq_hz: float) -> int:
        """State whose cap is the highest OPP at or below ``freq_hz``."""
        freqs = self._policy.opps.frequencies_hz()
        capped = self._policy.opps.floor(max(freq_hz, freqs[0])).freq_hz
        return len(freqs) - 1 - self._policy.opps.index_of(capped)

    def state_for_power(self, budget_w: float, power_of_freq) -> int:
        """State capping at the fastest OPP whose power fits ``budget_w``.

        ``power_of_freq`` maps a frequency in Hz to worst-case watts; it must
        be non-decreasing in frequency (guaranteed by OPP monotonicity).
        """
        freqs = self._policy.opps.frequencies_hz()
        chosen = freqs[0]
        for f in freqs:
            if power_of_freq(f) <= budget_w:
                chosen = f
            else:
                break
        return self.state_for_cap(chosen)
