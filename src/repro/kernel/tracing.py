"""Kernel event tracing (an ftrace-flavoured ring buffer).

Scenario debugging needs the *sequence* of discrete events — migrations,
cooling-state changes, hotplug, governor decisions — not just the sampled
traces.  The :class:`EventTracer` is a bounded ring buffer the kernel and
userspace daemons emit into; it renders in an ftrace-like one-line format
and is exposed at ``/sys/kernel/debug/tracing/trace`` (with a writable
``trace_marker``, like the real thing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceEvent:
    """One discrete kernel event."""

    time_s: float
    source: str
    event: str
    detail: str = ""

    def render(self) -> str:
        """One ftrace-like line."""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time_s:10.3f}] {self.source}: {self.event}{detail}"


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 10000) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time_s: float, source: str, event: str, detail: str = "") -> None:
        """Record one event (oldest events are dropped when full)."""
        if len(self._events) == self.capacity:
            self._dropped += 1
        self._events.append(TraceEvent(time_s, source, event, detail))

    @property
    def dropped(self) -> int:
        """Events lost to the ring-buffer bound."""
        return self._dropped

    def events(
        self, source: str | None = None, event: str | None = None
    ) -> list[TraceEvent]:
        """Events matching the optional source/event filters, oldest first."""
        out = []
        for entry in self._events:
            if source is not None and entry.source != source:
                continue
            if event is not None and entry.event != event:
                continue
            out.append(entry)
        return out

    def render(self) -> str:
        """The whole buffer in ftrace-like lines."""
        lines = [entry.render() for entry in self._events]
        if self._dropped:
            lines.insert(0, f"# {self._dropped} events dropped")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Empty the buffer."""
        self._events.clear()
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._events)
