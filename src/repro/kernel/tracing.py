"""Kernel event tracing (an ftrace-flavoured ring buffer).

Scenario debugging needs the *sequence* of discrete events — migrations,
cooling-state changes, hotplug, governor decisions — not just the sampled
traces.  The :class:`EventTracer` is a bounded ring buffer the kernel and
userspace daemons emit into; it renders in an ftrace-like one-line format
and is exposed at ``/sys/kernel/debug/tracing/trace`` (with a writable
``trace_marker``, like the real thing).

When wired to a :class:`~repro.obs.metrics.MetricsRegistry` the tracer
exports its health: total/dropped event counters and buffer occupancy, so
silent ring-buffer overflow is visible in every metrics export.  The first
drop additionally logs a one-line warning.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class TraceEvent:
    """One discrete kernel event."""

    time_s: float
    source: str
    event: str
    detail: str = ""

    def render(self) -> str:
        """One ftrace-like line."""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time_s:10.3f}] {self.source}: {self.event}{detail}"


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 10000, metrics=None) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._m_total = self._m_dropped = self._m_occupancy = None
        if metrics is not None:
            self._m_total = metrics.counter(
                "repro_tracer_events_total", "Events emitted into the ring buffer"
            )
            self._m_dropped = metrics.counter(
                "repro_tracer_events_dropped_total",
                "Events lost to the ring-buffer bound",
            )
            self._m_occupancy = metrics.gauge(
                "repro_tracer_buffer_occupancy",
                "Events currently held in the ring buffer",
            )
            metrics.gauge(
                "repro_tracer_buffer_capacity", "Ring-buffer capacity"
            ).set(capacity)

    def emit(self, time_s: float, source: str, event: str, detail: str = "") -> None:
        """Record one event (oldest events are dropped when full)."""
        if len(self._events) == self.capacity:
            if self._dropped == 0:
                log.warning(
                    "event tracer ring buffer full (capacity %d): "
                    "oldest events are being dropped",
                    self.capacity,
                )
            self._dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
        self._events.append(TraceEvent(time_s, source, event, detail))
        if self._m_total is not None:
            self._m_total.inc()
            self._m_occupancy.set(len(self._events))

    @property
    def dropped(self) -> int:
        """Events lost to the ring-buffer bound."""
        return self._dropped

    def events(
        self, source: str | None = None, event: str | None = None
    ) -> list[TraceEvent]:
        """Events matching the optional source/event filters, oldest first."""
        out = []
        for entry in self._events:
            if source is not None and entry.source != source:
                continue
            if event is not None and entry.event != event:
                continue
            out.append(entry)
        return out

    def render(self) -> str:
        """The whole buffer in ftrace-like lines."""
        lines = [entry.render() for entry in self._events]
        if self._dropped:
            lines.insert(0, f"# {self._dropped} events dropped")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Empty the buffer."""
        self._events.clear()
        self._dropped = 0
        if self._m_occupancy is not None:
            self._m_occupancy.set(0)

    def __len__(self) -> int:
        return len(self._events)
