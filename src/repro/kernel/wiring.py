"""Wires a :class:`~repro.kernel.kernel.Kernel` into its /sys and /proc tree.

Path layout mirrors Linux closely enough that the userspace governor code is
board-portable:

* ``/sys/devices/system/cpu/cpufreq/policy<N>/...`` — one per cluster, where
  ``N`` is the first CPU index of the cluster (policy0 = LITTLE, policy4 =
  big on both modelled SoCs).
* ``/sys/class/devfreq/gpu/...`` — the GPU devfreq domain (frequencies in
  Hz, as devfreq does).
* ``/sys/class/thermal/thermal_zone<i>/...`` and ``cooling_device<i>/...``.
* ``/sys/bus/i2c/drivers/INA231/<addr>/sensor_W`` — Odroid-XU3 power
  monitors (when the platform declares INA231 addresses), plus a generic
  ``/sys/class/power_sensors/<rail>/power_w`` fallback for any platform.
* ``/proc/<pid>/{comm,sched,stat}`` — dynamic, resolver-served.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SysfsError
from repro.kernel.sysfs import SysfsNode, VirtualFs
from repro.units import (
    celsius_to_millicelsius,
    hz_to_khz,
    khz_to_hz,
    seconds_to_microseconds,
    seconds_to_milliseconds,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

USER_HZ = 100  # jiffies per second, as Linux reports in /proc/<pid>/stat


def _policy_dirs(kernel: "Kernel") -> dict[str, str]:
    """Map cluster name -> cpufreq policy directory."""
    dirs = {}
    cpu_index = 0
    for cluster in kernel.platform.clusters:
        dirs[cluster.name] = (
            f"/sys/devices/system/cpu/cpufreq/policy{cpu_index}"
        )
        cpu_index += cluster.n_cores
    return dirs


def _wire_cpufreq(fs: VirtualFs, kernel: "Kernel") -> None:
    cpu_index = 0
    for cluster in kernel.platform.clusters:
        name = cluster.name
        policy = kernel.policies[name]
        base = _policy_dirs(kernel)[name]
        cpus = " ".join(str(i) for i in range(cpu_index, cpu_index + cluster.n_cores))
        cpu_index += cluster.n_cores

        fs.register_value(f"{base}/affected_cpus", cpus)
        # Per-CPU online nodes; writing any CPU of a cluster hotplugs the
        # whole cluster (our hotplug granularity is the cluster).
        for cpu in cpus.split():
            fs.register(
                f"/sys/devices/system/cpu/cpu{cpu}/online",
                getter=lambda d=name: "1" if kernel.cluster_online(d) else "0",
                setter=lambda v, d=name: kernel.set_cluster_online(
                    d, v.strip() == "1"
                ),
            )
        fs.register_value(
            f"{base}/scaling_available_frequencies",
            " ".join(str(k) for k in policy.opps.frequencies_khz()),
        )
        fs.register_value(
            f"{base}/cpuinfo_min_freq", str(policy.opps.frequencies_khz()[0])
        )
        fs.register_value(
            f"{base}/cpuinfo_max_freq", str(policy.opps.frequencies_khz()[-1])
        )
        fs.register(
            f"{base}/scaling_cur_freq",
            getter=lambda p=policy: str(hz_to_khz(p.cur_freq_hz)),
        )
        fs.register(
            f"{base}/scaling_governor",
            getter=lambda d=name: kernel.governors[d].name,
            setter=lambda v, d=name: kernel.set_cpu_governor(d, v.strip()),
        )
        fs.register(
            f"{base}/scaling_min_freq",
            getter=lambda p=policy: str(hz_to_khz(p.user_min_hz)),
            setter=lambda v, p=policy: p.set_user_limits(
                khz_to_hz(int(v)), p.user_max_hz
            ),
        )
        fs.register(
            f"{base}/scaling_max_freq",
            getter=lambda p=policy: str(hz_to_khz(p.user_max_hz)),
            setter=lambda v, p=policy: p.set_user_limits(
                p.user_min_hz, khz_to_hz(int(v))
            ),
        )
        fs.register(
            f"{base}/scaling_setspeed",
            getter=lambda: "<unsupported>",
            setter=lambda v, d=name: kernel.userspace_set_speed(
                d, khz_to_hz(int(v))
            ),
        )
        fs.register(
            f"{base}/stats/time_in_state",
            getter=lambda p=policy: "".join(
                f"{khz} {int(round(seconds * USER_HZ))}\n"
                for khz, seconds in p.time_in_state.items()
            ),
        )
        fs.register(
            f"{base}/stats/total_trans",
            getter=lambda p=policy: str(p.total_transitions),
        )
        first_cpu = cpus.split()[0]
        for j, state in enumerate(kernel.idle_governors[name].states):
            idle_base = (
                f"/sys/devices/system/cpu/cpu{first_cpu}/cpuidle/state{j}"
            )
            fs.register_value(f"{idle_base}/name", state.name)
            fs.register(
                f"{idle_base}/time",
                getter=lambda d=name, n=state.name: str(int(
                    seconds_to_microseconds(
                        kernel.idle_governors[d].residency_s(n)
                    )
                )),
            )
            fs.register(
                f"{idle_base}/usage",
                getter=lambda d=name, n=state.name: str(
                    kernel.idle_governors[d].usage(n)
                ),
            )
        fs.register(
            f"{base}/stats/trans_table",
            getter=lambda p=policy: "".join(
                f"{src} {dst} {count}\n"
                for (src, dst), count in sorted(p.transitions.items())
            ),
        )


def _wire_devfreq(fs: VirtualFs, kernel: "Kernel") -> None:
    from repro.kernel.kernel import GPU_DOMAIN

    policy = kernel.policies[GPU_DOMAIN]
    base = "/sys/class/devfreq/gpu"
    fs.register_value(
        f"{base}/available_frequencies",
        " ".join(str(int(f)) for f in policy.opps.frequencies_hz()),
    )
    fs.register(f"{base}/cur_freq", getter=lambda: str(int(policy.cur_freq_hz)))
    fs.register(
        f"{base}/governor", getter=lambda: kernel.governors[GPU_DOMAIN].name
    )
    fs.register(
        f"{base}/min_freq",
        getter=lambda: str(int(policy.user_min_hz)),
        setter=lambda v: policy.set_user_limits(float(v), policy.user_max_hz),
    )
    fs.register(
        f"{base}/max_freq",
        getter=lambda: str(int(policy.user_max_hz)),
        setter=lambda v: policy.set_user_limits(policy.user_min_hz, float(v)),
    )
    fs.register(
        f"{base}/time_in_state",
        getter=lambda: "".join(
            f"{khz} {int(round(seconds * USER_HZ))}\n"
            for khz, seconds in policy.time_in_state.items()
        ),
    )


def _wire_thermal(fs: VirtualFs, kernel: "Kernel") -> None:
    for i, (name, zone) in enumerate(sorted(kernel.zones.items())):
        base = f"/sys/class/thermal/thermal_zone{i}"
        fs.register_value(f"{base}/type", name)
        fs.register(
            f"{base}/temp",
            getter=lambda z=zone: str(z.sensor.read_millicelsius()),
        )
        fs.register(
            f"{base}/policy",
            getter=lambda z=zone: (
                z.governor.name if z.governor is not None else "user_space"
            ),
        )
        for j, trip in enumerate(zone.trips):
            fs.register_value(
                f"{base}/trip_point_{j}_temp",
                str(celsius_to_millicelsius(trip.temp_c)),
            )
            fs.register_value(
                f"{base}/trip_point_{j}_hyst",
                str(celsius_to_millicelsius(trip.hyst_c)),
            )
            fs.register_value(f"{base}/trip_point_{j}_type", trip.trip_type)
    for i, device in enumerate(kernel.cooling_devices):
        base = f"/sys/class/thermal/cooling_device{i}"
        fs.register_value(f"{base}/type", device.name)
        fs.register_value(f"{base}/max_state", str(device.max_state))
        fs.register(
            f"{base}/cur_state",
            getter=lambda d=device: str(d.cur_state),
            setter=lambda v, d=device: d.set_state(int(v)),
        )


def _wire_power(fs: VirtualFs, kernel: "Kernel") -> None:
    ina_addresses = kernel.platform.extras.get("ina231", {})
    for rail, sensor in kernel.power_sensors.items():
        fs.register(
            f"/sys/class/power_sensors/{rail}/power_w",
            getter=lambda s=sensor: f"{s.read_w():.6f}",
        )
    for domain, addr in ina_addresses.items():
        rail = domain  # rails are named after their domain on the Odroid
        sensor = kernel.power_sensors.get(rail)
        if sensor is None:
            raise SysfsError(f"INA231 address declared for unknown rail {rail!r}")
        fs.register(
            f"/sys/bus/i2c/drivers/INA231/{addr}/sensor_W",
            getter=lambda s=sensor: f"{s.read_w():.6f}",
        )


def _wire_proc(fs: VirtualFs, kernel: "Kernel") -> None:
    def resolver(rel_path: str) -> SysfsNode | None:
        parts = rel_path.split("/")
        if len(parts) != 2:
            return None
        pid_str, leaf = parts
        try:
            pid = int(pid_str)
        except ValueError:
            return None
        try:
            task = kernel.scheduler.task(pid)
        except Exception:
            return None
        if leaf == "comm":
            return SysfsNode(getter=lambda t=task: t.name)
        if leaf == "stat":
            def stat(t=task) -> str:
                utime_ticks = int(round(t.total_core_seconds() * USER_HZ))
                state = "R" if t.runnable else "S"
                return (
                    f"{t.pid} ({t.name}) {state} 1 {t.pid} {t.pid} 0 -1 0 "
                    f"0 0 0 0 {utime_ticks} 0 0 0 {t.nice} {t.n_threads}"
                )
            return SysfsNode(getter=stat)
        if leaf == "sched":
            def sched(t=task) -> str:
                runtime_ms = seconds_to_milliseconds(t.total_core_seconds())
                lines = [
                    f"{t.name} ({t.pid}, #threads: {t.n_threads})",
                    f"se.sum_exec_runtime : {runtime_ms:.6f}",
                    f"current_cluster : {t.cluster}",
                    f"nr_migrations : {t.migrations}",
                ]
                return "\n".join(lines) + "\n"
            return SysfsNode(getter=sched)
        return None

    fs.register_resolver("/proc", resolver)


def _wire_tracing(fs: VirtualFs, kernel: "Kernel") -> None:
    base = "/sys/kernel/debug/tracing"
    fs.register(f"{base}/trace", getter=lambda: kernel.tracer.render())
    fs.register(
        f"{base}/trace_marker",
        getter=None,
        setter=lambda v: kernel.tracer.emit(
            kernel._clock.now, "userspace", "marker", v.strip()
        ),
    )


def build_fs(kernel: "Kernel") -> VirtualFs:
    """Construct the full virtual /sys + /proc tree for ``kernel``."""
    fs = VirtualFs()
    _wire_cpufreq(fs, kernel)
    _wire_devfreq(fs, kernel)
    _wire_thermal(fs, kernel)
    _wire_power(fs, kernel)
    _wire_proc(fs, kernel)
    _wire_tracing(fs, kernel)
    return fs


def policy_dir(kernel: "Kernel", cluster: str) -> str:
    """Public helper: cpufreq policy directory of a cluster."""
    return _policy_dirs(kernel)[cluster]
