"""The kernel facade: scheduler, DVFS, thermal framework, sysfs, daemons.

A :class:`Kernel` owns every OS-side object of one simulated device and
advances them in lock-step with the simulation engine:

1. frequency governors run at their evaluation periods;
2. thermal zones poll their sensors and run thermal governors;
3. registered userspace daemons (e.g. the paper's proposed governor) run;
4. the scheduler and GPU dispatch one tick of work at the chosen clocks.

The engine then computes power from the resulting activity and steps the
thermal model; :meth:`Kernel.update_power_readings` feeds the measured rail
powers back into the INA231-style sensors that userspace reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.errors import ConfigurationError, SchedulingError
from repro.kernel.cpufreq.governors import (
    FreqGovernor,
    UserspaceGovernor,
    make_governor,
)
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.gpu import GpuDevice, GpuTickResult
from repro.kernel.scheduler import ClusterUsage, Scheduler
from repro.kernel.sysfs import VirtualFs
from repro.kernel.task import Task
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.kernel.thermal.ipa import PowerActor, PowerAllocatorGovernor
from repro.kernel.thermal.step_wise import StepWiseGovernor
from repro.kernel.thermal.zone import ThermalZone, TripPoint
from repro.power.sensors import RailPowerSensor
from repro.sim.clock import Clock, PeriodicTimer
from repro.sim.rng import RngRegistry
from repro.soc.platform import PlatformSpec
from repro.thermal.model import ThermalModel
from repro.thermal.sensors import TemperatureSensor

GPU_DOMAIN = "gpu"


@dataclass(frozen=True)
class ThermalConfig:
    """Which thermal policy runs, where it senses, and what it cools."""

    kind: str  # "step_wise" or "ipa"
    sensor: str
    cooled: tuple[str, ...]
    polling_s: float = 0.1
    trips: tuple[TripPoint, ...] = ()
    sustainable_power_w: float = 2.5
    switch_on_temp_c: float = 70.0
    control_temp_c: float = 90.0

    def __post_init__(self) -> None:
        if self.kind not in ("step_wise", "ipa"):
            raise ConfigurationError(f"unknown thermal policy kind {self.kind!r}")
        if self.kind == "step_wise" and not self.trips:
            raise ConfigurationError("step_wise thermal policy needs trip points")
        if not self.cooled:
            raise ConfigurationError("thermal policy needs at least one cooled domain")


@dataclass(frozen=True)
class HotplugConfig:
    """Last-resort thermal protection: power a cluster off above a trip.

    The paper's Section I: "In extreme cases, the governors resort to
    powering the cores off to reduce the temperature of the device."
    """

    sensor: str
    cluster: str
    trip_c: float
    hyst_c: float = 10.0
    polling_s: float = 0.25

    def __post_init__(self) -> None:
        if self.hyst_c <= 0.0 or self.polling_s <= 0.0:
            raise ConfigurationError("hotplug hysteresis/polling must be positive")


@dataclass(frozen=True)
class KernelConfig:
    """Software configuration of a simulated device."""

    cpu_governor: str = "interactive"
    cpu_governor_params: Mapping = field(default_factory=dict)
    gpu_governor: str = "adreno_tz"
    gpu_governor_params: Mapping = field(default_factory=dict)
    cpu_governor_period_s: float = 0.02
    gpu_governor_period_s: float = 0.05
    thermal: ThermalConfig | None = None
    hotplug: HotplugConfig | None = None


@dataclass
class KernelTickResult:
    """Everything that happened OS-side during one tick."""

    usage: dict[str, ClusterUsage]
    gpu: GpuTickResult
    freqs_hz: dict[str, float]
    completed_cpu_tags: list[Hashable]


class UserspaceApi:
    """The narrow interface a userspace daemon gets: files + a few syscalls."""

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel

    @property
    def fs(self) -> VirtualFs:
        """The /sys and /proc virtual file tree."""
        return self._kernel.fs

    def pids(self) -> list[int]:
        """Pids of all live tasks (like listing /proc)."""
        return [t.pid for t in self._kernel.scheduler.tasks()]

    def process_name(self, pid: int) -> str:
        """comm of a pid."""
        return self._kernel.scheduler.task(pid).name

    def set_affinity(self, pid: int, cluster: str) -> None:
        """sched_setaffinity to one cluster."""
        self._kernel.migrate(pid, cluster)

    def set_cpu_quota(self, pid: int, quota: float) -> None:
        """Limit a pid's CPU bandwidth (cgroup cpu.max analogue)."""
        self._kernel.scheduler.task(pid).set_cpu_quota(quota)
        self._kernel.tracer.emit(
            self._kernel._clock.now, "cgroup", "cpu_quota",
            f"pid={pid} -> {quota:g}",
        )

    def cpu_quota(self, pid: int) -> float:
        """Current CPU bandwidth quota of a pid."""
        return self._kernel.scheduler.task(pid).cpu_quota

    @property
    def big_cluster(self) -> str:
        """Name of the big cluster."""
        return self._kernel.platform.big_cluster.name

    @property
    def little_cluster(self) -> str:
        """Name of the LITTLE cluster."""
        return self._kernel.platform.little_cluster.name


class Kernel:
    """OS layer of one simulated device."""

    def __init__(
        self,
        platform: PlatformSpec,
        thermal_model: ThermalModel,
        clock: Clock,
        rng: RngRegistry,
        config: KernelConfig | None = None,
        metrics=None,
        spans=None,
    ) -> None:
        self.platform = platform
        self.config = config or KernelConfig()
        self._thermal_model = thermal_model
        self._clock = clock
        self.power_model = platform.power_model()

        from repro.kernel.tracing import EventTracer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanTracer

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = (
            spans
            if spans is not None
            else SpanTracer(sim_time_fn=lambda: clock.now)
        )
        self.tracer = EventTracer(metrics=self.metrics)
        self.scheduler = Scheduler({c.name: c for c in platform.clusters})
        self.gpu = GpuDevice()

        # --- DVFS policies and governors -------------------------------
        self.policies: dict[str, DvfsPolicy] = {}
        self.governors: dict[str, FreqGovernor] = {}
        self._governor_timers: dict[str, PeriodicTimer] = {}
        for cluster in platform.clusters:
            policy = DvfsPolicy(
                cluster.name, cluster.opps, initial_freq_hz=cluster.opps.min_freq_hz
            )
            self.policies[cluster.name] = policy
            self.governors[cluster.name] = make_governor(
                self.config.cpu_governor, **dict(self.config.cpu_governor_params)
            )
            self._governor_timers[cluster.name] = PeriodicTimer(
                clock, self.config.cpu_governor_period_s
            )
        gpu_policy = DvfsPolicy(
            GPU_DOMAIN, platform.gpu.opps, initial_freq_hz=platform.gpu.opps.min_freq_hz
        )
        self.policies[GPU_DOMAIN] = gpu_policy
        self.governors[GPU_DOMAIN] = make_governor(
            self.config.gpu_governor, **dict(self.config.gpu_governor_params)
        )
        self._governor_timers[GPU_DOMAIN] = PeriodicTimer(
            clock, self.config.gpu_governor_period_s
        )

        # --- sensors ----------------------------------------------------
        self.sensors: dict[str, TemperatureSensor] = {
            spec.name: TemperatureSensor(
                spec, thermal_model, rng.stream(f"sensor.{spec.name}")
            )
            for spec in platform.sensors
        }
        self.power_sensors: dict[str, RailPowerSensor] = {}
        rails = [c.rail for c in platform.clusters]
        rails += [platform.gpu.rail, platform.memory.rail]
        for rail in rails:
            self.power_sensors[rail] = RailPowerSensor(
                rail, rng.stream(f"ina.{rail}")
            )

        # --- thermal zones ----------------------------------------------
        self.cooling_devices: list[DvfsCoolingDevice] = []
        self.zones: dict[str, ThermalZone] = {}
        self._zone_timers: dict[str, PeriodicTimer] = {}
        self._build_thermal()

        # --- cpuidle --------------------------------------------------------
        from repro.kernel.cpuidle import ClusterIdleGovernor

        self.idle_governors: dict[str, ClusterIdleGovernor] = {
            c.name: ClusterIdleGovernor() for c in platform.clusters
        }
        self.idle_governors[GPU_DOMAIN] = ClusterIdleGovernor()
        self._idle_scales: dict[str, float] = {
            name: 1.0 for name in self.idle_governors
        }

        # --- hotplug ------------------------------------------------------
        self._cluster_online: dict[str, bool] = {
            c.name: True for c in platform.clusters
        }
        self._cooling_states: dict[str, int] = {}
        self._throttle_since_s: dict[str, float] = {}
        self._daemons: list[tuple[str, PeriodicTimer, Callable[[float], None]]] = []
        if self.config.hotplug is not None:
            self._install_hotplug(self.config.hotplug)

        self._register_metrics()

        from repro.kernel.wiring import build_fs  # deferred: avoids import cycle

        self.fs = build_fs(self)

    def _register_metrics(self) -> None:
        """Create every kernel metric family up front.

        Eager registration keeps the emitted catalogue identical whether or
        not a given event ever fires, which is what the documentation test
        asserts against.
        """
        from repro.obs.metrics import DURATION_BUCKETS_S, LATENCY_BUCKETS_S

        m = self.metrics
        self._m_gov_updates = {}
        self._m_gov_latency = {}
        self._m_gov_freq_changes = {}
        for domain in self.policies:
            labels = {"domain": domain}
            self._m_gov_updates[domain] = m.counter(
                "repro_governor_updates_total",
                "DVFS governor evaluations",
                labels=labels,
            )
            self._m_gov_latency[domain] = m.histogram(
                "repro_governor_decision_latency_seconds",
                "Wall-clock latency of one governor evaluation",
                buckets=LATENCY_BUCKETS_S,
                labels=labels,
                wall_clock=True,
            )
            self._m_gov_freq_changes[domain] = m.counter(
                "repro_governor_freq_changes_total",
                "Governor evaluations that changed the target frequency",
                labels=labels,
            )
        self._m_migrations = m.counter(
            "repro_migrations_total", "Task migrations between clusters"
        )
        self._m_spawns = m.counter(
            "repro_tasks_spawned_total", "Tasks created"
        )
        m.declare(
            "repro_hotplug_transitions_total",
            "counter",
            "Cluster power-state transitions",
        )
        self._m_cooling_changes = {}
        self._m_throttle_duration = {}
        for device in self.cooling_devices:
            self._m_cooling_changes[device.name] = m.counter(
                "repro_cooling_state_changes_total",
                "Cooling-device state transitions",
                labels={"device": device.name},
            )
            self._m_throttle_duration[device.name] = m.histogram(
                "repro_throttle_duration_seconds",
                "Simulated duration of one throttling episode",
                buckets=DURATION_BUCKETS_S,
                labels={"device": device.name},
            )
        m.declare(
            "repro_cooling_state_changes_total",
            "counter",
            "Cooling-device state transitions",
        )
        m.declare(
            "repro_throttle_duration_seconds",
            "histogram",
            "Simulated duration of one throttling episode",
            buckets=DURATION_BUCKETS_S,
        )
        m.declare(
            "repro_thermal_zone_temp_celsius", "gauge", "Last polled zone temperature"
        )
        m.declare(
            "repro_thermal_trips_total",
            "counter",
            "Rising crossings of a zone trip point",
        )
        for zone in self.zones.values():
            zone.attach_observability(m, self.spans)

    # ------------------------------------------------------------ assembly

    def _component_temp_k(self, domain: str) -> float:
        """True temperature of the thermal node backing a DVFS domain."""
        if domain == GPU_DOMAIN:
            node = self.platform.gpu.thermal_node
        else:
            node = self.platform.cluster(domain).thermal_node
        return self._thermal_model.temperature_k(node)

    def _make_actor(self, domain: str, device: DvfsCoolingDevice) -> PowerActor:
        """IPA actor with *load-scaled* power tables, as in the kernel.

        Both the requested power and the budget-to-frequency conversion use
        the power the domain would draw at its current load, not the
        all-cores-busy worst case — otherwise IPA over-throttles lightly
        loaded clusters.
        """
        policy = self.policies[domain]

        if domain == GPU_DOMAIN:
            def power_at(freq_hz: float, _d=domain) -> float:
                load = max(policy.last_mean_util, 0.1)
                return load * self.power_model.max_gpu_power_w(
                    freq_hz, self._component_temp_k(_d)
                )
        else:
            def power_at(freq_hz: float, _d=domain) -> float:
                load = max(policy.last_mean_util, 0.1)
                return load * self.power_model.max_cluster_power_w(
                    _d, freq_hz, self._component_temp_k(_d)
                )

        def requested() -> float:
            # A fully loaded domain asks for the power of its fastest OPP,
            # not of the capped one it is stuck at — otherwise a throttled
            # actor's request (and hence its grant) spirals to zero.
            freq = policy.cur_freq_hz
            if policy.last_util >= 0.95:
                freq = policy.opps.max_freq_hz
            return power_at(freq)

        return PowerActor(
            device=device, max_power_w=power_at, requested_power_w=requested
        )

    def _build_thermal(self) -> None:
        cfg = self.config.thermal
        governed_sensor = cfg.sensor if cfg is not None else None
        if cfg is not None:
            devices = []
            for domain in cfg.cooled:
                if domain not in self.policies:
                    raise ConfigurationError(
                        f"thermal config cools unknown domain {domain!r}"
                    )
                device = DvfsCoolingDevice(
                    f"thermal-{domain}", self.policies[domain]
                )
                devices.append(device)
                self.cooling_devices.append(device)
            if cfg.sensor not in self.sensors:
                raise ConfigurationError(
                    f"thermal config uses unknown sensor {cfg.sensor!r}"
                )
            if cfg.kind == "step_wise":
                governor = StepWiseGovernor()
            else:
                actors = [
                    self._make_actor(domain, device)
                    for domain, device in zip(cfg.cooled, devices)
                ]
                governor = PowerAllocatorGovernor(
                    actors,
                    sustainable_power_w=cfg.sustainable_power_w,
                    switch_on_temp_c=cfg.switch_on_temp_c,
                    control_temp_c=cfg.control_temp_c,
                )
            zone = ThermalZone(
                cfg.sensor,
                self.sensors[cfg.sensor],
                trips=cfg.trips,
                governor=governor,
                bindings=devices,
                polling_s=cfg.polling_s,
            )
            self.zones[cfg.sensor] = zone
            self._zone_timers[cfg.sensor] = PeriodicTimer(self._clock, cfg.polling_s)
        # Ungoverned zones: every other sensor is still readable.
        for name, sensor in self.sensors.items():
            if name == governed_sensor:
                continue
            zone = ThermalZone(name, sensor, polling_s=0.1)
            self.zones[name] = zone
            self._zone_timers[name] = PeriodicTimer(self._clock, zone.polling_s)

    # ------------------------------------------------------------- control

    def set_cpu_governor(self, domain: str, name: str, **params) -> None:
        """Switch the governor of one DVFS domain at runtime."""
        if domain not in self.policies:
            raise ConfigurationError(f"unknown DVFS domain {domain!r}")
        self.governors[domain] = make_governor(name, **params)

    def userspace_set_speed(self, domain: str, freq_hz: float) -> None:
        """scaling_setspeed: only valid while the userspace governor runs."""
        governor = self.governors[domain]
        if not isinstance(governor, UserspaceGovernor):
            raise ConfigurationError(
                f"domain {domain!r} is not running the userspace governor"
            )
        governor.set_speed(freq_hz)

    def input_event(self, now_s: float, duration_s: float = 0.5) -> None:
        """A touch event: boost every CPU policy (interactive governor)."""
        for cluster in self.platform.clusters:
            self.policies[cluster.name].notify_input(now_s, duration_s)

    def register_daemon(
        self, name: str, period_s: float, fn: Callable[[float], None]
    ) -> None:
        """Run ``fn(now_s)`` every ``period_s`` seconds (userspace service)."""
        timer = PeriodicTimer(self._clock, period_s)
        self._daemons.append((name, timer, fn))

    def daemon_names(self) -> list[str]:
        """Names of the registered userspace daemons, in registration order."""
        return [name for name, _timer, _fn in self._daemons]

    def wrap_daemon(
        self, name: str, wrap: Callable[[Callable[[float], None]], Callable[[float], None]]
    ) -> None:
        """Replace a daemon's callback with ``wrap(original)``.

        The fault-injection layer uses this to model missed control ticks
        (scheduler starvation) without the daemon's knowledge; the timer and
        its phase are untouched.
        """
        for i, (daemon, timer, fn) in enumerate(self._daemons):
            if daemon == name:
                self._daemons[i] = (daemon, timer, wrap(fn))
                return
        raise ConfigurationError(
            f"no daemon named {name!r}; have {self.daemon_names()}"
        )

    def userspace_api(self) -> UserspaceApi:
        """The interface handed to userspace daemons."""
        return UserspaceApi(self)

    # ------------------------------------------------------------- hotplug

    def idle_scale(self, name: str) -> float:
        """Current idle power scale of a domain (clusters and the GPU)."""
        try:
            return self._idle_scales[name]
        except KeyError:
            raise ConfigurationError(f"unknown cluster {name!r}") from None

    def cluster_online(self, name: str) -> bool:
        """Whether a CPU cluster is powered."""
        try:
            return self._cluster_online[name]
        except KeyError:
            raise ConfigurationError(f"unknown cluster {name!r}") from None

    def _fallback_cluster(self, offline: str) -> str:
        for name, online in self._cluster_online.items():
            if online and name != offline:
                return name
        raise ConfigurationError("cannot power off the last online cluster")

    def set_cluster_online(self, name: str, online: bool) -> None:
        """Power a cluster on/off; offlining migrates its tasks away."""
        if name not in self._cluster_online:
            raise ConfigurationError(f"unknown cluster {name!r}")
        if not online:
            fallback = self._fallback_cluster(name)
            for task in self.scheduler.tasks():
                if task.cluster == name:
                    task.migrate(fallback)
        if self._cluster_online[name] != online:
            state = "online" if online else "offline"
            self.tracer.emit(self._clock.now, "hotplug", state, name)
            self.metrics.counter(
                "repro_hotplug_transitions_total",
                labels={"cluster": name, "state": state},
            ).inc()
            self.spans.instant("hotplug.transition", cluster=name, state=state)
        self._cluster_online[name] = online

    def _install_hotplug(self, cfg: HotplugConfig) -> None:
        if cfg.sensor not in self.sensors:
            raise ConfigurationError(f"hotplug uses unknown sensor {cfg.sensor!r}")
        if cfg.cluster not in self._cluster_online:
            raise ConfigurationError(
                f"hotplug targets unknown cluster {cfg.cluster!r}"
            )
        sensor = self.sensors[cfg.sensor]

        def poll(now_s: float) -> None:
            temp_c = sensor.read_c()
            if self._cluster_online[cfg.cluster] and temp_c > cfg.trip_c:
                self.set_cluster_online(cfg.cluster, False)
            elif (
                not self._cluster_online[cfg.cluster]
                and temp_c < cfg.trip_c - cfg.hyst_c
            ):
                self.set_cluster_online(cfg.cluster, True)

        self.register_daemon("thermal-hotplug", cfg.polling_s, poll)

    def spawn(
        self,
        name: str,
        cluster: str | None = None,
        n_threads: int = 1,
        unbounded: bool = False,
    ) -> Task:
        """Create a task; defaults to the big cluster like a busy new thread.

        Falls back to an online cluster when the requested one is powered off.
        """
        target = cluster or self.platform.big_cluster.name
        if not self._cluster_online.get(target, True):
            target = self._fallback_cluster(target)
        task = self.scheduler.spawn(
            name, target, n_threads=n_threads, unbounded=unbounded
        )
        self.tracer.emit(
            self._clock.now, "sched", "spawn", f"{name} pid={task.pid} on {target}"
        )
        self._m_spawns.inc()
        return task

    # --------------------------------------------------------------- tick

    def current_freqs_hz(self) -> dict[str, float]:
        """Current frequency of every DVFS domain."""
        return {name: p.cur_freq_hz for name, p in self.policies.items()}

    def tick(self, now_s: float, dt_s: float) -> KernelTickResult:
        """Advance the OS by one simulation step.

        Composed from the four phase methods below; the batch stepper calls
        them individually to complete a tick exactly after a mid-tick
        demotion from its vectorized fast path.
        """
        self._phase_governors(now_s)
        self._phase_zones(now_s)
        self._phase_daemons(now_s)
        return self._phase_work(now_s, dt_s)

    def _phase_governors(self, now_s: float) -> None:
        """Poll governor timers and run the due DVFS governors."""
        for domain, timer in self._governor_timers.items():
            if timer.poll():
                policy = self.policies[domain]
                before_hz = policy.cur_freq_hz
                with self.spans.span("governor.update", domain=domain) as span:
                    t0 = time.perf_counter()
                    self.governors[domain].update(policy, now_s)
                    elapsed_s = time.perf_counter() - t0
                    span.set(
                        freq_before_hz=before_hz, freq_after_hz=policy.cur_freq_hz
                    )
                self._m_gov_updates[domain].inc()
                self._m_gov_latency[domain].observe(elapsed_s)
                # Snapshot identity check: either the governor changed the
                # frequency or it did not; no arithmetic dust can creep in.
                if policy.cur_freq_hz != before_hz:  # repro-lint: disable=R401
                    self._m_gov_freq_changes[domain].inc()

    def _phase_zones(self, now_s: float) -> None:
        """Poll thermal-zone timers and run the due zone polls."""
        for name, timer in self._zone_timers.items():
            if timer.poll():
                if self.zones[name].governor is not None:
                    with self.spans.span("thermal.zone_poll", zone=name):
                        self.zones[name].poll(now_s)
                else:
                    self.zones[name].poll(now_s)

    def _phase_daemons(self, now_s: float) -> None:
        """Run the due registered daemons."""
        for _, timer, fn in self._daemons:
            if timer.poll():
                fn(now_s)

    def _phase_work(self, now_s: float, dt_s: float) -> KernelTickResult:
        """Cooling scan, scheduling, GPU, and DVFS/idle accounting."""
        for device in self.cooling_devices:
            last = self._cooling_states.get(device.name)
            cur = device.cur_state
            if last is not None and cur != last:
                self.tracer.emit(
                    now_s, "thermal", "cooling_state",
                    f"{device.name} {last} -> {cur}",
                )
                self._m_cooling_changes[device.name].inc()
                self.spans.instant(
                    "thermal.cooling_state",
                    device=device.name,
                    from_state=last,
                    to_state=cur,
                )
                if last == 0 and cur > 0:
                    self._throttle_since_s[device.name] = now_s
                elif cur == 0:
                    start = self._throttle_since_s.pop(device.name, None)
                    if start is not None:
                        self._m_throttle_duration[device.name].observe(
                            now_s - start
                        )
            self._cooling_states[device.name] = cur

        freqs = self.current_freqs_hz()
        cluster_freqs = {
            c.name: freqs[c.name] if self._cluster_online[c.name] else 0.0
            for c in self.platform.clusters
        }
        sched = self.scheduler.run_tick(cluster_freqs, dt_s)
        gpu = self.gpu.run_tick(freqs[GPU_DOMAIN], dt_s)

        for cluster in self.platform.clusters:
            usage = sched.usage[cluster.name]
            # Per-CPU governors react to the busiest core; power estimation
            # needs the whole-cluster mean.
            self.policies[cluster.name].account(
                dt_s,
                usage.max_core_load,
                mean_util=usage.busy_cores / cluster.n_cores,
            )
            self._idle_scales[cluster.name] = self.idle_governors[
                cluster.name
            ].update(usage.busy_cores, cluster.n_cores, dt_s)
        self._idle_scales[GPU_DOMAIN] = self.idle_governors[GPU_DOMAIN].update(
            gpu.busy_fraction, 1, dt_s
        )
        self.policies[GPU_DOMAIN].account(dt_s, gpu.busy_fraction)

        return KernelTickResult(
            usage=sched.usage,
            gpu=gpu,
            freqs_hz=freqs,
            completed_cpu_tags=sched.completed_tags,
        )

    def update_power_readings(
        self, rail_powers_w: Mapping[str, float], dt_s: float
    ) -> None:
        """Feed measured rail powers into the INA231-style sensors."""
        for rail, sensor in self.power_sensors.items():
            if rail in rail_powers_w:
                sensor.update(rail_powers_w[rail], dt_s)

    def cputime_s(self, pid: int) -> float:
        """Total busy core-seconds of ``pid`` (sum over clusters)."""
        return self.scheduler.task(pid).total_core_seconds()

    def task_cluster(self, pid: int) -> str:
        """Cluster a pid currently runs on."""
        return self.scheduler.task(pid).cluster

    def migrate(self, pid: int, cluster: str) -> None:
        """Move a pid to another cluster."""
        before = self.scheduler.task(pid).cluster
        self.scheduler.set_affinity(pid, cluster)
        if before != cluster:
            self.tracer.emit(
                self._clock.now, "sched", "migrate",
                f"pid={pid} {before} -> {cluster}",
            )
            self._m_migrations.inc()
            self.spans.instant(
                "sched.migrate", pid=pid, from_cluster=before, to_cluster=cluster
            )

    def task_by_name(self, name: str) -> Task:
        """First live task with the given name."""
        for task in self.scheduler.tasks():
            if task.name == name:
                return task
        raise SchedulingError(f"no live task named {name!r}")
