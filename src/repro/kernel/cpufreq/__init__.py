"""cpufreq/devfreq subsystem: policies and frequency governors."""

from repro.kernel.cpufreq.governors import (
    GOVERNOR_FACTORIES,
    FreqGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    SimpleOndemandGovernor,
    StepGovernor,
    UserspaceGovernor,
    make_governor,
)
from repro.kernel.cpufreq.policy import DvfsPolicy

__all__ = [
    "GOVERNOR_FACTORIES",
    "DvfsPolicy",
    "FreqGovernor",
    "InteractiveGovernor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "SimpleOndemandGovernor",
    "StepGovernor",
    "UserspaceGovernor",
    "make_governor",
]
