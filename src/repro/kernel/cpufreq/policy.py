"""DVFS policy objects (cpufreq policies and the GPU devfreq policy).

A :class:`DvfsPolicy` owns the current frequency of one frequency domain,
the user min/max limits, the *thermal* cap imposed by cooling devices, the
``time_in_state`` residency accounting that the paper's Figures 2/4/6 are
built from, and the utilisation window its governor consumes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.soc.opp import OppTable
from repro.units import hz_to_khz


class DvfsPolicy:
    """Frequency-domain state: current OPP, limits, residency, utilisation."""

    def __init__(
        self,
        name: str,
        opps: OppTable,
        initial_freq_hz: float | None = None,
    ) -> None:
        self.name = name
        self.opps = opps
        self._user_min_hz = opps.min_freq_hz
        self._user_max_hz = opps.max_freq_hz
        self._thermal_max_hz = opps.max_freq_hz
        start = opps.max_freq_hz if initial_freq_hz is None else initial_freq_hz
        self._cur_freq_hz = opps.floor(opps.clamp(start)).freq_hz
        self._time_in_state: dict[int, float] = {
            khz: 0.0 for khz in opps.frequencies_khz()
        }
        self._total_transitions = 0
        self._transitions: dict[tuple[int, int], int] = {}
        self._busy_integral_s = 0.0
        self._elapsed_s = 0.0
        self._last_util = 0.0
        self._last_mean_util = 0.0
        self._boost_until_s = -1.0
        self._last_raise_s = -1.0

    # -------------------------------------------------------------- limits

    @property
    def cur_freq_hz(self) -> float:
        """Current operating frequency."""
        return self._cur_freq_hz

    @property
    def user_min_hz(self) -> float:
        """scaling_min_freq."""
        return self._user_min_hz

    @property
    def user_max_hz(self) -> float:
        """scaling_max_freq."""
        return self._user_max_hz

    @property
    def thermal_max_hz(self) -> float:
        """Cap currently imposed by cooling devices."""
        return self._thermal_max_hz

    @property
    def effective_max_hz(self) -> float:
        """Lowest of the user and thermal caps."""
        return min(self._user_max_hz, self._thermal_max_hz)

    def set_user_limits(self, min_hz: float, max_hz: float) -> None:
        """Set scaling_min_freq / scaling_max_freq."""
        if min_hz > max_hz:
            raise ConfigurationError(
                f"policy {self.name!r}: min {min_hz} above max {max_hz}"
            )
        self._user_min_hz = self.opps.clamp(min_hz)
        self._user_max_hz = self.opps.clamp(max_hz)
        self._reclamp()

    def set_thermal_max(self, max_hz: float) -> None:
        """Apply a cooling-device cap (use table max to lift it)."""
        self._thermal_max_hz = self.opps.clamp(max_hz)
        self._reclamp()

    def _reclamp(self) -> None:
        target = self._cur_freq_hz
        if target > self.effective_max_hz:
            target = self.opps.floor(self.effective_max_hz).freq_hz
        if target < self._user_min_hz:
            target = self.opps.ceil(self._user_min_hz).freq_hz
        self._commit(target)

    def _commit(self, target_hz: float) -> None:
        """Record and apply a frequency change."""
        if abs(target_hz - self._cur_freq_hz) > 0.5:
            self._total_transitions += 1
            key = (hz_to_khz(self._cur_freq_hz), hz_to_khz(target_hz))
            self._transitions[key] = self._transitions.get(key, 0) + 1
        self._cur_freq_hz = target_hz

    def set_target(self, freq_hz: float, now_s: float | None = None) -> float:
        """Request a frequency; it is clamped to limits and snapped to an OPP.

        Returns the frequency actually set.  ``now_s`` lets the policy track
        when the frequency was last raised (used by interactive-style
        hysteresis).
        """
        clamped = min(max(freq_hz, self._user_min_hz), self.effective_max_hz)
        # Snap up so a demand between OPPs is satisfied, then re-clamp.
        target = self.opps.ceil(clamped).freq_hz
        if target > self.effective_max_hz:
            target = self.opps.floor(self.effective_max_hz).freq_hz
        if now_s is not None and target > self._cur_freq_hz:
            self._last_raise_s = now_s
        self._commit(target)
        return target

    @property
    def last_raise_s(self) -> float:
        """Time of the most recent frequency increase (-1 if never)."""
        return self._last_raise_s

    # --------------------------------------------------------- accounting

    def account(
        self, dt_s: float, busy_fraction: float, mean_util: float | None = None
    ) -> None:
        """Record one tick of residency and utilisation at the current OPP.

        ``busy_fraction`` is what per-CPU governors react to (the busiest
        core); ``mean_util`` is the whole-domain average used for power
        estimation (defaults to ``busy_fraction`` for single-unit domains).
        """
        khz = hz_to_khz(self._cur_freq_hz)
        self._time_in_state[khz] = self._time_in_state.get(khz, 0.0) + dt_s
        self._busy_integral_s += busy_fraction * dt_s
        self._elapsed_s += dt_s
        self._last_util = busy_fraction
        self._last_mean_util = busy_fraction if mean_util is None else mean_util

    def take_utilization(self) -> float:
        """Average busy fraction since the last call (and reset the window)."""
        if self._elapsed_s <= 0.0:
            return self._last_util
        util = self._busy_integral_s / self._elapsed_s
        self._busy_integral_s = 0.0
        self._elapsed_s = 0.0
        return util

    @property
    def last_util(self) -> float:
        """Busy fraction of the most recent accounted tick (busiest core)."""
        return self._last_util

    @property
    def last_mean_util(self) -> float:
        """Whole-domain mean utilisation of the most recent tick."""
        return self._last_mean_util

    @property
    def time_in_state(self) -> dict[int, float]:
        """Seconds spent at each frequency, keyed by kHz (sysfs format)."""
        return dict(self._time_in_state)

    def reset_time_in_state(self) -> None:
        """Zero the residency counters (e.g. at measurement start)."""
        for khz in self._time_in_state:
            self._time_in_state[khz] = 0.0

    @property
    def total_transitions(self) -> int:
        """Number of frequency changes so far (cpufreq stats/total_trans)."""
        return self._total_transitions

    @property
    def transitions(self) -> dict[tuple[int, int], int]:
        """(from_khz, to_khz) -> count, the devfreq trans_stat matrix."""
        return dict(self._transitions)

    # -------------------------------------------------------------- boost

    def notify_input(self, now_s: float, duration_s: float = 0.5) -> None:
        """Signal a user-input event (interactive governor boost)."""
        self._boost_until_s = max(self._boost_until_s, now_s + duration_s)

    def boosted(self, now_s: float) -> bool:
        """Whether an input boost is currently active."""
        return now_s < self._boost_until_s
