"""Frequency governors.

Reimplementations of the Linux/Android governor policies the paper's
experiments depend on:

* ``performance`` / ``powersave`` / ``userspace`` — trivial anchors.
* ``ondemand`` — jump to max above an up-threshold, else track demand.
* ``interactive`` — the Android governor the paper calls out in the
  introduction: input events boost to ``hispeed_freq``; otherwise the
  frequency tracks utilisation against a target load, with a minimum dwell
  time before lowering.
* ``adreno_tz`` / ``simple_ondemand`` — step-based GPU devfreq policies:
  step up while busy exceeds an up-threshold, step down below a low
  threshold.  Step policies are what produce the *spread* of GPU-frequency
  residencies seen in the paper's Figures 2 and 4.

Every governor manipulates its policy only through
:meth:`repro.kernel.cpufreq.policy.DvfsPolicy.set_target`, so user and
thermal caps are always honoured.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy


class FreqGovernor:
    """Base class: periodic ``update`` calls decide the next frequency."""

    #: registry name (sysfs ``scaling_governor`` string)
    name = "base"

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        """Evaluate the policy and set the next target frequency."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (on governor switch)."""


class PerformanceGovernor(FreqGovernor):
    """Always run at the highest allowed frequency."""

    name = "performance"

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        policy.take_utilization()
        policy.set_target(policy.effective_max_hz, now_s)


class PowersaveGovernor(FreqGovernor):
    """Always run at the lowest frequency."""

    name = "powersave"

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        policy.take_utilization()
        policy.set_target(policy.user_min_hz, now_s)


class UserspaceGovernor(FreqGovernor):
    """Frequency chosen externally via ``set_speed`` (sysfs scaling_setspeed)."""

    name = "userspace"

    def __init__(self) -> None:
        self._speed_hz: float | None = None

    def set_speed(self, freq_hz: float) -> None:
        """Request a specific frequency."""
        if freq_hz <= 0.0:
            raise ConfigurationError(f"userspace speed must be positive: {freq_hz}")
        self._speed_hz = freq_hz

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        policy.take_utilization()
        if self._speed_hz is not None:
            policy.set_target(self._speed_hz, now_s)


class OndemandGovernor(FreqGovernor):
    """Classic ondemand: jump to max when busy, track demand when not."""

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.90) -> None:
        if not 0.0 < up_threshold <= 1.0:
            raise ConfigurationError(f"up_threshold must be in (0, 1]: {up_threshold}")
        self.up_threshold = up_threshold

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        util = policy.take_utilization()
        if util > self.up_threshold:
            policy.set_target(policy.effective_max_hz, now_s)
        else:
            demand_hz = policy.cur_freq_hz * util / self.up_threshold
            policy.set_target(demand_hz, now_s)


class InteractiveGovernor(FreqGovernor):
    """Android 'interactive' governor.

    On input events (``DvfsPolicy.notify_input``) the frequency is boosted to
    at least ``hispeed_freq``.  Between boosts the frequency tracks
    utilisation so that the busy fraction lands near ``target_load``; a
    frequency decrease is allowed only ``min_sample_time`` after the last
    raise, which is the behaviour that keeps phones at high frequency during
    interaction — and which the paper identifies as a thermal liability.
    """

    name = "interactive"

    def __init__(
        self,
        hispeed_freq_hz: float | None = None,
        go_hispeed_load: float = 0.85,
        target_load: float = 0.80,
        min_sample_time_s: float = 0.08,
    ) -> None:
        if not 0.0 < target_load <= 1.0:
            raise ConfigurationError(f"target_load must be in (0, 1]: {target_load}")
        if not 0.0 < go_hispeed_load <= 1.0:
            raise ConfigurationError(
                f"go_hispeed_load must be in (0, 1]: {go_hispeed_load}"
            )
        self.hispeed_freq_hz = hispeed_freq_hz
        self.go_hispeed_load = go_hispeed_load
        self.target_load = target_load
        self.min_sample_time_s = min_sample_time_s

    def _hispeed(self, policy: DvfsPolicy) -> float:
        if self.hispeed_freq_hz is None:
            return policy.effective_max_hz
        return self.hispeed_freq_hz

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        util = policy.take_utilization()
        demand_hz = policy.cur_freq_hz * util / self.target_load
        if policy.boosted(now_s):
            demand_hz = max(demand_hz, self._hispeed(policy))
        elif util >= self.go_hispeed_load:
            demand_hz = max(demand_hz, self._hispeed(policy))
        if demand_hz < policy.cur_freq_hz:
            dwell = now_s - policy.last_raise_s
            if policy.last_raise_s >= 0.0 and dwell < self.min_sample_time_s:
                return
        policy.set_target(demand_hz, now_s)


class ConservativeGovernor(FreqGovernor):
    """Classic Linux 'conservative': gradual proportional steps.

    Unlike ondemand it never jumps straight to the maximum: above the up
    threshold the frequency grows by ``freq_step`` (a fraction of the max),
    below the down threshold it shrinks by the same step.
    """

    name = "conservative"

    def __init__(
        self,
        up_threshold: float = 0.80,
        down_threshold: float = 0.20,
        freq_step: float = 0.05,
    ) -> None:
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError(
                f"need 0 < down ({down_threshold}) < up ({up_threshold}) <= 1"
            )
        if not 0.0 < freq_step <= 1.0:
            raise ConfigurationError(f"freq_step must be in (0, 1]: {freq_step}")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.freq_step = freq_step

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        util = policy.take_utilization()
        step_hz = self.freq_step * policy.opps.max_freq_hz
        if util > self.up_threshold:
            policy.set_target(policy.cur_freq_hz + step_hz, now_s)
        elif util < self.down_threshold:
            target = policy.cur_freq_hz - step_hz
            # Step down through the floor of the table, not the ceil.
            policy.set_target(
                policy.opps.floor(max(target, policy.opps.min_freq_hz)).freq_hz,
                now_s,
            )


class SchedutilGovernor(FreqGovernor):
    """Modern kernel default: frequency proportional to utilisation.

    f = C * util * f_max with the kernel's C = 1.25 headroom, evaluated
    every period with no hysteresis — fast up, fast down.
    """

    name = "schedutil"

    def __init__(self, headroom: float = 1.25) -> None:
        if headroom < 1.0:
            raise ConfigurationError(f"headroom must be >= 1: {headroom}")
        self.headroom = headroom

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        util = policy.take_utilization()
        # util is measured at the *current* frequency; convert to an
        # absolute demand before applying the headroom.
        demand_hz = util * policy.cur_freq_hz
        policy.set_target(self.headroom * demand_hz, now_s)


class StepGovernor(FreqGovernor):
    """Step-based devfreq policy (msm-adreno-tz / mali simple_ondemand).

    Busy fraction above ``up_threshold`` raises the frequency one OPP per
    evaluation; below ``down_threshold`` lowers it one OPP.  In between the
    frequency holds, producing dwell at intermediate OPPs.
    """

    name = "adreno_tz"

    def __init__(
        self, up_threshold: float = 0.90, down_threshold: float = 0.75
    ) -> None:
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ConfigurationError(
                f"need 0 < down ({down_threshold}) < up ({up_threshold}) <= 1"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def update(self, policy: DvfsPolicy, now_s: float) -> None:
        util = policy.take_utilization()
        freqs = policy.opps.frequencies_hz()
        idx = policy.opps.index_of(policy.opps.floor(policy.cur_freq_hz).freq_hz)
        if util > self.up_threshold and idx < len(freqs) - 1:
            policy.set_target(freqs[idx + 1], now_s)
        elif util < self.down_threshold and idx > 0:
            policy.set_target(freqs[idx - 1], now_s)
        else:
            # Re-assert the current target so thermal caps re-apply promptly.
            policy.set_target(policy.cur_freq_hz, now_s)


class SimpleOndemandGovernor(StepGovernor):
    """Mali devfreq alias of the step policy with its default thresholds."""

    name = "simple_ondemand"

    def __init__(self) -> None:
        super().__init__(up_threshold=0.90, down_threshold=0.70)


GOVERNOR_FACTORIES = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "userspace": UserspaceGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "schedutil": SchedutilGovernor,
    "interactive": InteractiveGovernor,
    "adreno_tz": StepGovernor,
    "simple_ondemand": SimpleOndemandGovernor,
}


def make_governor(name: str, **kwargs) -> FreqGovernor:
    """Instantiate a governor by its sysfs name."""
    try:
        factory = GOVERNOR_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown governor {name!r}; have {sorted(GOVERNOR_FACTORIES)}"
        ) from None
    return factory(**kwargs)
