"""Per-cluster proportional-share CPU scheduler.

Each simulation tick, every cluster's capacity (``ipc * freq * n_cores * dt``
instruction-weighted cycles) is divided among its runnable tasks by
water-filling: capacity is shared equally, tasks that need less than their
share return the surplus, and the surplus is redistributed.  This reproduces
the fairness property of CFS at the granularity this study needs, while
keeping per-task ceilings (thread counts) and backlogs exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.errors import SchedulingError
from repro.kernel.task import Task, TaskState
from repro.soc.components import ClusterSpec


@dataclass
class ClusterUsage:
    """Outcome of one scheduling tick on one cluster."""

    capacity_cycles: float
    used_cycles: float
    busy_cores: float
    per_task_cycles: dict[int, float] = field(default_factory=dict)
    max_core_load: float = 0.0

    @property
    def utilization(self) -> float:
        """Fraction of cluster capacity consumed this tick, in [0, 1]."""
        if self.capacity_cycles <= 0.0:
            return 0.0
        return min(self.used_cycles / self.capacity_cycles, 1.0)


@dataclass
class TickResult:
    """Scheduling outcome for all clusters plus completion notifications."""

    usage: dict[str, ClusterUsage]
    completed_tags: list[Hashable]


def nice_to_weight(nice: int) -> float:
    """CFS-style priority weight: ~1.25x per nice level below zero."""
    return 1.25 ** (-nice)


def _weighted_water_fill(
    capacity: float, ceilings: list[float], weights: list[float]
) -> list[float]:
    """Share ``capacity`` across consumers with ceilings and weights.

    Weighted max-min fairness: each round, the remaining capacity is split
    in proportion to the active consumers' weights; consumers whose share
    exceeds their ceiling are granted the ceiling and retired, and the slack
    is redistributed.  Returns allocations in input order.
    """
    n = len(ceilings)
    if len(weights) != n:
        raise SchedulingError("weights and ceilings must have equal length")
    allocation = [0.0] * n
    if n == 0 or capacity <= 0.0:
        return allocation
    active = [i for i in range(n) if ceilings[i] > 0.0]
    remaining = capacity
    while active and remaining > 1e-12:
        total_weight = sum(weights[i] for i in active)
        saturated = []
        for i in active:
            share = remaining * weights[i] / total_weight
            if share >= ceilings[i] - allocation[i] - 1e-12:
                saturated.append(i)
        if not saturated:
            for i in active:
                allocation[i] += remaining * weights[i] / total_weight
            break
        for i in saturated:
            grant = ceilings[i] - allocation[i]
            allocation[i] = ceilings[i]
            remaining -= grant
            active.remove(i)
    return allocation


def _water_fill(capacity: float, ceilings: list[float]) -> list[float]:
    """Unweighted water-filling (equal shares); see _weighted_water_fill."""
    return _weighted_water_fill(capacity, list(ceilings), [1.0] * len(ceilings))


class Scheduler:
    """Owns all tasks and divides cluster capacity among them each tick."""

    def __init__(self, clusters: Mapping[str, ClusterSpec]) -> None:
        if not clusters:
            raise SchedulingError("scheduler needs at least one cluster")
        self._clusters = dict(clusters)
        self._tasks: dict[int, Task] = {}

    @property
    def cluster_names(self) -> tuple[str, ...]:
        """Names of the schedulable clusters."""
        return tuple(self._clusters)

    # ----------------------------------------------------------- task admin

    def spawn(
        self,
        name: str,
        cluster: str,
        n_threads: int = 1,
        unbounded: bool = False,
        nice: int = 0,
    ) -> Task:
        """Create and register a new task on ``cluster``."""
        self._check_cluster(cluster)
        task = Task(name, cluster, n_threads=n_threads, unbounded=unbounded, nice=nice)
        self._tasks[task.pid] = task
        return task

    def task(self, pid: int) -> Task:
        """Look up a task by pid; raises on unknown pids."""
        try:
            return self._tasks[pid]
        except KeyError:
            raise SchedulingError(f"no task with pid {pid}") from None

    def tasks(self) -> list[Task]:
        """All non-exited tasks, ordered by pid."""
        return [
            t for _, t in sorted(self._tasks.items()) if t.state is not TaskState.EXITED
        ]

    def set_affinity(self, pid: int, cluster: str) -> None:
        """Migrate ``pid`` to ``cluster`` (sched_setaffinity analogue)."""
        self._check_cluster(cluster)
        self.task(pid).migrate(cluster)

    def kill(self, pid: int) -> None:
        """Terminate ``pid``."""
        self.task(pid).exit()

    def _check_cluster(self, cluster: str) -> None:
        if cluster not in self._clusters:
            raise SchedulingError(
                f"unknown cluster {cluster!r}; have {list(self._clusters)}"
            )

    # ------------------------------------------------------------- dispatch

    def run_tick(self, freqs_hz: Mapping[str, float], dt_s: float) -> TickResult:
        """Run one scheduling tick at the given per-cluster frequencies."""
        if dt_s <= 0.0:
            raise SchedulingError(f"tick length must be positive, got {dt_s}")
        usage: dict[str, ClusterUsage] = {}
        completed: list[Hashable] = []
        for cname, spec in self._clusters.items():
            freq = freqs_hz.get(cname)
            if freq is None:
                raise SchedulingError(f"no frequency supplied for cluster {cname!r}")
            capacity = spec.capacity_cycles(freq, dt_s)
            per_core = capacity / spec.n_cores
            runnable = [
                t for t in self._tasks.values() if t.runnable and t.cluster == cname
            ]
            ceilings = [t.demand_cycles(per_core) for t in runnable]
            weights = [nice_to_weight(t.nice) for t in runnable]
            grants = _weighted_water_fill(capacity, ceilings, weights)
            used = 0.0
            per_task: dict[int, float] = {}
            max_core_load = 0.0
            for task, grant in zip(runnable, grants):
                if grant <= 0.0:
                    continue
                completed.extend(task.consume(grant, dt_s, freq, spec.ipc))
                per_task[task.pid] = grant
                used += grant
                # Load of this task's busiest core, assuming its threads
                # spread evenly (what per-CPU governors like interactive see).
                threads = min(task.n_threads, spec.n_cores)
                max_core_load = max(max_core_load, grant / (per_core * threads))
            busy_cores = used / (spec.ipc * freq * dt_s) if freq > 0 else 0.0
            cluster_load = busy_cores / spec.n_cores
            usage[cname] = ClusterUsage(
                capacity_cycles=capacity,
                used_cycles=used,
                busy_cores=busy_cores,
                per_task_cycles=per_task,
                max_core_load=min(max(max_core_load, cluster_load), 1.0),
            )
        return TickResult(usage=usage, completed_tags=completed)
