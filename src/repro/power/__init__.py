"""Power measurement: rail sensors, external DAQ, energy accounting."""

from repro.power.battery import NEXUS6P_CAPACITY_WH, Battery
from repro.power.daq import PowerDaq
from repro.power.energy import EnergyMeter
from repro.power.sensors import RailPowerSensor

__all__ = ["Battery", "EnergyMeter", "NEXUS6P_CAPACITY_WH", "PowerDaq", "RailPowerSensor"]
