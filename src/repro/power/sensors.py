"""On-board rail power sensors (INA231-style).

The Odroid-XU3 exposes four TI INA231 current/power monitors (big cluster,
LITTLE cluster, GPU, memory).  The device averages over a conversion window
and quantises; software reads it over I2C via sysfs.  We model that as an
exponential moving average of the true rail power plus multiplicative
measurement noise, which is what the paper's proposed governor consumes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


class RailPowerSensor:
    """EMA-averaged, noisy power reading for one rail."""

    def __init__(
        self,
        rail: str,
        rng: np.random.Generator,
        averaging_tau_s: float = 0.1,
        noise_rel: float = 0.01,
        quantum_w: float = 0.001,
    ) -> None:
        if averaging_tau_s <= 0.0:
            raise ConfigurationError(f"sensor {rail!r}: averaging tau must be > 0")
        if noise_rel < 0.0 or quantum_w < 0.0:
            raise ConfigurationError(f"sensor {rail!r}: negative noise/quantum")
        self.rail = rail
        self._rng = rng
        self._tau = averaging_tau_s
        self._noise_rel = noise_rel
        self._quantum = quantum_w
        self._ema_w: float | None = None

    def update(self, power_w: float, dt_s: float) -> None:
        """Feed one tick of true rail power into the averaging window."""
        if power_w < 0.0:
            raise ConfigurationError(f"sensor {self.rail!r}: negative power")
        if self._ema_w is None:
            self._ema_w = power_w
            return
        alpha = 1.0 - math.exp(-dt_s / self._tau)
        self._ema_w += alpha * (power_w - self._ema_w)

    def read_w(self) -> float:
        """One measurement in watts (0.0 before the first update)."""
        if self._ema_w is None:
            return 0.0
        value = self._ema_w
        if self._noise_rel > 0.0:
            value *= 1.0 + self._rng.normal(0.0, self._noise_rel)
        if self._quantum > 0.0:
            value = round(value / self._quantum) * self._quantum
        return max(value, 0.0)
