"""Exact per-rail energy accounting inside the simulator.

Unlike :mod:`repro.power.daq` (which models a noisy instrument), the
:class:`EnergyMeter` integrates the true rail powers tick by tick.  The
power-distribution pie charts of the paper's Figure 9 are average-power
breakdowns, which this meter produces directly.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AnalysisError


class EnergyMeter:
    """Accumulates joules per rail and exposes average-power breakdowns."""

    def __init__(self) -> None:
        self._energy_j: dict[str, float] = {}
        self._elapsed_s = 0.0

    def accumulate(self, rail_powers_w: Mapping[str, float], dt_s: float) -> None:
        """Add one tick of per-rail power."""
        if dt_s <= 0.0:
            raise AnalysisError(f"dt must be positive, got {dt_s}")
        for rail, watts in rail_powers_w.items():
            self._energy_j[rail] = self._energy_j.get(rail, 0.0) + watts * dt_s
        self._elapsed_s += dt_s

    @property
    def elapsed_s(self) -> float:
        """Total accumulated time."""
        return self._elapsed_s

    def energy_j(self, rail: str) -> float:
        """Energy of one rail so far."""
        return self._energy_j.get(rail, 0.0)

    def total_energy_j(self) -> float:
        """Energy across all rails."""
        return sum(self._energy_j.values())

    def average_power_w(self, rail: str) -> float:
        """Average power of one rail over the accumulated window."""
        if self._elapsed_s <= 0.0:
            raise AnalysisError("no time accumulated yet")
        return self._energy_j.get(rail, 0.0) / self._elapsed_s

    def breakdown(self, rails: tuple[str, ...] | None = None) -> dict[str, float]:
        """Fraction of total energy per rail (the Fig. 9 pie chart).

        Restricting ``rails`` renormalises over that subset (e.g. the four
        measurable INA231 rails, excluding the board constant).
        """
        if rails is None:
            rails = tuple(self._energy_j)
        total = sum(self._energy_j.get(r, 0.0) for r in rails)
        if total <= 0.0:
            raise AnalysisError("no energy accumulated for the requested rails")
        return {r: self._energy_j.get(r, 0.0) / total for r in rails}

    def reset(self) -> None:
        """Zero all accumulators (e.g. to skip a warm-up window)."""
        self._energy_j.clear()
        self._elapsed_s = 0.0
