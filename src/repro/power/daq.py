"""External power measurement: the National Instruments DAQ of Section III.

The paper measures the Nexus 6P's battery power with an NI PXIe-4081 at
1 kHz.  The simulated instrument supersamples the simulator's zero-order-held
battery power with additive Gaussian noise.  Samples are retained so the
analysis layer can compute means/energies exactly the way one would from a
real capture.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CalibrationError, ConfigurationError


class PowerDaq:
    """1 kHz (configurable) power sampler with Gaussian measurement noise."""

    def __init__(
        self,
        rng: np.random.Generator,
        sample_rate_hz: float = 1000.0,
        noise_std_w: float = 0.02,
    ) -> None:
        if sample_rate_hz <= 0.0:
            raise ConfigurationError("DAQ sample rate must be positive")
        if noise_std_w < 0.0:
            raise ConfigurationError("DAQ noise std must be non-negative")
        self._rng = rng
        self._rate = sample_rate_hz
        self._noise = noise_std_w
        self._chunks: list[np.ndarray] = []
        self._time_chunks: list[np.ndarray] = []
        self._next_sample_s = 0.0

    @property
    def sample_rate_hz(self) -> float:
        """Configured sampling rate."""
        return self._rate

    def capture(self, start_s: float, dt_s: float, power_w: float) -> None:
        """Record the samples falling inside ``[start_s, start_s + dt_s)``.

        The simulator holds ``power_w`` constant over the tick (ZOH), so all
        samples in the window share the mean and differ only by noise.
        """
        end_s = start_s + dt_s
        period = 1.0 / self._rate
        if self._next_sample_s < start_s:
            self._next_sample_s = start_s
        n = int((end_s - self._next_sample_s) / period) + 1
        if self._next_sample_s >= end_s:
            n = 0
        if n <= 0:
            return
        times = self._next_sample_s + period * np.arange(n)
        times = times[times < end_s - 1e-12]
        n = times.size
        if n == 0:
            return
        samples = np.full(n, power_w)
        if self._noise > 0.0:
            samples = samples + self._rng.normal(0.0, self._noise, size=n)
        self._chunks.append(samples)
        self._time_chunks.append(times)
        self._next_sample_s = float(times[-1]) + period

    def samples(self) -> tuple[np.ndarray, np.ndarray]:
        """All captured ``(times, watts)`` so far."""
        if not self._chunks:
            return np.empty(0), np.empty(0)
        return np.concatenate(self._time_chunks), np.concatenate(self._chunks)

    def mean_power_w(self, start_s: float | None = None, end_s: float | None = None) -> float:
        """Average measured power over a window (whole capture by default).

        Raises :class:`~repro.errors.CalibrationError` when the capture (or
        the requested window) is empty — a degenerate capture can never
        support a calibration-grade mean.
        """
        times, watts = self.samples()
        if times.size == 0:
            raise CalibrationError("DAQ has captured no samples")
        mask = np.ones(times.size, dtype=bool)
        if start_s is not None:
            mask &= times >= start_s
        if end_s is not None:
            mask &= times < end_s
        if not mask.any():
            raise CalibrationError("DAQ window contains no samples")
        return float(watts[mask].mean())

    def energy_j(self) -> float:
        """Integrated energy of the capture (trapezoidal).

        Raises :class:`~repro.errors.CalibrationError` on empty or
        single-sample captures: the trapezoid rule has no interval to
        integrate, and silently returning 0 J would poison energy fits.
        """
        times, watts = self.samples()
        if times.size < 2:
            raise CalibrationError(
                "need at least two DAQ samples to integrate energy"
            )
        return float(np.trapezoid(watts, times))
