"""A simple battery model (extension).

Phones are battery-powered; the same power draw that heats the device also
drains it.  This coulomb-counting model tracks state of charge and projects
time-to-empty, enough to relate governor choices to battery life in the
examples (the Nexus 6P shipped a 3450 mAh / ~13.3 Wh cell).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, SimulationError

NEXUS6P_CAPACITY_WH = 13.28  # 3450 mAh at 3.85 V nominal


class Battery:
    """Energy-integrating battery with state-of-charge accounting."""

    def __init__(
        self, capacity_wh: float = NEXUS6P_CAPACITY_WH, initial_soc: float = 1.0
    ) -> None:
        if capacity_wh <= 0.0:
            raise ConfigurationError("battery capacity must be positive")
        if not 0.0 <= initial_soc <= 1.0:
            raise ConfigurationError("initial SoC must be in [0, 1]")
        self.capacity_wh = float(capacity_wh)
        self._remaining_wh = capacity_wh * initial_soc

    @property
    def remaining_wh(self) -> float:
        """Energy left in the cell."""
        return self._remaining_wh

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._remaining_wh / self.capacity_wh

    @property
    def empty(self) -> bool:
        """Whether the cell is exhausted."""
        return self._remaining_wh <= 0.0

    def drain(self, power_w: float, dt_s: float) -> None:
        """Consume ``power_w`` for ``dt_s`` seconds (clamped at empty)."""
        if power_w < 0.0:
            raise SimulationError(f"negative drain power {power_w}")
        if dt_s <= 0.0:
            raise SimulationError(f"drain dt must be positive, got {dt_s}")
        self._remaining_wh = max(
            self._remaining_wh - power_w * dt_s / 3600.0, 0.0
        )

    def time_to_empty_s(self, power_w: float) -> float:
        """Projected runtime at a constant draw (inf at zero power)."""
        if power_w < 0.0:
            raise SimulationError(f"negative power {power_w}")
        if power_w <= 0.0:
            return math.inf
        return self._remaining_wh * 3600.0 / power_w

    def recharge(self, soc: float = 1.0) -> None:
        """Reset the state of charge."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError("SoC must be in [0, 1]")
        self._remaining_wh = self.capacity_wh * soc
